//! E13 — lifetime to first unrepairable error under graceful degradation.
//!
//! Extension experiment: on a low-endurance device seeded with a
//! deterministic fault campaign, how long does each scrub mechanism keep
//! the memory serviceable when the repair hierarchy (ECP sparing → line
//! retirement → bank-degraded mode) is absorbing hard faults?
//!
//! The scrub policies differ exactly where the paper's soft/hard-error
//! tradeoff says they should: mechanisms that write back on every sweep
//! wear cells out and exhaust the repair hierarchy early, while
//! threshold/age-gated mechanisms preserve endurance and survive the
//! horizon. Reps that never become unrepairable are censored at the
//! horizon, so every reported lifetime is a lower bound.

use pcm_analysis::{fmt_count, Table};
use pcm_ecc::CodeSpec;
use pcm_memsim::inject::{SeuClause, StuckClause};
use pcm_memsim::{CampaignSpec, RecoveryConfig, RepairConfig};
use pcm_model::{DeviceConfig, EnduranceSpec};
use scrub_core::{DemandTraffic, PolicyKind, SimConfig, SimReport, Simulation};
use scrub_telemetry as tel;

use crate::runner;
use crate::scale::Scale;

const INTERVAL_S: f64 = 900.0;
const THETA: u32 = 4;

/// The four mechanisms compared, all over BCH-6 so only the scrub
/// decision differs: (row label, policy).
pub fn roster() -> Vec<(&'static str, PolicyKind)> {
    vec![
        (
            "basic",
            PolicyKind::Basic {
                interval_s: INTERVAL_S,
            },
        ),
        (
            "threshold",
            PolicyKind::Threshold {
                interval_s: INTERVAL_S,
                theta: THETA,
            },
        ),
        (
            "age-aware",
            PolicyKind::AgeAware {
                interval_s: INTERVAL_S,
                theta: THETA,
                min_age_s: INTERVAL_S * 2.0 / 3.0,
            },
        ),
        ("combined", PolicyKind::combined_default(INTERVAL_S)),
    ]
}

/// The campaign used when the process has no `--fault-campaign`: a sprinkle
/// of ECP-repairable stuck clusters plus background SEUs, sized to the
/// memory under test.
pub fn default_campaign(scale: &Scale) -> CampaignSpec {
    CampaignSpec {
        seed: 0xE13,
        stuck: Some(StuckClause {
            lines: (scale.num_lines / 16).max(1),
            cells: 4,
        }),
        seu: Some(SeuClause {
            lines: (scale.num_lines / 8).max(1),
            count: 2,
            window_s: (scale.horizon_s * 0.5).max(1.0),
        }),
        intermittent: None,
        burst: None,
    }
}

/// The low-endurance device E13 stresses: cells give out after a median
/// of 30 writes, so a horizon of ~50 sweeps spans the whole wear-out arc.
fn frail_device() -> DeviceConfig {
    DeviceConfig::builder()
        .endurance(EnduranceSpec::new(30.0, 0.4))
        .build()
}

/// One policy's rep-averaged lifetime figures.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LifetimeRow {
    /// Roster label.
    pub label: &'static str,
    /// Mean time to the first unrepairable error (seconds), censored at
    /// the horizon for reps that survived.
    pub lifetime_s: f64,
    /// Reps that survived the whole horizon without an unrepairable error.
    pub survived: u32,
    /// Mean ECP line repairs.
    pub ecp_repairs: f64,
    /// Mean lines retired to spares.
    pub lines_retired: f64,
    /// Mean unrepairable UEs.
    pub unrepairable: f64,
    /// Mean UEs rescued by the shifted-threshold retry.
    pub recovered: f64,
    /// Mean banks degraded by the horizon.
    pub degraded_banks: f64,
}

fn run_one(scale: &Scale, policy: &PolicyKind, seed: u64, threads: usize) -> SimReport {
    let mut builder = SimConfig::builder();
    builder
        .num_lines(scale.num_lines)
        .device(frail_device())
        .code(CodeSpec::bch_line(6))
        .policy(policy.clone())
        .traffic(DemandTraffic::Idle)
        .horizon_s(scale.horizon_s)
        .seed(seed)
        .threads(threads)
        .engine(runner::engine())
        .fault_campaign(runner::fault_campaign().unwrap_or_else(|| default_campaign(scale)))
        .repair(RepairConfig::default())
        .ue_recovery(RecoveryConfig::default());
    let config = builder.build();
    // `--checkpoint-every` routes every rep through the serialize/resume
    // path; the determinism contract makes this invisible in the output.
    match runner::checkpoint_every_s() {
        Some(every_s) => {
            scrub_core::run_split(config, every_s)
                .expect("split run over config-built traces cannot fail")
                .report
        }
        None => Simulation::new(config).run(),
    }
}

/// Computes the lifetime table without rendering.
pub fn compute(scale: Scale) -> Vec<LifetimeRow> {
    let threads = scrub_exec::default_threads();
    roster()
        .into_iter()
        .map(|(label, policy)| {
            let (outer, inner) = super::split_threads(threads, scale.reps as usize);
            let reports: Vec<SimReport> =
                scrub_exec::par_map(outer, (0..scale.reps).collect(), |_, rep| {
                    run_one(&scale, &policy, 0xE13 + rep as u64 * 1000, inner)
                });
            let n = reports.len() as f64;
            let mut row = LifetimeRow {
                label,
                lifetime_s: 0.0,
                survived: 0,
                ecp_repairs: 0.0,
                lines_retired: 0.0,
                unrepairable: 0.0,
                recovered: 0.0,
                degraded_banks: 0.0,
            };
            for r in &reports {
                match r.first_unrepairable_s {
                    Some(s) => row.lifetime_s += s,
                    None => {
                        row.lifetime_s += r.horizon_s;
                        row.survived += 1;
                    }
                }
                row.ecp_repairs += r.stats.ecp_repairs as f64;
                row.lines_retired += r.stats.lines_retired as f64;
                row.unrepairable += r.stats.unrepairable_ue as f64;
                row.recovered += r.stats.recovered_ue as f64;
                row.degraded_banks += r.degraded_banks as f64;
            }
            row.lifetime_s /= n;
            row.ecp_repairs /= n;
            row.lines_retired /= n;
            row.unrepairable /= n;
            row.recovered /= n;
            row.degraded_banks /= n;
            if tel::enabled() {
                tel::set_value(&format!("e13.{label}.lifetime_s"), row.lifetime_s);
                tel::set_value(&format!("e13.{label}.ecp_repairs"), row.ecp_repairs);
                tel::set_value(&format!("e13.{label}.lines_retired"), row.lines_retired);
                tel::set_value(&format!("e13.{label}.unrepairable"), row.unrepairable);
                tel::set_value(&format!("e13.{label}.recovered"), row.recovered);
            }
            row
        })
        .collect()
}

/// Runs E13 and renders its table.
pub fn run(scale: Scale) -> String {
    render(&compute(scale), scale.horizon_s)
}

/// Runs E13 once, returning the rendered table plus per-policy headline
/// metrics for the `BENCH_e13.json` record.
pub fn run_with_metrics(scale: Scale) -> (String, Vec<(String, f64)>) {
    let rows = compute(scale);
    let mut metrics = Vec::new();
    for row in &rows {
        metrics.push((format!("{}.lifetime_s", row.label), row.lifetime_s));
        metrics.push((format!("{}.ecp_repairs", row.label), row.ecp_repairs));
        metrics.push((format!("{}.lines_retired", row.label), row.lines_retired));
        metrics.push((format!("{}.unrepairable", row.label), row.unrepairable));
    }
    (render(&rows, scale.horizon_s), metrics)
}

/// Renders the lifetime table.
fn render(rows: &[LifetimeRow], horizon_s: f64) -> String {
    let mut out = String::from(
        "E13: lifetime to first unrepairable error (low-endurance device,\n\
         fault campaign, ECP-6 + spare-line repair hierarchy)\n\n",
    );
    let mut table = Table::new(vec![
        "policy",
        "lifetime_h",
        "ecp_repairs",
        "retired",
        "unrepairable",
        "recovered",
        "degraded_banks",
    ]);
    for row in rows {
        let lifetime = if row.survived > 0 && row.unrepairable == 0.0 {
            format!(">{:.1}", horizon_s / 3600.0)
        } else {
            format!("{:.1}", row.lifetime_s / 3600.0)
        };
        table.row(vec![
            row.label.to_string(),
            lifetime,
            fmt_count(row.ecp_repairs),
            fmt_count(row.lines_retired),
            fmt_count(row.unrepairable),
            fmt_count(row.recovered),
            format!("{:.1}", row.degraded_banks),
        ]);
    }
    out.push_str(&table.render());
    out.push_str(
        "\nExpected shape: unconditional write-backs (basic) burn endurance and\n\
         exhaust the repair hierarchy first; threshold/age-gated mechanisms\n\
         write less, wear less, and keep the memory serviceable longer —\n\
         the soft/hard-error tradeoff measured in lifetime terms.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repair_hierarchy_stages_all_appear_at_tiny_scale() {
        let scale = Scale {
            num_lines: 1024,
            horizon_s: 12.0 * 3600.0,
            reps: 1,
            mc_cells: 100,
        };
        let rows = compute(scale);
        assert_eq!(rows.len(), 4);
        let basic = &rows[0];
        assert_eq!(basic.label, "basic");
        // Basic scrub rewrites every line every sweep: under median-30
        // endurance it must drive lines through every stage.
        assert!(basic.ecp_repairs > 0.0, "{basic:?}");
        assert!(basic.lines_retired > 0.0, "{basic:?}");
        assert!(basic.unrepairable > 0.0, "{basic:?}");
        assert!(
            basic.lifetime_s < scale.horizon_s,
            "basic must die early: {basic:?}"
        );
        // Write-shy mechanisms outlive write-happy ones.
        let combined = rows.iter().find(|r| r.label == "combined").unwrap();
        assert!(
            combined.lifetime_s > basic.lifetime_s,
            "combined {:.0}s vs basic {:.0}s",
            combined.lifetime_s,
            basic.lifetime_s
        );
    }
}
