//! E5 — the scrub-algorithm comparison: all mechanisms, suite-averaged.
//!
//! Paper analogue: the main policy-comparison table.

use pcm_analysis::{fmt_count, Table};
use pcm_ecc::CodeSpec;
use pcm_model::DeviceConfig;
use scrub_core::PolicyKind;

use crate::experiments::{run_suite, Metrics};
use crate::scale::Scale;

const INTERVAL_S: f64 = 900.0;
const THETA: u32 = 4;

/// The policy roster compared in E5/E6: (row label, code, policy).
pub fn roster() -> Vec<(&'static str, CodeSpec, PolicyKind)> {
    vec![
        (
            "basic+SECDED",
            CodeSpec::secded_line(),
            PolicyKind::Basic {
                interval_s: INTERVAL_S,
            },
        ),
        (
            "basic+BCH6",
            CodeSpec::bch_line(6),
            PolicyKind::Basic {
                interval_s: INTERVAL_S,
            },
        ),
        (
            "threshold+BCH6",
            CodeSpec::bch_line(6),
            PolicyKind::Threshold {
                interval_s: INTERVAL_S,
                theta: THETA,
            },
        ),
        (
            "age-aware+BCH6",
            CodeSpec::bch_line(6),
            PolicyKind::AgeAware {
                interval_s: INTERVAL_S,
                theta: THETA,
                min_age_s: INTERVAL_S * 2.0 / 3.0,
            },
        ),
        (
            "adaptive+BCH6",
            CodeSpec::bch_line(6),
            PolicyKind::Adaptive {
                interval_s: INTERVAL_S,
                theta: THETA,
                regions: 64,
            },
        ),
        (
            "combined+BCH6",
            CodeSpec::bch_line(6),
            PolicyKind::combined_default(INTERVAL_S),
        ),
    ]
}

/// Runs the whole roster, suite-averaged.
pub fn compute(scale: Scale) -> Vec<(&'static str, Metrics)> {
    let dev = DeviceConfig::default();
    roster()
        .into_iter()
        .map(|(label, code, policy)| (label, run_suite(&scale, &dev, &code, &policy, 0xE5)))
        .collect()
}

/// Runs E5 and renders its table.
pub fn run(scale: Scale) -> String {
    render(&compute(scale))
}

/// Runs E5 once, returning the rendered table plus per-policy headline
/// metrics for the `BENCH_e5.json` record.
pub fn run_with_metrics(scale: Scale) -> (String, Vec<(String, f64)>) {
    let rows = compute(scale);
    let mut metrics = Vec::new();
    for (label, m) in &rows {
        metrics.push((format!("{label}.ue"), m.ue));
        metrics.push((format!("{label}.scrub_writes"), m.scrub_writes));
        metrics.push((format!("{label}.scrub_energy_uj"), m.scrub_energy_uj));
    }
    (render(&rows), metrics)
}

/// Renders the comparison table.
fn render(rows: &[(&'static str, Metrics)]) -> String {
    let mut out =
        String::from("E5: scrub mechanism comparison (averaged over the 8-workload suite)\n\n");
    let mut table = Table::new(vec![
        "policy",
        "UEs",
        "demand_UEs",
        "scrub_writes",
        "probes",
        "energy_uJ",
        "mean_wear",
    ]);
    for (label, m) in rows {
        table.row(vec![
            label.to_string(),
            fmt_count(m.ue),
            fmt_count(m.demand_ue),
            fmt_count(m.scrub_writes),
            fmt_count(m.scrub_probes),
            fmt_count(m.scrub_energy_uj),
            format!("{:.2}", m.mean_wear),
        ]);
    }
    out.push_str(&table.render());
    out.push_str(
        "\nExpected shape: each mechanism added monotonically improves the\n\
         writes/energy axis; UEs collapse once BCH replaces SECDED and stay\n\
         low under lazy write-back.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roster_covers_all_mechanisms() {
        let names: Vec<&str> = roster().iter().map(|(n, _, _)| *n).collect();
        assert_eq!(names.len(), 6);
        assert!(names.contains(&"basic+SECDED"));
        assert!(names.contains(&"combined+BCH6"));
    }
}
