//! E16 — fleet self-healing under recurring shard failures.
//!
//! E15 proves placement churn never changes fleet results; E16 measures
//! what failures *cost*. A fleet runs under a deterministic chaos
//! schedule that panics one (rotating) shard every `k` cadence rounds,
//! for `k` ∈ {2, 4, 8}, across the four scrub policies. The supervisor
//! retries each failed shard from its last good checkpoint with bounded
//! backoff, and the experiment reports the repair bill: retries taken,
//! checkpoint rounds replayed (rounds lost), and the worst observed
//! recovery time (MTTR, in rounds and seconds).
//!
//! The headline invariant rides along: every chaos cell's final rollup
//! must be **byte-identical** to the same policy's failure-free control
//! run (`all_converged` in `BENCH_e16.json`; the CI chaos job fails if
//! it is ever 0), with zero quarantines — recovery is repair, not
//! degradation.

use pcm_analysis::Table;
use scrub_core::EngineKind;
use scrub_telemetry as tel;
use scrubd::{ChaosSpec, Fleet, FleetConfig};

use crate::runner;
use crate::scale::Scale;

/// The four scrub policies compared throughout the study.
const POLICIES: [&str; 4] = ["basic", "threshold", "age-aware", "adaptive"];

/// Kill cadences: a shard panic every `k` cadence rounds.
const KILL_EVERY: [u64; 3] = [2, 4, 8];

/// Fleet sizing derived from the experiment scale: quick is a CI-sized
/// fleet over 12 cadence rounds, full doubles the fleet and the horizon.
fn fleet_config(scale: &Scale, policy: &str) -> FleetConfig {
    let (banks, shards, horizon_s) = if scale.num_lines >= Scale::full().num_lines {
        (256u64, 8u32, 7_200.0)
    } else {
        (64, 4, 3_600.0)
    };
    let engine = match runner::engine() {
        EngineKind::Stepped => "stepped",
        EngineKind::Event => "event",
    };
    format!(
        "[fleet]\n\
         banks = {banks}\n\
         lines-per-bank = 16\n\
         shards = {shards}\n\
         seed = 1606\n\
         horizon-s = {horizon_s}\n\
         cadence-s = 300\n\
         policy = {policy}@300\n\
         engine = {engine}\n\
         threads = 0\n\
         [tenants]\n\
         mix = web:rate=60,read=0.9,pattern=zipf:1.2;\
         batch:rate=20,read=0.2,pattern=uniform\n",
    )
    .parse()
    .expect("E16 fleet config is well-formed")
}

/// One chaos cell: a policy under a kill-every-`k`-rounds schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct Cell {
    /// Policy name.
    pub policy: String,
    /// A shard panic every this many cadence rounds.
    pub kill_every: u64,
    /// Panics injected over the horizon.
    pub injected: u64,
    /// Failed round attempts rolled back for retry.
    pub retries: u64,
    /// Checkpoint rounds replayed — the progress bill of all failures.
    pub recovery_rounds: u64,
    /// Worst failure-to-recovered time, in rounds.
    pub mttr_rounds: u64,
    /// Worst failure-to-recovered time, in seconds of simulated time.
    pub mttr_s: f64,
    /// Rounds the fleet actually took (retries extend the schedule).
    pub rounds: u64,
    /// Shards left quarantined (must be 0 — every failure is transient).
    pub quarantined: u64,
    /// Final rollup byte-identical to the failure-free control run.
    pub converged: bool,
}

/// E16's computed results.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryResult {
    /// Fleet shape for the report header.
    pub banks: u64,
    /// Shard count.
    pub shards: u32,
    /// Nominal cadence rounds to the horizon (failure-free).
    pub nominal_rounds: u64,
    /// One row per (policy, kill cadence).
    pub cells: Vec<Cell>,
}

impl RecoveryResult {
    /// True when every cell converged with zero quarantines.
    pub fn all_converged(&self) -> bool {
        self.cells.iter().all(|c| c.converged && c.quarantined == 0)
    }
}

/// The chaos schedule for one cell: a single-round panic on shard
/// `(i - 1) % shards` at every round `i·k` up to the nominal horizon.
fn chaos_spec(shards: u32, kill_every: u64, nominal_rounds: u64) -> (ChaosSpec, u64) {
    let mut spec = String::from("seed=1606");
    let mut injected = 0u64;
    let mut round = kill_every;
    while round <= nominal_rounds {
        let shard = (injected % shards as u64) as u32;
        spec.push_str(&format!(";panic_shard={shard}@{round}"));
        injected += 1;
        round += kill_every;
    }
    (spec.parse().expect("generated chaos spec parses"), injected)
}

/// Runs the control and chaos fleets for every cell.
pub fn compute(scale: Scale) -> RecoveryResult {
    let probe = fleet_config(&scale, POLICIES[0]);
    let banks = probe.banks;
    let shards = probe.shards;
    let nominal_rounds = (probe.horizon_s / probe.cadence_s).ceil() as u64;

    let mut cells = Vec::new();
    for policy in POLICIES {
        let config = fleet_config(&scale, policy);
        let mut control = Fleet::new(config.clone());
        while !control.done() {
            control.advance_round();
        }
        let control_rollup = control.rollup().to_json();

        for kill_every in KILL_EVERY {
            let (spec, injected) = chaos_spec(shards, kill_every, nominal_rounds);
            let mut fleet = Fleet::new(config.clone());
            fleet.set_chaos(Some(spec));
            while !fleet.done() {
                fleet.advance_round();
            }
            let stats = fleet.stats().clone();
            cells.push(Cell {
                policy: policy.to_string(),
                kill_every,
                injected,
                retries: stats.retries,
                recovery_rounds: stats.recovery_rounds,
                mttr_rounds: stats.mttr_max_rounds,
                mttr_s: stats.mttr_max_rounds as f64 * config.cadence_s,
                rounds: fleet.round(),
                quarantined: fleet.quarantined(),
                converged: fleet.rollup().to_json() == control_rollup,
            });
        }
    }
    let result = RecoveryResult {
        banks,
        shards,
        nominal_rounds,
        cells,
    };
    if tel::enabled() {
        tel::set_value(
            "e16.all_converged",
            if result.all_converged() { 1.0 } else { 0.0 },
        );
        for cell in &result.cells {
            let key = format!("e16.{}.k{}", cell.policy, cell.kill_every);
            tel::set_value(&format!("{key}.mttr_rounds"), cell.mttr_rounds as f64);
            tel::set_value(
                &format!("{key}.recovery_rounds"),
                cell.recovery_rounds as f64,
            );
        }
    }
    result
}

/// Runs E16 and renders its tables.
pub fn run(scale: Scale) -> String {
    render(&compute(scale))
}

/// Runs E16 once, returning the rendered tables plus headline metrics
/// for the `BENCH_e16.json` record.
pub fn run_with_metrics(scale: Scale) -> (String, Vec<(String, f64)>) {
    let result = compute(scale);
    let mut metrics = vec![(
        "all_converged".to_string(),
        if result.all_converged() { 1.0 } else { 0.0 },
    )];
    let mut worst_mttr = 0u64;
    for cell in &result.cells {
        let key = format!("{}.k{}", cell.policy, cell.kill_every);
        metrics.push((format!("{key}.retries"), cell.retries as f64));
        metrics.push((
            format!("{key}.recovery_rounds"),
            cell.recovery_rounds as f64,
        ));
        metrics.push((format!("{key}.mttr_rounds"), cell.mttr_rounds as f64));
        metrics.push((
            format!("{key}.converged"),
            if cell.converged { 1.0 } else { 0.0 },
        ));
        worst_mttr = worst_mttr.max(cell.mttr_rounds);
    }
    metrics.push(("worst_mttr_rounds".to_string(), worst_mttr as f64));
    (render(&result), metrics)
}

fn render(result: &RecoveryResult) -> String {
    let mut out = format!(
        "E16: fleet self-healing under recurring shard failures\n\
         ({} banks in {} shards, {} nominal cadence rounds; one shard\n\
         panic every k rounds, retried from the last good checkpoint)\n\n",
        result.banks, result.shards, result.nominal_rounds,
    );
    let mut table = Table::new(vec![
        "policy",
        "kill_every",
        "injected",
        "retries",
        "rounds_lost",
        "mttr_rounds",
        "mttr_s",
        "rounds",
        "rollup",
    ]);
    for cell in &result.cells {
        table.row(vec![
            cell.policy.clone(),
            format!("{}", cell.kill_every),
            format!("{}", cell.injected),
            format!("{}", cell.retries),
            format!("{}", cell.recovery_rounds),
            format!("{}", cell.mttr_rounds),
            format!("{:.0}", cell.mttr_s),
            format!("{}", cell.rounds),
            if cell.converged && cell.quarantined == 0 {
                "identical".to_string()
            } else {
                "DIVERGED".to_string()
            },
        ]);
    }
    out.push_str(&table.render());
    out.push_str(
        "\nExpected shape: every cell byte-identical to its failure-free control\n\
         run with zero quarantines — recovery replays, never alters, results.\n\
         rounds_lost grows with kill frequency (smaller k, more failures) while\n\
         MTTR stays bounded by the backoff cap regardless of policy: the repair\n\
         bill is per-incident, so the policy choice does not change resilience.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Scale {
        Scale {
            num_lines: 512,
            horizon_s: 1800.0,
            reps: 1,
            mc_cells: 100,
        }
    }

    #[test]
    fn every_cell_converges_and_pays_a_bounded_repair_bill() {
        let result = compute(tiny());
        assert_eq!(result.cells.len(), POLICIES.len() * KILL_EVERY.len());
        assert!(result.all_converged(), "{result:?}");
        for cell in &result.cells {
            assert_eq!(
                cell.retries, cell.injected,
                "each injected panic costs exactly one retry: {cell:?}"
            );
            assert!(
                cell.injected == 0 || cell.mttr_rounds >= 1,
                "a failure takes at least a round to repair: {cell:?}"
            );
            assert!(
                cell.rounds >= result.nominal_rounds,
                "retries never shorten the schedule: {cell:?}"
            );
        }
        // More frequent kills cost more replayed rounds.
        let lost = |k: u64| -> u64 {
            result
                .cells
                .iter()
                .filter(|c| c.kill_every == k)
                .map(|c| c.recovery_rounds)
                .sum()
        };
        assert!(
            lost(2) > lost(8),
            "kill-every-2 should out-bill kill-every-8: {:?} vs {:?}",
            lost(2),
            lost(8)
        );
    }
}
