//! E15 — fleet-scale scrub service under open-loop tenant demand.
//!
//! Everything before E15 simulates one memory. E15 exercises the `scrubd`
//! fleet layer end-to-end at experiment scale: a fleet of banks sharded
//! over the worker pool, each shard running the combined mechanism on the
//! event engine while a multi-tenant open-loop mix (an interactive web
//! tenant, a write-heavy batch tenant, a cold archive tenant) drives
//! demand at configured per-tenant rates.
//!
//! Two fleets run from the same config: a *continuous* one, and a
//! *migrated* one that drains a different shard to a checkpoint at every
//! cadence boundary and resumes it on another worker. The headline result
//! is the fleet invariant — the migrated fleet's merged rollup is
//! **byte-identical** to the continuous one's (`migration_identical` in
//! `BENCH_e15.json`; CI fails the fleet job if it is ever 0) — plus the
//! per-tenant service-level table: open-loop attainment near 1.0 shows
//! the fleet kept up with every tenant's configured demand.
//!
//! Full scale is the acceptance-size fleet: 10,240 banks in 16 shards.

use pcm_analysis::{fmt_count, Table};
use scrub_core::EngineKind;
use scrub_telemetry as tel;
use scrubd::{Fleet, FleetConfig, TenantSlo};

use crate::runner;
use crate::scale::Scale;

/// Fleet sizing derived from the experiment scale: quick is the CI fleet
/// (64 banks × 4 shards), full is the acceptance fleet (10,240 banks × 16
/// shards).
pub fn fleet_config(scale: &Scale) -> FleetConfig {
    let (banks, shards, horizon_s) = if scale.num_lines >= Scale::full().num_lines {
        (10_240u64, 16u32, 3_600.0)
    } else {
        (64, 4, 1_800.0)
    };
    let engine = match runner::engine() {
        EngineKind::Stepped => "stepped",
        EngineKind::Event => "event",
    };
    format!(
        "[fleet]\n\
         banks = {banks}\n\
         lines-per-bank = 16\n\
         shards = {shards}\n\
         seed = 3605\n\
         horizon-s = {horizon_s}\n\
         cadence-s = {cadence}\n\
         policy = combined@900\n\
         engine = {engine}\n\
         threads = 0\n\
         [tenants]\n\
         mix = web:rate=120,read=0.95,pattern=zipf:1.2;\
         batch:rate=40,read=0.2,pattern=zipf:1.4;\
         archive:rate=4,read=0.99,pattern=uniform\n",
        cadence = horizon_s / 6.0,
    )
    .parse()
    .expect("E15 fleet config is well-formed")
}

/// E15's computed results.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetResult {
    /// Fleet shape for the report header.
    pub banks: u64,
    /// Shard count.
    pub shards: u32,
    /// Cadence rounds completed.
    pub rounds: u64,
    /// Drain-and-resume migrations performed by the migrated fleet.
    pub migrations: u64,
    /// Whether the migrated fleet's rollup was byte-identical to the
    /// continuous fleet's — the headline invariant.
    pub migration_identical: bool,
    /// Per-tenant service levels from the continuous fleet.
    pub slo: Vec<TenantSlo>,
    /// Fleet totals from the continuous rollup: (demand ops, scrub
    /// probes, scrub writebacks, detected UE, demand UE).
    pub totals: (u64, u64, u64, u64, u64),
}

/// Runs both fleets and computes the differential.
pub fn compute(scale: Scale) -> FleetResult {
    let config = fleet_config(&scale);
    let banks = config.banks;
    let shards = config.shards;

    let mut continuous = Fleet::new(config.clone());
    while !continuous.done() {
        continuous.advance_round();
    }

    // The migrated fleet drains shard (round-1) % shards at every cadence
    // boundary and resumes it on the next worker — placement churn the
    // rollup must not see.
    let mut migrated = Fleet::new(config);
    while !migrated.done() {
        migrated.advance_round();
        if !migrated.done() {
            let victim = (migrated.round() as u32 - 1) % shards;
            migrated
                .migrate(victim, None)
                .expect("victim shard id is always in range");
        }
    }

    let rollup = continuous.rollup();
    let migration_identical = rollup.to_json() == migrated.rollup().to_json();
    let counter = |k: &str| rollup.counters.get(k).copied().unwrap_or(0);
    let result = FleetResult {
        banks,
        shards,
        rounds: continuous.round(),
        migrations: migrated.migrations(),
        migration_identical,
        slo: continuous.slo(),
        totals: (
            counter("fleet.demand_reads") + counter("fleet.demand_writes"),
            counter("fleet.scrub_probes"),
            counter("fleet.scrub_writebacks"),
            counter("fleet.detected_ue"),
            counter("fleet.demand_ue"),
        ),
    };
    if tel::enabled() {
        tel::set_value(
            "e15.migration_identical",
            if result.migration_identical { 1.0 } else { 0.0 },
        );
        tel::set_value("e15.migrations", result.migrations as f64);
        tel::set_value("e15.demand_ops", result.totals.0 as f64);
        for row in &result.slo {
            tel::set_value(&format!("e15.{}.attainment", row.name), row.attainment);
        }
    }
    result
}

/// Runs E15 and renders its tables.
pub fn run(scale: Scale) -> String {
    render(&compute(scale))
}

/// Runs E15 once, returning the rendered tables plus headline metrics
/// for the `BENCH_e15.json` record.
pub fn run_with_metrics(scale: Scale) -> (String, Vec<(String, f64)>) {
    let result = compute(scale);
    let mut metrics = vec![
        (
            "migration_identical".to_string(),
            if result.migration_identical { 1.0 } else { 0.0 },
        ),
        ("migrations".to_string(), result.migrations as f64),
        ("demand_ops".to_string(), result.totals.0 as f64),
        ("demand_ue".to_string(), result.totals.4 as f64),
    ];
    for row in &result.slo {
        metrics.push((format!("{}.attainment", row.name), row.attainment));
    }
    (render(&result), metrics)
}

fn render(result: &FleetResult) -> String {
    let mut out = format!(
        "E15: fleet-scale scrub service under open-loop tenant demand\n\
         ({} banks in {} shards, combined mechanism, {} cadence rounds;\n\
         migrated fleet drained-and-resumed a shard at every boundary)\n\n",
        fmt_count(result.banks as f64),
        result.shards,
        result.rounds,
    );
    let mut table = Table::new(vec![
        "tenant",
        "expected_ops",
        "reads",
        "writes",
        "attainment",
    ]);
    for row in &result.slo {
        table.row(vec![
            row.name.clone(),
            fmt_count(row.expected_ops),
            fmt_count(row.reads as f64),
            fmt_count(row.writes as f64),
            format!("{:.3}", row.attainment),
        ]);
    }
    out.push_str(&table.render());
    let (demand, probes, writebacks, detected, demand_ue) = result.totals;
    out.push_str(&format!(
        "\nfleet totals: {} demand ops, {} scrub probes, {} writebacks, \
         {} detected UE, {} demand UE\n\
         migration differential: {} migrations, rollup {}\n",
        fmt_count(demand as f64),
        fmt_count(probes as f64),
        fmt_count(writebacks as f64),
        detected,
        demand_ue,
        result.migrations,
        if result.migration_identical {
            "byte-identical to the continuous run"
        } else {
            "DIVERGED from the continuous run (fleet invariant violated!)"
        },
    ));
    out.push_str(
        "\nExpected shape: attainment ~1.0 for every tenant (open-loop demand is\n\
         delivered at the configured rate regardless of scrub load), and the\n\
         migrated rollup byte-identical — placement never changes results.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Scale {
        Scale {
            num_lines: 512,
            horizon_s: 1800.0,
            reps: 1,
            mc_cells: 100,
        }
    }

    #[test]
    fn migration_differential_is_identical_and_tenants_are_served() {
        let result = compute(tiny());
        assert_eq!(result.banks, 64);
        assert_eq!(result.shards, 4);
        assert!(result.migrations >= 4, "{result:?}");
        assert!(result.migration_identical, "fleet invariant violated");
        assert_eq!(result.slo.len(), 3);
        for row in &result.slo {
            assert!(
                (row.attainment - 1.0).abs() < 0.2,
                "open-loop attainment should track the configured rate: {row:?}"
            );
        }
        assert!(result.totals.1 > 0, "combined mechanism must probe");
    }
}
