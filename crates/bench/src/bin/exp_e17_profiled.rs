//! E17 — profiling-guided scrub + symbol ECC head-to-head.

fn main() {
    scrub_bench::runner::main_with("e17", scrub_bench::experiments::e17::run_with_metrics);
}
