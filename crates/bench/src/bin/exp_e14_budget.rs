//! Regenerates experiment E14 (see DESIGN.md): UE rate and demand-latency
//! impact vs. the scrub IOPS budget, comparing the budgeted tour policy
//! against the paper's four unbudgeted mechanisms. Accepts `--scrub-iops`
//! to rebase the budget sweep, `--fault-campaign SPEC`, `--engine`, and
//! `--checkpoint-every S` (routes every rep through mid-tour checkpoint
//! and resume); `SCRUB_QUICK=1` or `--quick` for a CI-sized run. Writes
//! wall-clock, thread count, and per-row metrics to `BENCH_e14.json`.

fn main() {
    scrub_bench::runner::main_with("e14", scrub_bench::experiments::e14::run_with_metrics);
}
