//! Regenerates experiment E15 (see DESIGN.md): the fleet-scale scrub
//! service under open-loop tenant demand. Runs two fleets from one
//! config — continuous, and drain-migrate-resume at every cadence
//! boundary — and reports per-tenant service levels plus the headline
//! byte-identity differential. Accepts `--engine`; `SCRUB_QUICK=1` or
//! `--quick` for the CI fleet (64 banks × 4 shards) instead of the
//! acceptance fleet (10,240 banks × 16 shards). Writes wall-clock,
//! thread count, and per-row metrics to `BENCH_e15.json`.

fn main() {
    scrub_bench::runner::main_with("e15", scrub_bench::experiments::e15::run_with_metrics);
}
