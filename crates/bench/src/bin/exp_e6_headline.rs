//! Regenerates experiment E6 (see DESIGN.md). `SCRUB_QUICK=1` or
//! `--quick` for a CI-sized run; `--threads N` bounds the worker pool.
//! Writes wall-clock, thread count, and headline metrics to
//! `BENCH_e6.json`.

fn main() {
    scrub_bench::runner::main_with("e6", scrub_bench::experiments::e6::run_with_metrics);
}
