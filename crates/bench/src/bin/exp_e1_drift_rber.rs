//! Regenerates experiment E1 (see DESIGN.md). `SCRUB_QUICK=1` or
//! `--quick` for a CI-sized run; `--threads N` bounds the worker pool.
//! Writes wall-clock and scale to `BENCH_e1.json`.

fn main() {
    scrub_bench::runner::main("e1", scrub_bench::experiments::e1::run);
}
