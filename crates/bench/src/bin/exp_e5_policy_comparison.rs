//! Regenerates experiment E5 (see DESIGN.md). `SCRUB_QUICK=1` or
//! `--quick` for a CI-sized run; `--threads N` bounds the worker pool.
//! Writes wall-clock, thread count, and headline metrics to
//! `BENCH_e5.json`.

fn main() {
    scrub_bench::runner::main_with("e5", scrub_bench::experiments::e5::run_with_metrics);
}
