//! Regenerates experiment E9 (see DESIGN.md). `SCRUB_QUICK=1` or
//! `--quick` for a CI-sized run; `--threads N` bounds the worker pool.
//! Writes wall-clock and scale to `BENCH_e9.json`.

fn main() {
    scrub_bench::runner::main("e9", scrub_bench::experiments::e9::run);
}
