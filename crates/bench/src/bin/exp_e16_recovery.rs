//! Regenerates experiment E16 (see DESIGN.md): fleet self-healing under
//! recurring shard failures. Runs, for each of the four scrub policies,
//! a failure-free control fleet plus chaos fleets that panic a rotating
//! shard every k ∈ {2, 4, 8} cadence rounds, and reports the repair
//! bill — retries, replayed rounds, and MTTR — alongside the headline
//! byte-identity differential. Accepts `--engine`; `SCRUB_QUICK=1` or
//! `--quick` for the CI-sized fleet. Writes wall-clock, thread count,
//! and per-cell metrics to `BENCH_e16.json`.

fn main() {
    scrub_bench::runner::main_with("e16", scrub_bench::experiments::e16::run_with_metrics);
}
