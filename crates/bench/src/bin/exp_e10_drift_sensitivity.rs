//! Regenerates experiment E10 (see DESIGN.md). `SCRUB_QUICK=1` for a
//! CI-sized run.

fn main() {
    let scale = scrub_bench::Scale::from_env();
    println!("{}", scrub_bench::experiments::e10::run(scale));
}
