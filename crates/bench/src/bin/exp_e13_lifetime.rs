//! Regenerates experiment E13 (see DESIGN.md): lifetime to first
//! unrepairable error under the graceful-degradation repair hierarchy.
//! Accepts `--fault-campaign SPEC` to replace the built-in campaign;
//! `SCRUB_QUICK=1` or `--quick` for a CI-sized run. Writes wall-clock,
//! thread count, and per-policy lifetime metrics to `BENCH_e13.json`.

fn main() {
    scrub_bench::runner::main_with("e13", scrub_bench::experiments::e13::run_with_metrics);
}
