//! Regenerates experiment X1 (see DESIGN.md). `SCRUB_QUICK=1` or
//! `--quick` for a CI-sized run; `--threads N` bounds the worker pool.
//! Writes wall-clock and scale to `BENCH_x1.json`.

fn main() {
    scrub_bench::runner::main("x1", scrub_bench::experiments::x1::run);
}
