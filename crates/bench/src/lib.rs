//! # scrub-bench — benchmark harness regenerating the paper's evaluation
//!
//! One module (and one binary) per experiment, E1–E12, as indexed in
//! DESIGN.md. Each `run(scale)` returns the rendered table(s) the paper
//! analogue reports; binaries print them. Criterion microbenches live
//! under `benches/`.
//!
//! Set `SCRUB_QUICK=1` (or pass [`Scale::quick`]) for CI-sized runs.

pub mod experiments;
pub mod runner;
pub mod scale;

pub use scale::Scale;
