//! Shared entry point for the `exp_*` binaries: flag parsing, wall-clock
//! timing, and the machine-readable `BENCH_<exp>.json` record.
//!
//! Every experiment binary funnels through [`main`] (or [`main_with`] when
//! it can report headline metrics without recomputation), which
//!
//! 1. parses `--threads N`, `--quick`, `--full`, and `--bench-out PATH`,
//! 2. resolves the worker pool (flag > `SCRUBSIM_THREADS` > machine),
//! 3. runs the experiment and prints its tables to stdout, and
//! 4. writes a small JSON record — experiment id, thread count, wall-clock
//!    seconds, scale, and any headline metrics — next to the working
//!    directory (stderr announces the path, keeping stdout diffable).

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

use pcm_memsim::CampaignSpec;
use scrub_core::EngineKind;
use scrub_telemetry as tel;

use crate::scale::Scale;

/// The process-wide simulation core selected by `--engine` (0 = stepped,
/// 1 = event). An atomic rather than a `OnceLock` because
/// `--compare-engines` flips it between passes of the same process.
static ENGINE: AtomicU8 = AtomicU8::new(0);

/// The simulation core every simulation in this process should run under.
pub fn engine() -> EngineKind {
    match ENGINE.load(Ordering::Relaxed) {
        0 => EngineKind::Stepped,
        _ => EngineKind::Event,
    }
}

/// Selects the process-wide simulation core (flag parsing does this;
/// public so tests and `--compare-engines` can switch between passes).
pub fn set_engine(kind: EngineKind) {
    ENGINE.store(
        match kind {
            EngineKind::Stepped => 0,
            EngineKind::Event => 1,
        },
        Ordering::Relaxed,
    );
}

/// The process-wide fault campaign installed by `--fault-campaign`.
static FAULT_CAMPAIGN: OnceLock<CampaignSpec> = OnceLock::new();

/// The campaign every simulation in this process should attach, if one
/// was requested (via `--fault-campaign` or [`set_fault_campaign`]).
pub fn fault_campaign() -> Option<CampaignSpec> {
    FAULT_CAMPAIGN.get().copied()
}

/// Installs the process-wide fault campaign (flag parsing does this;
/// public so tests can exercise the campaign path). First install wins —
/// the campaign is part of a run's identity and must not change mid-run.
pub fn set_fault_campaign(spec: CampaignSpec) {
    let _ = FAULT_CAMPAIGN.set(spec);
}

/// The process-wide checkpoint cadence installed by `--checkpoint-every`.
static CHECKPOINT_EVERY_S: OnceLock<f64> = OnceLock::new();

/// The checkpoint cadence (simulated seconds) every simulation in this
/// process should split at, if one was requested. Experiments honoring it
/// run each simulation through `scrub_core::run_split` — exercising the
/// full serialize/resume path — and must produce output byte-identical to
/// a continuous run's.
pub fn checkpoint_every_s() -> Option<f64> {
    CHECKPOINT_EVERY_S.get().copied()
}

/// Installs the process-wide checkpoint cadence (flag parsing does this;
/// public so tests can exercise the split path). First install wins.
pub fn set_checkpoint_every_s(every_s: f64) {
    let _ = CHECKPOINT_EVERY_S.set(every_s);
}

/// The process-wide scrub IOPS budget installed by `--scrub-iops`.
static SCRUB_IOPS: OnceLock<f64> = OnceLock::new();

/// The token-bucket refill rate budgeted tour policies should run at, if
/// one was requested (via `--scrub-iops` or [`set_scrub_iops`]).
pub fn scrub_iops() -> Option<f64> {
    SCRUB_IOPS.get().copied()
}

/// Installs the process-wide scrub IOPS budget (flag parsing does this;
/// public so tests can exercise budgeted runs). First install wins.
pub fn set_scrub_iops(iops: f64) {
    let _ = SCRUB_IOPS.set(iops);
}

struct Opts {
    threads: Option<usize>,
    scale: Option<Scale>,
    bench_out: Option<String>,
    telemetry_out: Option<String>,
    fault_campaign: Option<CampaignSpec>,
    checkpoint_every_s: Option<f64>,
    engine: Option<EngineKind>,
    compare_engines: bool,
    horizon_s: Option<f64>,
    scrub_iops: Option<f64>,
}

fn usage(exp: &str) -> ! {
    eprintln!(
        "usage: exp_{exp} [--threads N] [--quick|--full] [--bench-out PATH] [--telemetry-out PATH]\n\
         \x20                [--fault-campaign SPEC]\n\
         \x20 --threads N        worker pool size (default: $SCRUBSIM_THREADS or all cores)\n\
         \x20 --quick            CI-sized scale (same as SCRUB_QUICK=1)\n\
         \x20 --full             paper-sized scale (overrides SCRUB_QUICK)\n\
         \x20 --bench-out P      where to write the JSON record (default: BENCH_{exp}.json)\n\
         \x20 --telemetry-out P  enable the telemetry recorder and write its versioned\n\
         \x20                    JSON document (counters, phases, event journal) to P\n\
         \x20 --fault-campaign S deterministic fault campaign attached to every simulation,\n\
         \x20                    e.g. 'seed=1;stuck=lines:8,cells:6;seu=lines:16,count:4,window:3600'\n\
         \x20 --checkpoint-every SECS\n\
         \x20                    run each simulation as checkpoint/resume segments of this\n\
         \x20                    many simulated seconds (results are byte-identical)\n\
         \x20 --engine E         simulation core: 'stepped' (cadence grid, default) or\n\
         \x20                    'event' (priority-queue with idle fast-forward) —\n\
         \x20                    results are identical, only wall-clock differs\n\
         \x20 --compare-engines  run the experiment under both cores, verify the rendered\n\
         \x20                    tables match, and report the wall-clock ratio\n\
         \x20 --horizon-s SECS   override the scale's simulated horizon (e.g. 31536000\n\
         \x20                    for a 1-year run under --engine event)\n\
         \x20 --scrub-iops N     token-bucket refill rate for budgeted tour policies\n\
         \x20                    (experiments that sweep budgets scale their sweep by it)"
    );
    std::process::exit(2);
}

/// One-line fatal error for a malformed flag or environment value: the
/// message names the offending input, stderr gets exactly one line, and
/// the exit code matches usage errors.
fn fail(exp: &str, msg: &str) -> ! {
    eprintln!("exp_{exp}: {msg}");
    std::process::exit(2);
}

fn parse_opts(exp: &str) -> Opts {
    let mut opts = Opts {
        threads: None,
        scale: None,
        bench_out: None,
        telemetry_out: None,
        fault_campaign: None,
        checkpoint_every_s: None,
        engine: None,
        compare_engines: false,
        horizon_s: None,
        scrub_iops: None,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut value = || it.next().cloned().unwrap_or_else(|| usage(exp));
        match flag.as_str() {
            "--threads" => {
                let raw = value();
                match raw.parse::<usize>() {
                    Ok(n) if n > 0 => opts.threads = Some(n),
                    _ => fail(
                        exp,
                        &format!("--threads must be a positive integer, got {raw:?}"),
                    ),
                }
            }
            "--quick" => opts.scale = Some(Scale::quick()),
            "--full" => opts.scale = Some(Scale::full()),
            "--bench-out" => opts.bench_out = Some(value()),
            "--telemetry-out" => opts.telemetry_out = Some(value()),
            "--fault-campaign" => {
                let raw = value();
                match raw.parse::<CampaignSpec>() {
                    Ok(spec) => opts.fault_campaign = Some(spec),
                    Err(e) => fail(exp, &e),
                }
            }
            "--checkpoint-every" => {
                let raw = value();
                match raw.parse::<f64>() {
                    Ok(s) if s.is_finite() && s > 0.0 => opts.checkpoint_every_s = Some(s),
                    _ => fail(
                        exp,
                        &format!(
                            "--checkpoint-every must be a positive finite number, got {raw:?}"
                        ),
                    ),
                }
            }
            "--engine" => {
                let raw = value();
                match EngineKind::parse(&raw) {
                    Some(kind) => opts.engine = Some(kind),
                    None => fail(
                        exp,
                        &format!("--engine must be 'stepped' or 'event', got {raw:?}"),
                    ),
                }
            }
            "--compare-engines" => opts.compare_engines = true,
            "--scrub-iops" => {
                let raw = value();
                match raw.parse::<f64>() {
                    Ok(s) if s.is_finite() && s > 0.0 => opts.scrub_iops = Some(s),
                    _ => fail(
                        exp,
                        &format!("--scrub-iops must be a positive finite number, got {raw:?}"),
                    ),
                }
            }
            "--horizon-s" => {
                let raw = value();
                match raw.parse::<f64>() {
                    Ok(s) if s.is_finite() && s > 0.0 => opts.horizon_s = Some(s),
                    _ => fail(
                        exp,
                        &format!("--horizon-s must be a positive finite number, got {raw:?}"),
                    ),
                }
            }
            _ => usage(exp),
        }
    }
    if opts.engine.is_some() && opts.compare_engines {
        fail(exp, "--engine and --compare-engines are mutually exclusive");
    }
    opts
}

/// Renders one f64 as JSON (finite numbers only; anything else is null).
fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_string()
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn render_record(
    exp: &str,
    engine: &str,
    threads: usize,
    wall_s: f64,
    scale: &Scale,
    metrics: &[(String, f64)],
) -> String {
    let metric_fields: Vec<String> = metrics
        .iter()
        .map(|(k, v)| format!("    \"{}\": {}", json_escape(k), json_f64(*v)))
        .collect();
    format!(
        "{{\n  \"experiment\": \"{}\",\n  \"engine\": \"{}\",\n  \"threads\": {},\n  \
         \"wall_s\": {},\n  \"horizon_s\": {},\n  \
         \"scale\": {{\n    \"num_lines\": {},\n    \"horizon_s\": {},\n    \
         \"reps\": {},\n    \"mc_cells\": {}\n  }},\n  \"metrics\": {{\n{}\n  }}\n}}\n",
        json_escape(exp),
        json_escape(engine),
        threads,
        json_f64(wall_s),
        json_f64(scale.horizon_s),
        scale.num_lines,
        json_f64(scale.horizon_s),
        scale.reps,
        scale.mc_cells,
        metric_fields.join(",\n")
    )
}

/// Runs an experiment binary that has no cheap headline metrics.
pub fn main(exp: &'static str, run: fn(Scale) -> String) {
    main_with(exp, |scale| (run(scale), Vec::new()));
}

/// Runs an experiment binary whose closure also returns `(name, value)`
/// headline metrics for the JSON record (computed in the same pass as the
/// rendered tables — never by re-running the experiment). `Fn`, not
/// `FnOnce`: `--compare-engines` runs the experiment once per core.
pub fn main_with<F>(exp: &'static str, run: F)
where
    F: Fn(Scale) -> (String, Vec<(String, f64)>),
{
    let opts = parse_opts(exp);
    // Validate the environment up front: a malformed SCRUBSIM_THREADS
    // fails loudly here instead of being silently ignored mid-run.
    if let Err(e) = scrub_exec::env_threads() {
        fail(exp, &e);
    }
    if let Some(n) = opts.threads {
        scrub_exec::set_default_threads(n);
    }
    if let Some(spec) = opts.fault_campaign {
        set_fault_campaign(spec);
    }
    if let Some(every_s) = opts.checkpoint_every_s {
        set_checkpoint_every_s(every_s);
    }
    if let Some(kind) = opts.engine {
        set_engine(kind);
    }
    if let Some(iops) = opts.scrub_iops {
        set_scrub_iops(iops);
    }
    let threads = scrub_exec::default_threads();
    let mut scale = opts.scale.unwrap_or_else(Scale::from_env);
    if let Some(h) = opts.horizon_s {
        scale.horizon_s = h;
    }
    if opts.telemetry_out.is_some() {
        tel::install(tel::Config::default());
        tel::set_meta("experiment", exp);
        tel::set_meta(
            "engine",
            if opts.compare_engines {
                "compare"
            } else {
                engine().label()
            },
        );
        tel::set_meta("threads", &threads.to_string());
        tel::set_meta("num_lines", &scale.num_lines.to_string());
        tel::set_meta("horizon_s", &format!("{}", scale.horizon_s));
        tel::set_meta("reps", &scale.reps.to_string());
        if let Some(spec) = fault_campaign() {
            tel::set_meta("fault_campaign", &spec.to_string());
        }
    }
    let timed_pass = |kind: EngineKind| {
        set_engine(kind);
        let started = Instant::now();
        let result = {
            let _scope = tel::phase(&format!("exp.{exp}.{}", kind.label()));
            run(scale)
        };
        (result, started.elapsed().as_secs_f64())
    };
    let (output, mut metrics, wall_s, engine_label);
    if opts.compare_engines {
        let ((stepped_out, stepped_metrics), stepped_s) = timed_pass(EngineKind::Stepped);
        let ((event_out, event_metrics), event_s) = timed_pass(EngineKind::Event);
        if stepped_out != event_out || stepped_metrics != event_metrics {
            eprintln!("[{exp}] ENGINE MISMATCH: stepped and event cores rendered different output");
            println!("{stepped_out}");
            println!("{event_out}");
            std::process::exit(1);
        }
        eprintln!(
            "[{exp}] engines: stepped {stepped_s:.2}s, event {event_s:.2}s ({:.2}x); \
             outputs identical",
            stepped_s / event_s.max(1e-9)
        );
        output = event_out;
        metrics = event_metrics;
        metrics.push(("engine_stepped_wall_s".to_string(), stepped_s));
        metrics.push(("engine_event_wall_s".to_string(), event_s));
        metrics.push(("engine_speedup".to_string(), stepped_s / event_s.max(1e-9)));
        wall_s = stepped_s + event_s;
        engine_label = "compare";
    } else {
        let ((out, m), secs) = timed_pass(engine());
        output = out;
        metrics = m;
        wall_s = secs;
        engine_label = engine().label();
    }
    println!("{output}");
    let record = render_record(exp, engine_label, threads, wall_s, &scale, &metrics);
    let path = opts
        .bench_out
        .unwrap_or_else(|| format!("BENCH_{exp}.json"));
    match std::fs::write(&path, &record) {
        Ok(()) => eprintln!("[{exp}] {wall_s:.2}s on {threads} thread(s); record: {path}"),
        Err(e) => eprintln!("[{exp}] could not write {path}: {e}"),
    }
    if let Some(tel_path) = opts.telemetry_out {
        // Mirror the BENCH headline metrics into the document's value map
        // so one file carries both the report numbers and the op-level
        // counters they must reconcile with.
        for (k, v) in &metrics {
            tel::set_value(&format!("bench.{k}"), *v);
        }
        let doc = tel::snapshot();
        match std::fs::write(&tel_path, doc.to_json()) {
            Ok(()) => eprintln!("[{exp}] telemetry document: {tel_path}"),
            Err(e) => eprintln!("[{exp}] could not write {tel_path}: {e}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_is_valid_shape() {
        let scale = Scale::quick();
        let rec = render_record(
            "e6",
            "event",
            4,
            1.25,
            &scale,
            &[("ue_reduction_pct".to_string(), 96.5)],
        );
        assert!(rec.contains("\"experiment\": \"e6\""));
        assert!(rec.contains("\"engine\": \"event\""));
        assert!(rec.contains("\"threads\": 4"));
        assert!(rec.contains(&format!("\"horizon_s\": {}", scale.horizon_s)));
        assert!(rec.contains("\"ue_reduction_pct\": 96.5"));
        // Balanced braces — cheap sanity check on the hand-rolled JSON.
        let open = rec.matches('{').count();
        let close = rec.matches('}').count();
        assert_eq!(open, close);
    }

    #[test]
    fn non_finite_metrics_become_null() {
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(f64::INFINITY), "null");
        assert_eq!(json_f64(2.5), "2.5");
    }

    #[test]
    fn escapes_quotes_and_controls() {
        assert_eq!(json_escape("a\"b\\c\n"), "a\\\"b\\\\c\\u000a");
    }
}
