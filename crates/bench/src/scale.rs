//! Experiment sizing: full (paper-scale) vs. quick (CI-scale).

/// Sizing knobs shared by every experiment.
///
/// # Examples
///
/// ```
/// use scrub_bench::Scale;
/// let q = Scale::quick();
/// let f = Scale::full();
/// assert!(q.num_lines < f.num_lines);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scale {
    /// Memory size in 64-byte lines.
    pub num_lines: u32,
    /// Simulated horizon (seconds).
    pub horizon_s: f64,
    /// Independent seeds averaged per configuration.
    pub reps: u32,
    /// Monte-Carlo cells for device-validation experiments.
    pub mc_cells: usize,
}

impl Scale {
    /// Paper-scale runs (tens of minutes of wall time for the full suite
    /// on one core). Statistical weight comes from the line count × the
    /// day-long horizon; per-configuration replication is deferred to the
    /// seed-sweep hooks each experiment exposes.
    pub fn full() -> Self {
        Self {
            num_lines: 16_384,
            horizon_s: 86_400.0,
            reps: 1,
            mc_cells: 200_000,
        }
    }

    /// CI-scale runs (seconds).
    pub fn quick() -> Self {
        Self {
            num_lines: 8_192,
            horizon_s: 12.0 * 3600.0,
            reps: 1,
            mc_cells: 20_000,
        }
    }

    /// `quick()` when the `SCRUB_QUICK` environment variable is set to a
    /// non-zero value, else `full()`.
    pub fn from_env() -> Self {
        match std::env::var("SCRUB_QUICK") {
            Ok(v) if v != "0" && !v.is_empty() => Self::quick(),
            _ => Self::full(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_is_smaller() {
        let q = Scale::quick();
        let f = Scale::full();
        assert!(q.num_lines < f.num_lines);
        assert!(q.horizon_s < f.horizon_s);
        assert!(q.mc_cells < f.mc_cells);
    }
}
