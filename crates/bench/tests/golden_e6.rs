//! Golden-file regression pin for the E6 headline metrics.
//!
//! The determinism contract makes every E6 metric a pure function of
//! `(scale, seed)`, so the exact f64 values can be pinned. A drift in any
//! bit — a reordered accumulation, a changed RNG draw, an edited energy
//! constant — shows up as a diff against the checked-in golden file, not
//! as a silently shifted headline.
//!
//! Blessing (after an *intentional* behavior change):
//!
//! ```text
//! SCRUBSIM_BLESS=1 cargo test -p scrub-bench --test golden_e6
//! SCRUBSIM_BLESS=1 SCRUBSIM_FULL_TEST=1 cargo test --release -p scrub-bench \
//!     --test golden_e6 -- --ignored
//! ```
//!
//! then commit the regenerated `tests/golden/*.txt` alongside the change
//! that moved the numbers, with the reason in the commit message.

use scrub_bench::experiments::e6::{self, Headline};
use scrub_bench::Scale;
use std::path::PathBuf;

/// Renders the pinned metrics as stable `key = value` lines. Values use
/// Rust's shortest round-trip f64 formatting, so equality on the rendered
/// text is bit-equality on the floats.
fn render_metrics(h: &Headline) -> String {
    let mut out = String::new();
    for (prefix, m) in [("basic", &h.basic), ("combined", &h.combined)] {
        out.push_str(&format!("{prefix}.ue = {}\n", m.ue));
        out.push_str(&format!("{prefix}.scrub_writes = {}\n", m.scrub_writes));
        out.push_str(&format!("{prefix}.scrub_probes = {}\n", m.scrub_probes));
        out.push_str(&format!(
            "{prefix}.scrub_energy_uj = {}\n",
            m.scrub_energy_uj
        ));
        out.push_str(&format!("{prefix}.mean_wear = {}\n", m.mean_wear));
    }
    out
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.txt"))
}

/// Computes E6 at `scale` on one worker (the thread count is already
/// guaranteed not to matter; pinning it keeps this test independent of
/// the process-global default other tests may set) and compares — or,
/// under `SCRUBSIM_BLESS=1`, rewrites — the golden file.
fn check_golden(name: &str, scale: Scale) {
    scrub_exec::set_default_threads(1);
    let h = e6::compute(scale);
    let got = render_metrics(&h);
    let path = golden_path(name);
    if std::env::var("SCRUBSIM_BLESS").is_ok_and(|v| v != "0" && !v.is_empty()) {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &got).unwrap();
        eprintln!("[golden_e6] blessed {}", path.display());
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); generate it with \
             SCRUBSIM_BLESS=1 (see module docs)",
            path.display()
        )
    });
    assert_eq!(
        got,
        want,
        "E6 {name} metrics drifted from {}.\n\
         If this change is intentional, re-bless per the module docs and\n\
         explain the drift in the commit message.",
        path.display()
    );
}

/// Tiny scale: runs in a few seconds even in debug builds, so it guards
/// every `cargo test`. Same shape as the determinism suite's tiny scale.
#[test]
fn golden_e6_tiny() {
    check_golden(
        "e6_tiny",
        Scale {
            num_lines: 1024,
            horizon_s: 3.0 * 3600.0,
            reps: 2,
            mc_cells: 100,
        },
    );
}

/// Quick (CI) scale: the scale the headline numbers are reported at.
/// Too slow for the default test run, so it is both `#[ignore]`d and
/// gated on `SCRUBSIM_FULL_TEST=1`; run it via
/// `SCRUBSIM_FULL_TEST=1 cargo test --release -p scrub-bench --test golden_e6 -- --ignored`.
#[test]
#[ignore = "quick-scale E6 takes ~40s; set SCRUBSIM_FULL_TEST=1 and run with --ignored"]
fn golden_e6_quick() {
    if !std::env::var("SCRUBSIM_FULL_TEST").is_ok_and(|v| v != "0" && !v.is_empty()) {
        eprintln!("[golden_e6] SCRUBSIM_FULL_TEST not set; skipping quick-scale golden");
        return;
    }
    check_golden("e6_quick", Scale::quick());
}
