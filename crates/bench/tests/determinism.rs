//! Cross-thread-count determinism of the experiment harness.
//!
//! The acceptance bar for the parallel execution layer: rendered
//! experiment output — tables formatted from f64 aggregates, so any bit
//! that drifts shows up — must be *byte-identical* whether the
//! `workload × rep` grid runs on one worker or eight. Seeds are pure
//! functions of `(base_seed, rep)` and RNG streams of `(seed, bank)`, so
//! scheduling must not be observable.

use scrub_bench::experiments::{e13, e5, e6};
use scrub_bench::Scale;

fn tiny(num_lines: u32, hours: f64) -> Scale {
    Scale {
        num_lines,
        horizon_s: hours * 3600.0,
        // Two reps so the rep dimension of the job grid is exercised too.
        reps: 2,
        mc_cells: 100,
    }
}

/// One test owns the process-global thread default for its whole run, so
/// the sequential and parallel passes cannot race with each other.
#[test]
fn experiment_output_is_byte_identical_across_thread_counts() {
    let e6_scale = tiny(1024, 3.0);
    let e5_scale = tiny(512, 2.0);
    // E13 attaches its built-in fault campaign (fixed seed), enables the
    // repair hierarchy, and runs UE recovery — all of which must stay on
    // the per-bank RNG streams to keep scheduling unobservable.
    let e13_scale = tiny(512, 6.0);

    scrub_exec::set_default_threads(1);
    let e6_seq = e6::run(e6_scale);
    let e5_seq = e5::run(e5_scale);
    let e13_seq = e13::run(e13_scale);

    scrub_exec::set_default_threads(8);
    let e6_par = e6::run(e6_scale);
    let e5_par = e5::run(e5_scale);
    let e13_par = e13::run(e13_scale);

    scrub_exec::set_default_threads(0); // back to auto for other tests

    assert_eq!(e6_seq, e6_par, "E6 output depends on thread count");
    assert_eq!(e5_seq, e5_par, "E5 output depends on thread count");
    assert_eq!(e13_seq, e13_par, "E13 output depends on thread count");
}
