//! End-to-end demo of the fault-injection + graceful-degradation PR:
//!
//! * a campaign driven through E13 shows every repair-hierarchy stage —
//!   ECP repair, line retirement, bank degradation — in both the report
//!   stats and the telemetry counters/journal;
//! * a deliberately panicking rep inside a `par_try_map` fan-out is
//!   isolated: every other rep's report is byte-identical to a clean run.
//!
//! The telemetry recorder and the `--fault-campaign` global are
//! process-wide, so the telemetry demo lives in ONE test function and the
//! panic test passes its campaign explicitly instead of using the global.

use pcm_ecc::CodeSpec;
use pcm_memsim::{CampaignSpec, RecoveryConfig, RepairConfig};
use pcm_model::{DeviceConfig, EnduranceSpec};
use scrub_bench::experiments::e13;
use scrub_bench::{runner, Scale};
use scrub_core::{DemandTraffic, PolicyKind, SimConfig, SimReport, Simulation};
use scrub_telemetry as tel;

#[test]
fn campaign_drives_all_repair_stages_into_telemetry() {
    scrub_exec::set_default_threads(2);
    tel::install(tel::Config {
        journal_capacity: 65_536,
        event_mask: tel::EventClass::Repair.bit(),
    });
    runner::set_fault_campaign(
        "seed=99;stuck=lines:64,cells:4;seu=lines:64,count:2,window:21600"
            .parse()
            .expect("valid demo campaign"),
    );
    let scale = Scale {
        num_lines: 1024,
        horizon_s: 12.0 * 3600.0,
        reps: 1,
        mc_cells: 100,
    };
    let rows = e13::compute(scale);
    let basic = rows.iter().find(|r| r.label == "basic").expect("basic row");
    assert!(basic.ecp_repairs > 0.0, "{basic:?}");
    assert!(basic.lines_retired > 0.0, "{basic:?}");
    assert!(basic.unrepairable > 0.0, "{basic:?}");

    let doc = tel::snapshot();
    for key in ["ecp_repairs", "lines_retired", "unrepairable_ue"] {
        assert!(
            doc.counters.get(key).copied().unwrap_or(0) > 0,
            "counter {key} missing or zero: {:?}",
            doc.counters
        );
    }
    // The journal (filtered to Repair events) carries each transition.
    for tag in ["ecp_repair", "line_retired", "bank_degraded"] {
        assert!(
            doc.events.iter().any(|e| e.kind.tag() == tag),
            "no {tag} event in journal ({} events)",
            doc.events.len()
        );
    }
    // The recorded values mirror the computed row bit-for-bit.
    assert_eq!(
        doc.values.get("e13.basic.ecp_repairs").copied(),
        Some(basic.ecp_repairs)
    );
}

/// Builds one rep of a small campaign-stressed simulation. The campaign
/// is passed explicitly (not via the process-global) so this test is
/// independent of the telemetry demo above.
fn rep_report(rep: u32) -> SimReport {
    let mut builder = SimConfig::builder();
    builder
        .num_lines(512)
        .device(
            DeviceConfig::builder()
                .endurance(EnduranceSpec::new(30.0, 0.4))
                .build(),
        )
        .code(CodeSpec::bch_line(6))
        .policy(PolicyKind::Basic { interval_s: 900.0 })
        .traffic(DemandTraffic::Idle)
        .horizon_s(4.0 * 3600.0)
        .seed(100 + rep as u64 * 1000)
        .fault_campaign(
            "seed=5;stuck=lines:32,cells:4"
                .parse::<CampaignSpec>()
                .expect("valid spec"),
        )
        .repair(RepairConfig::default())
        .ue_recovery(RecoveryConfig::default());
    Simulation::new(builder.build()).run()
}

#[test]
fn panicking_rep_does_not_poison_the_others() {
    // Silence the expected panic's default backtrace spew.
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let reps: Vec<u32> = (0..6).collect();
    let clean: Vec<Result<SimReport, scrub_exec::JobError>> =
        scrub_exec::par_try_map(4, reps.clone(), 0, |_, &rep| rep_report(rep));
    let poisoned: Vec<Result<SimReport, scrub_exec::JobError>> =
        scrub_exec::par_try_map(4, reps, 0, |_, &rep| {
            if rep == 3 {
                panic!("injected harness fault in rep 3");
            }
            rep_report(rep)
        });
    std::panic::set_hook(hook);
    assert_eq!(clean.len(), poisoned.len());
    for (rep, (c, p)) in clean.iter().zip(&poisoned).enumerate() {
        let c = c.as_ref().expect("clean run has no panics");
        if rep == 3 {
            let err = p.as_ref().expect_err("rep 3 must fail");
            assert!(
                err.to_string().contains("injected harness fault"),
                "error should carry the panic message: {err}"
            );
        } else {
            let p = p.as_ref().expect("other reps must survive");
            assert_eq!(c, p, "rep {rep} diverged because another rep panicked");
        }
    }
}
