//! The checkpoint/resume differential harness: a horizon split into
//! segments at k checkpoints must land, byte for byte, exactly where the
//! straight-through run lands — final report (and its CSV row), the
//! experiment-level metrics the golden pins guard, and the merged
//! telemetry journal.
//!
//! The recorder and the runner's checkpoint cadence are process-global,
//! so everything lives in ONE test function — this file being its own
//! integration-test binary guarantees a fresh process for both.

use scrub_bench::experiments::e13;
use scrub_bench::{runner, Scale};
use scrub_core::{DemandTraffic, PolicyKind, SimConfig, SimReport, Simulation};
use scrub_telemetry as tel;

/// Builds the run under test: demand traffic (so an in-flight pending op
/// crosses snapshot boundaries), an active fault campaign, and the full
/// repair/recovery hierarchy — every serialized subsystem exercised.
fn config(policy: &PolicyKind) -> SimConfig {
    let mut b = SimConfig::builder();
    b.num_lines(1024)
        .code(pcm_ecc::CodeSpec::bch_line(6))
        .policy(policy.clone())
        .traffic(DemandTraffic::suite(pcm_workloads::WorkloadId::KvCache))
        .horizon_s(3.0 * 3600.0)
        .seed(77)
        .threads(1)
        .fault_campaign(
            "seed=7;stuck=lines:32,cells:3;seu=lines:128,count:2,window:3600"
                .parse()
                .expect("valid campaign spec"),
        )
        .repair(pcm_memsim::RepairConfig::default())
        .ue_recovery(pcm_memsim::RecoveryConfig { recover_prob: 0.5 });
    b.build()
}

/// Runs one simulation split at `k` evenly spaced checkpoints,
/// serializing/deserializing the full state at each boundary and
/// snapshotting the telemetry recorder per segment. Returns the final
/// report, the per-segment telemetry documents, and whether any
/// checkpoint landed mid-sweep (sweep position not on a whole-sweep
/// boundary).
fn run_split_instrumented(config: SimConfig, k: u32) -> (SimReport, Vec<tel::Document>, bool) {
    let horizon_s = config.horizon_s;
    let cadence_s = horizon_s / (k + 1) as f64;
    let num_lines = config.geometry.num_lines() as u64;
    let mut docs = Vec::new();
    let mut mid_sweep = false;
    tel::reset();
    let mut sim = Simulation::new(config);
    for i in 1..=k {
        sim.run_to(i as f64 * cadence_s);
        if !sim.memory().stats().scrub_probes.is_multiple_of(num_lines) {
            mid_sweep = true;
        }
        let bytes = sim.checkpoint().expect("checkpoint");
        let cfg = sim.config().clone();
        docs.push(tel::snapshot());
        tel::reset();
        // Resume from the serialized bytes only — the old instance is
        // dropped, exactly as in a separate process invocation.
        sim = Simulation::resume(cfg, &bytes).expect("resume");
    }
    let report = sim.finish();
    docs.push(tel::snapshot());
    (report, docs, mid_sweep)
}

#[test]
fn split_runs_are_byte_identical_to_continuous() {
    scrub_exec::set_default_threads(1);
    let scale = Scale {
        num_lines: 1024,
        horizon_s: 6.0 * 3600.0,
        reps: 1,
        mc_cells: 100,
    };

    // Experiment-level equivalence: E13's lifetime rows (the metrics its
    // golden BENCH record pins) must be bit-identical when every rep runs
    // through the serialize/resume path. The cadence is process-global
    // (first install wins), so the continuous pass runs first.
    let continuous_rows = e13::compute(scale);
    runner::set_checkpoint_every_s(2400.0);
    assert_eq!(
        runner::checkpoint_every_s(),
        Some(2400.0),
        "cadence must install"
    );
    let split_rows = e13::compute(scale);
    assert_eq!(
        continuous_rows, split_rows,
        "E13 metrics moved under --checkpoint-every"
    );

    // Per-simulation equivalence: four policies, k = 1, 2, 3 checkpoints,
    // full state + telemetry compared. Sim-class events only: one SimDone
    // per finished simulation, so nothing is ever evicted.
    tel::install(tel::Config {
        journal_capacity: 4096,
        event_mask: tel::EventClass::Sim.bit(),
    });
    let mut saw_mid_sweep = false;
    for (label, policy) in e13::roster() {
        tel::reset();
        let continuous = Simulation::new(config(&policy)).run();
        let continuous_doc = tel::snapshot();
        let continuous_merged = tel::Document::merge_segments(&[continuous_doc]);
        assert_eq!(
            continuous_merged.events_dropped, 0,
            "{label}: events evicted"
        );
        for k in 1..=3u32 {
            let (report, docs, mid_sweep) = run_split_instrumented(config(&policy), k);
            saw_mid_sweep |= mid_sweep;
            assert_eq!(
                report, continuous,
                "{label}: report diverged at k={k} checkpoints"
            );
            assert_eq!(
                report.csv_row(),
                continuous.csv_row(),
                "{label}: CSV row diverged at k={k}"
            );
            assert_eq!(docs.len(), (k + 1) as usize);
            let merged = tel::Document::merge_segments(&docs);
            assert_eq!(merged.events_dropped, 0, "{label}: events evicted at k={k}");
            assert_eq!(
                merged.to_json(),
                continuous_merged.to_json(),
                "{label}: merged telemetry diverged at k={k}"
            );
        }
    }
    assert!(
        saw_mid_sweep,
        "no checkpoint landed mid-sweep; the harness is not exercising \
         in-flight sweep state"
    );

    // Tripwire: the differential harness must actually be able to fail.
    // A snapshot with one sabotaged field (bank 0's RNG stream replaced
    // by a default-seeded one — same length, wrong bytes) decodes cleanly
    // but must produce a diverging report.
    let policy = PolicyKind::combined_default(900.0);
    tel::set_enabled(false);
    let continuous = Simulation::new(config(&policy)).run();
    let mut sim = Simulation::new(config(&policy));
    sim.run_to(5400.0);
    let sabotaged = sim
        .checkpoint_omitting_bank0_rng()
        .expect("tripwire checkpoint");
    let cfg = sim.config().clone();
    let diverged = Simulation::resume(cfg, &sabotaged)
        .expect("structurally valid snapshot")
        .finish();
    assert_ne!(
        diverged, continuous,
        "tripwire snapshot with a wrong bank-0 RNG stream still matched — \
         the differential harness cannot detect omitted state"
    );
}
