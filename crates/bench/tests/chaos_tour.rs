//! Kill-and-resume chaos campaigns for the budgeted tour policy.
//!
//! The tour's extra state — bucket level, defer streak, tour position,
//! per-bank origins — must survive a checkpoint taken at an arbitrary
//! moment (mid-tour, mid-throttle, with a fault campaign rewriting cells
//! underneath it) such that the resumed run is byte-identical to one
//! that never stopped, under BOTH simulation engines. The harness kills
//! the simulation at k in-flight points, resumes from the serialized
//! bytes alone, and re-checkpoints immediately to prove the round trip
//! is a fixed point.
//!
//! The E14 cadence test lives in its own function because the runner's
//! `--checkpoint-every` global is process-wide (this file being its own
//! test binary keeps that install isolated from other suites).

use scrub_bench::experiments::e14;
use scrub_bench::{runner, Scale};
use scrub_core::{DemandTraffic, EngineKind, PolicyKind, SimConfig, SimReport, Simulation};

const LINES: u32 = 1024;
const HORIZON_S: f64 = 3.0 * 3600.0;

/// A budget tight enough that db-oltp demand keeps the bucket drained —
/// every checkpoint lands with a non-trivial defer streak and fractional
/// token level to serialize.
fn tour_policy() -> PolicyKind {
    PolicyKind::Tour {
        interval_s: 900.0,
        theta: 4,
        iops: LINES as f64 / 900.0,
        burst: 16.0,
        max_defer: 8,
    }
}

fn config(engine: EngineKind) -> SimConfig {
    let mut b = SimConfig::builder();
    b.num_lines(LINES)
        .code(pcm_ecc::CodeSpec::bch_line(6))
        .policy(tour_policy())
        .traffic(DemandTraffic::suite(pcm_workloads::WorkloadId::DbOltp))
        .horizon_s(HORIZON_S)
        .seed(4242)
        .threads(1)
        .engine(engine)
        .fault_campaign(
            "seed=11;stuck=lines:32,cells:3;seu=lines:128,count:2,window:3600"
                .parse()
                .expect("valid campaign spec"),
        )
        .repair(pcm_memsim::RepairConfig::default());
    b.build()
}

/// Kills the run at `k` evenly spaced points, resuming each time from
/// the serialized bytes only. Each kill also checks the resume is a
/// fixed point (re-checkpointing immediately reproduces the bytes).
/// Returns the final report and whether any kill landed mid-tour.
fn run_killed(engine: EngineKind, k: u32) -> (SimReport, bool) {
    let cadence_s = HORIZON_S / (k + 1) as f64;
    let mut mid_tour = false;
    let mut sim = Simulation::new(config(engine));
    for i in 1..=k {
        sim.run_to(i as f64 * cadence_s);
        // Every probe advances the tour cursor by one, so a probe count
        // off a whole-tour multiple means this checkpoint caught the
        // tour mid-flight.
        if !sim
            .memory()
            .stats()
            .scrub_probes
            .is_multiple_of(u64::from(LINES))
        {
            mid_tour = true;
        }
        let bytes = sim.checkpoint().expect("checkpoint");
        let cfg = sim.config().clone();
        drop(sim); // the kill: nothing survives but the bytes
        sim = Simulation::resume(cfg, &bytes).expect("resume");
        let again = sim.checkpoint().expect("re-checkpoint");
        assert_eq!(
            bytes, again,
            "resume({engine:?}, kill {i}/{k}) is not a checkpoint fixed point"
        );
        let cfg = sim.config().clone();
        sim = Simulation::resume(cfg, &again).expect("second resume");
    }
    (sim.finish(), mid_tour)
}

#[test]
fn killed_tour_runs_are_byte_identical_to_continuous() {
    scrub_exec::set_default_threads(1);
    let mut reports = Vec::new();
    for engine in [EngineKind::Stepped, EngineKind::Event] {
        let continuous = Simulation::new(config(engine)).run();
        assert!(
            continuous.engine.idle_slots > 0,
            "budget never throttled — the chaos run is not exercising \
             bucket state: {:?}",
            continuous.engine
        );
        let mut any_mid_tour = false;
        for k in 1..=3 {
            let (killed, mid_tour) = run_killed(engine, k);
            any_mid_tour |= mid_tour;
            assert_eq!(
                killed, continuous,
                "{engine:?} with {k} kill(s) diverged from the continuous run"
            );
            assert_eq!(killed.csv_row(), continuous.csv_row());
        }
        assert!(
            any_mid_tour,
            "{engine:?}: no kill ever landed mid-tour; the campaign \
             proves nothing about tour-state serialization"
        );
        reports.push(continuous);
    }
    assert_eq!(
        reports[0], reports[1],
        "stepped and event engines disagree on the budgeted tour"
    );
}

/// E14's metrics are bit-identical when every rep is forced through the
/// kill-and-resume path by the runner's `--checkpoint-every` global.
#[test]
fn e14_metrics_survive_checkpoint_cadence() {
    scrub_exec::set_default_threads(1);
    let scale = Scale {
        num_lines: 512,
        horizon_s: 4.0 * 3600.0,
        reps: 1,
        mc_cells: 100,
    };
    let continuous = e14::compute(scale);
    runner::set_checkpoint_every_s(1800.0);
    assert_eq!(runner::checkpoint_every_s(), Some(1800.0));
    let split = e14::compute(scale);
    assert_eq!(continuous, split, "E14 rows moved under --checkpoint-every");
}
