//! The stepped-vs-event differential harness: both simulation cores must
//! be observationally identical. For every scrub mechanism, under an
//! active fault campaign and demand traffic, the event engine's report,
//! CSV row, telemetry counters, and sim-event multiset must match the
//! stepped engine's exactly — continuous, split at k checkpoints, and
//! resumed *across* engines (a snapshot taken under one core finished
//! under the other).
//!
//! Campaign boundary markers are emitted at end-of-segment by the stepped
//! core and at heap-pop time by the event core, so the journal *order*
//! differs while the (time, payload) multiset is identical — comparisons
//! here sort events and ignore sequence numbers.
//!
//! The telemetry recorder is process-global, so everything lives in ONE
//! test function — this file being its own integration-test binary
//! guarantees a fresh process.

use scrub_bench::experiments::e13;
use scrub_core::{
    set_skewed_fast_forward_for_test, DemandTraffic, EngineKind, PolicyKind, SimConfig, SimReport,
    Simulation,
};
use scrub_telemetry as tel;

/// The run under test: demand traffic (pending ops interleave with scrub
/// slots), a campaign with SEU-window, intermittent-period, and burst
/// boundaries (the burst lands exactly on the k=1 checkpoint boundary to
/// pin the half-open segment semantics), and the repair hierarchy.
fn config(policy: &PolicyKind, engine: EngineKind) -> SimConfig {
    let mut b = SimConfig::builder();
    b.num_lines(1024)
        .code(pcm_ecc::CodeSpec::bch_line(6))
        .policy(policy.clone())
        .traffic(DemandTraffic::suite(pcm_workloads::WorkloadId::KvCache))
        .horizon_s(3.0 * 3600.0)
        .seed(77)
        .threads(1)
        .engine(engine)
        .fault_campaign(
            "seed=7;stuck=lines:32,cells:3;seu=lines:128,count:2,window:3600;\
             intermittent=lines:4,cells:2,period:600;burst=lines:2,bits:5,at:5400"
                .parse()
                .expect("valid campaign spec"),
        )
        .repair(pcm_memsim::RepairConfig::default())
        .ue_recovery(pcm_memsim::RecoveryConfig { recover_prob: 0.5 });
    b.build()
}

/// Order-independent event fingerprint: (time bits, payload), sorted.
/// Sequence numbers and worker ids are scheduling artifacts, not results.
fn event_multiset(docs: &[tel::Document]) -> Vec<(u64, String)> {
    let mut v: Vec<(u64, String)> = docs
        .iter()
        .flat_map(|d| d.events.iter())
        .map(|e| (e.t_s.to_bits(), format!("{:?}", e.kind)))
        .collect();
    v.sort();
    v
}

/// Runs one simulation under `engine`, split at `k` evenly spaced
/// checkpoints with a full serialize/deserialize round-trip at each.
/// Returns the final report and the per-segment telemetry documents.
fn run_split(policy: &PolicyKind, engine: EngineKind, k: u32) -> (SimReport, Vec<tel::Document>) {
    let cfg = config(policy, engine);
    let cadence_s = cfg.horizon_s / (k + 1) as f64;
    let mut docs = Vec::new();
    tel::reset();
    let mut sim = Simulation::new(cfg);
    for i in 1..=k {
        sim.run_to(i as f64 * cadence_s);
        let bytes = sim.checkpoint().expect("checkpoint");
        let cfg = sim.config().clone();
        docs.push(tel::snapshot());
        tel::reset();
        sim = Simulation::resume(cfg, &bytes).expect("resume");
    }
    let report = sim.finish();
    docs.push(tel::snapshot());
    (report, docs)
}

#[test]
fn event_engine_is_observationally_identical_to_stepped() {
    scrub_exec::set_default_threads(1);
    tel::install(tel::Config {
        journal_capacity: 4096,
        event_mask: tel::EventClass::Sim.bit(),
    });

    let mut total_idle_skipped = 0u64;
    for (label, policy) in e13::roster() {
        // Continuous runs under both cores.
        tel::reset();
        let stepped = Simulation::new(config(&policy, EngineKind::Stepped)).run();
        let stepped_doc = tel::snapshot();
        tel::reset();
        let event = Simulation::new(config(&policy, EngineKind::Event)).run();
        let event_doc = tel::snapshot();

        assert_eq!(event, stepped, "{label}: report diverged across engines");
        assert_eq!(
            event.csv_row(),
            stepped.csv_row(),
            "{label}: CSV row diverged across engines"
        );
        assert_eq!(
            event_doc.counters, stepped_doc.counters,
            "{label}: telemetry counters diverged across engines"
        );
        assert_eq!(
            event_multiset(std::slice::from_ref(&event_doc)),
            event_multiset(std::slice::from_ref(&stepped_doc)),
            "{label}: sim-event multiset diverged across engines"
        );
        assert!(
            event_doc.counters.get("campaign_boundaries").copied() > Some(0),
            "{label}: no campaign boundaries crossed; the harness is not \
             exercising marker emission"
        );
        total_idle_skipped += event_doc
            .counters
            .get("engine_idle_slots")
            .copied()
            .unwrap_or(0);

        // Split runs under the event core must land on the same stepped
        // report, and their merged telemetry on the same multiset.
        for k in 1..=2u32 {
            let (report, docs) = run_split(&policy, EngineKind::Event, k);
            assert_eq!(
                report, stepped,
                "{label}: event-engine split run diverged at k={k}"
            );
            assert_eq!(
                event_multiset(&docs),
                event_multiset(std::slice::from_ref(&stepped_doc)),
                "{label}: split-run event multiset diverged at k={k}"
            );
        }

        // Cross-engine resume: a snapshot is engine-agnostic, so a run
        // checkpointed under one core and finished under the other must
        // still match — in both directions.
        for (from, to) in [
            (EngineKind::Stepped, EngineKind::Event),
            (EngineKind::Event, EngineKind::Stepped),
        ] {
            tel::reset();
            let mut sim = Simulation::new(config(&policy, from));
            sim.run_to(5400.0);
            let bytes = sim.checkpoint().expect("checkpoint");
            let mut cfg = sim.config().clone();
            cfg.engine = to;
            let report = Simulation::resume(cfg, &bytes).expect("resume").finish();
            assert_eq!(
                report,
                stepped,
                "{label}: {}-to-{} cross-engine resume diverged",
                from.label(),
                to.label()
            );
        }
    }
    assert!(
        total_idle_skipped > 0,
        "no engine idle slots recorded anywhere; the fast-forward path \
         is not being exercised"
    );

    // Tripwire: the harness must be able to fail. A deliberately skewed
    // fast-forward (overshoots each idle skip by one slot) must produce a
    // diverging report for a mechanism that uses idle_until.
    tel::set_enabled(false);
    let policy = PolicyKind::combined_default(900.0);
    let stepped = Simulation::new(config(&policy, EngineKind::Stepped)).run();
    set_skewed_fast_forward_for_test(true);
    let skewed = Simulation::new(config(&policy, EngineKind::Event)).run();
    set_skewed_fast_forward_for_test(false);
    assert_ne!(
        skewed, stepped,
        "a skewed fast-forward still matched the stepped engine — the \
         differential harness cannot detect an incorrect skip-ahead"
    );
    // And with the skew cleared the event core matches again, pinning the
    // divergence on the skew rather than on ambient state.
    let event = Simulation::new(config(&policy, EngineKind::Event)).run();
    assert_eq!(event, stepped, "event engine diverged after skew cleared");
}
