//! Telemetry must be a pure observer: enabling, disabling, or never
//! installing the recorder must not move a single bit of simulation
//! output, and when enabled its counters/values/events must reconcile
//! exactly with the report the experiment prints.
//!
//! The recorder is process-global, so everything lives in ONE test
//! function — this file being its own integration-test binary guarantees
//! a fresh process whose recorder starts untouched.

use pcm_workloads::WorkloadId;
use scrub_bench::experiments::e6;
use scrub_bench::Scale;
use scrub_telemetry as tel;

/// Per-sim fields carried by a `SimDone` event, as f64s in the same
/// representation `Metrics::of` consumes.
struct SimRow {
    policy: String,
    ue: f64,
    scrub_writes: f64,
    scrub_probes: f64,
    scrub_energy_uj: f64,
    mean_wear: f64,
}

/// Replicates the suite average bit-for-bit: per-workload chunks are
/// summed in event order and divided by `reps` (as in `Metrics::of`),
/// then each workload mean is divided by the workload count and summed
/// in suite order (as in `run_suite_threads`). f64 accumulation order is
/// part of the determinism contract, so the fold order here must match.
fn suite_average(rows: &[SimRow], reps: usize, pick: impl Fn(&SimRow) -> f64) -> f64 {
    let n_w = (rows.len() / reps) as f64;
    let mut total = 0.0;
    for chunk in rows.chunks(reps) {
        let mut per_workload = 0.0;
        for row in chunk {
            per_workload += pick(row);
        }
        per_workload /= reps as f64;
        total += per_workload / n_w;
    }
    total
}

#[test]
fn telemetry_is_invisible_and_reconciles() {
    // One worker: SimDone events then arrive in job order (workload-major,
    // rep-minor), which the reconciliation fold below depends on. Results
    // are thread-count-independent either way.
    scrub_exec::set_default_threads(1);
    let scale = Scale {
        num_lines: 1024,
        horizon_s: 3.0 * 3600.0,
        reps: 2,
        mc_cells: 100,
    };

    // Recorder never installed: the baseline this whole file defends.
    let h_absent = e6::compute(scale);

    // Recorder enabled. The Sim-only event mask keeps the journal to one
    // SimDone per simulation, so nothing is evicted (`dropped == 0`).
    tel::install(tel::Config {
        journal_capacity: 4096,
        event_mask: tel::EventClass::Sim.bit(),
    });
    let h_on = e6::compute(scale);
    let doc = tel::snapshot();

    // Recorder installed but disabled.
    tel::set_enabled(false);
    let h_off = e6::compute(scale);

    // Invariance: the headline (and therefore the rendered report, a pure
    // function of it) is bit-identical in all three recorder states.
    assert_eq!(h_absent, h_on, "enabling telemetry changed results");
    assert_eq!(h_absent, h_off, "disabling telemetry changed results");

    // Recorded values mirror the headline bit-for-bit.
    for (key, want) in [
        ("e6.basic.ue", h_on.basic.ue),
        ("e6.basic.scrub_writes", h_on.basic.scrub_writes),
        ("e6.basic.scrub_probes", h_on.basic.scrub_probes),
        ("e6.basic.scrub_energy_uj", h_on.basic.scrub_energy_uj),
        ("e6.basic.mean_wear", h_on.basic.mean_wear),
        ("e6.combined.ue", h_on.combined.ue),
        ("e6.combined.scrub_writes", h_on.combined.scrub_writes),
        ("e6.combined.scrub_probes", h_on.combined.scrub_probes),
        ("e6.combined.scrub_energy_uj", h_on.combined.scrub_energy_uj),
        ("e6.combined.mean_wear", h_on.combined.mean_wear),
        ("e6.ue_reduction_pct", h_on.ue_reduction_pct()),
        ("e6.write_ratio", h_on.write_ratio()),
        ("e6.energy_reduction_pct", h_on.energy_reduction_pct()),
    ] {
        let got = *doc
            .values
            .get(key)
            .unwrap_or_else(|| panic!("document is missing value {key}"));
        assert_eq!(
            got.to_bits(),
            want.to_bits(),
            "value {key}: {got} != {want}"
        );
    }

    // Op-level counters (incremented per memory operation) reconcile
    // exactly with the report-level mirrors (summed per finished sim):
    // integer adds commute, so the totals must match to the last event.
    let c = |name: &str| {
        *doc.counters
            .get(name)
            .unwrap_or_else(|| panic!("document is missing counter {name}"))
    };
    assert!(c("scrub_probes") > 0, "no scrub probes recorded");
    assert_eq!(c("scrub_probes"), c("report_scrub_probes"));
    assert_eq!(c("scrub_writebacks"), c("report_scrub_writebacks"));
    assert_eq!(
        c("detected_ue") + c("miscorrections"),
        c("report_uncorrectable"),
        "op-level UE counters disagree with report totals"
    );

    // Event-journal reconciliation: recompute the suite averages from the
    // per-sim SimDone events and match the headline bit-for-bit.
    assert_eq!(doc.events_dropped, 0, "SimDone events were evicted");
    let rows: Vec<SimRow> = doc
        .events
        .iter()
        .filter_map(|e| match &e.kind {
            tel::EventKind::SimDone {
                policy,
                ue,
                demand_ue: _,
                scrub_writes,
                scrub_probes,
                scrub_energy_uj,
                mean_wear,
                ..
            } => Some(SimRow {
                policy: policy.clone(),
                ue: *ue as f64,
                scrub_writes: *scrub_writes as f64,
                scrub_probes: *scrub_probes as f64,
                scrub_energy_uj: *scrub_energy_uj,
                mean_wear: *mean_wear,
            }),
            _ => None,
        })
        .collect();
    let workloads = WorkloadId::all().len();
    let reps = scale.reps as usize;
    assert_eq!(
        rows.len(),
        2 * workloads * reps,
        "expected one SimDone per workload x rep x suite"
    );
    let (basic_rows, combined_rows) = rows.split_at(workloads * reps);
    assert!(
        basic_rows.iter().all(|r| r.policy == basic_rows[0].policy),
        "basic suite events interleaved with another policy"
    );
    assert!(
        combined_rows
            .iter()
            .all(|r| r.policy == combined_rows[0].policy),
        "combined suite events interleaved with another policy"
    );
    assert_ne!(basic_rows[0].policy, combined_rows[0].policy);

    for (suite, rows, want) in [
        ("basic", basic_rows, &h_on.basic),
        ("combined", combined_rows, &h_on.combined),
    ] {
        for (metric, got, want) in [
            ("ue", suite_average(rows, reps, |r| r.ue), want.ue),
            (
                "scrub_writes",
                suite_average(rows, reps, |r| r.scrub_writes),
                want.scrub_writes,
            ),
            (
                "scrub_probes",
                suite_average(rows, reps, |r| r.scrub_probes),
                want.scrub_probes,
            ),
            (
                "scrub_energy_uj",
                suite_average(rows, reps, |r| r.scrub_energy_uj),
                want.scrub_energy_uj,
            ),
            (
                "mean_wear",
                suite_average(rows, reps, |r| r.mean_wear),
                want.mean_wear,
            ),
        ] {
            assert_eq!(
                got.to_bits(),
                want.to_bits(),
                "{suite}.{metric} recomputed from SimDone events: {got} != {want}"
            );
        }
    }
}
