//! Negative-path coverage for the bench runner's `--scrub-iops` flag on
//! the E14 binary: malformed budgets die with exit 2 and a one-line
//! stderr before any simulation starts.

use std::process::Command;

fn run(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_exp_e14_budget"))
        .args(args)
        .output()
        .expect("spawn exp_e14_budget")
}

#[test]
fn scrub_iops_rejects_bad_budgets() {
    for bad in ["0", "-1", "NaN", "inf", "cheap"] {
        let out = run(&["--quick", "--scrub-iops", bad]);
        assert_eq!(
            out.status.code(),
            Some(2),
            "--scrub-iops {bad} should exit 2"
        );
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert_eq!(
            stderr.trim_end().lines().count(),
            1,
            "one-line stderr expected:\n{stderr}"
        );
        assert!(stderr.contains("--scrub-iops"), "{stderr}");
        assert!(out.stdout.is_empty(), "must fail before running");
    }
}

#[test]
fn scrub_iops_requires_a_value() {
    let out = run(&["--quick", "--scrub-iops"]);
    assert_eq!(out.status.code(), Some(2));
}
