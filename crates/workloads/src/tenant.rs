//! Open-loop multi-tenant demand: many independent per-tenant arrival
//! streams merged into one time-ordered trace.
//!
//! This is the "millions of users" workload model the fleet service
//! (`scrubd`) drives shards with. Unlike the closed-loop suite traces —
//! where one generator's clock advances only as ops are consumed — each
//! tenant here is an *open-loop* arrival process: a seeded Poisson stream
//! (or a suite workload reinterpreted as one tenant's demand) whose
//! arrival times are fixed by the seed alone, independent of service.
//! Tenants are described as data ([`TenantMixSpec`], a compact
//! `FromStr`/`Display` spec string like fault campaigns), so a mix can
//! ride inside a `SimConfig`, a checkpoint fingerprint, or a fleet config
//! file.
//!
//! # Spec grammar
//!
//! ```text
//! SPEC   := TENANT (';' TENANT)*
//! TENANT := NAME ':' FIELD (',' FIELD)*
//! FIELD  := 'rate=' F64          ops/s (synthetic tenants; > 0, finite)
//!         | 'read=' F64          read fraction in [0,1] (default 0.7)
//!         | 'pattern=' PAT       uniform | zipf:THETA | seq (default zipf:0.99)
//!         | 'arrivals=' ARR      poisson | periodic (default poisson)
//!         | 'suite=' WORKLOAD    one of the 8 suite names (trace-driven tenant)
//!         | 'scale=' F64         suite rate multiplier (default 1.0)
//! ```
//!
//! A tenant is either synthetic (`rate=` given) or suite-driven
//! (`suite=` given) — never both.
//!
//! # Examples
//!
//! ```
//! use pcm_workloads::TenantMixSpec;
//! use pcm_memsim::TraceSource;
//!
//! let spec: TenantMixSpec = "alpha:rate=120,read=0.7,pattern=zipf:0.99;\
//!                            beta:suite=db-oltp,scale=0.5"
//!     .parse()
//!     .expect("valid spec");
//! let mut mix = spec.build(4096, 1.0, 7);
//! let op = mix.next_op().expect("open-loop streams are infinite");
//! assert!(op.addr.index() < 4096);
//! ```

use std::fmt;
use std::str::FromStr;

use pcm_memsim::{MemOp, OpKind, TraceSource};
use scrub_checkpoint::{CheckpointError, Reader, Writer};

use crate::generator::{AddrPattern, ArrivalProcess, SyntheticTrace};
use crate::suite::WorkloadId;

/// Address-pattern selection for a synthetic tenant, restricted to the
/// spec-expressible subset of [`AddrPattern`].
#[derive(Debug, Clone, PartialEq)]
pub enum TenantPattern {
    /// Uniform random lines.
    Uniform,
    /// Zipfian popularity at the given skew.
    Zipf(f64),
    /// Sequential wrap-around sweep.
    Sequential,
}

impl TenantPattern {
    fn to_addr_pattern(&self) -> AddrPattern {
        match self {
            TenantPattern::Uniform => AddrPattern::Uniform,
            TenantPattern::Zipf(theta) => AddrPattern::Zipf { theta: *theta },
            TenantPattern::Sequential => AddrPattern::Sequential,
        }
    }
}

impl fmt::Display for TenantPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TenantPattern::Uniform => write!(f, "uniform"),
            TenantPattern::Zipf(theta) => write!(f, "zipf:{theta}"),
            TenantPattern::Sequential => write!(f, "seq"),
        }
    }
}

/// How one tenant generates demand.
#[derive(Debug, Clone, PartialEq)]
pub enum TenantKind {
    /// A synthetic open-loop stream: seeded arrivals at `rate` ops/s.
    Synthetic {
        /// Mean arrival rate (ops/s), finite and positive.
        rate: f64,
        /// Fraction of ops that are reads, in `[0, 1]`.
        read_frac: f64,
        /// Spatial pattern.
        pattern: TenantPattern,
        /// `true` = Poisson (exponential gaps), `false` = periodic.
        poisson: bool,
    },
    /// A suite workload serving as this tenant's recorded-demand profile.
    Suite {
        /// Which suite workload.
        id: WorkloadId,
        /// Rate multiplier applied to the suite's nominal rate.
        scale: f64,
    },
}

/// One tenant: a name plus its demand model.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantSpec {
    /// Tenant name (reports, SLO rollups); `[A-Za-z0-9_-]+`.
    pub name: String,
    /// Demand model.
    pub kind: TenantKind,
}

impl TenantSpec {
    /// The tenant's configured mean demand rate in ops/s for a given
    /// address-space size (suite tenants scale with capacity exactly like
    /// [`WorkloadId::build`] does).
    pub fn nominal_rate(&self, num_lines: u32) -> f64 {
        match &self.kind {
            TenantKind::Synthetic { rate, .. } => *rate,
            TenantKind::Suite { id, scale } => id.nominal_rate(num_lines) * scale,
        }
    }
}

impl fmt::Display for TenantSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            TenantKind::Synthetic {
                rate,
                read_frac,
                pattern,
                poisson,
            } => write!(
                f,
                "{}:rate={rate},read={read_frac},pattern={pattern},arrivals={}",
                self.name,
                if *poisson { "poisson" } else { "periodic" }
            ),
            TenantKind::Suite { id, scale } => {
                write!(f, "{}:suite={},scale={scale}", self.name, id.name())
            }
        }
    }
}

/// A full tenant mix, as plain data. Parses from and displays as the
/// compact spec string (the `Display` form is canonical and round-trips).
#[derive(Debug, Clone, PartialEq)]
pub struct TenantMixSpec {
    /// The tenants, in spec order.
    pub tenants: Vec<TenantSpec>,
}

impl TenantMixSpec {
    /// Total configured demand rate (ops/s) across all tenants for a
    /// given address-space size.
    pub fn total_rate(&self, num_lines: u32) -> f64 {
        self.tenants.iter().map(|t| t.nominal_rate(num_lines)).sum()
    }

    /// Instantiates the mix over `num_lines` lines. Every tenant's rate
    /// is multiplied by `rate_scale` (a fleet divides tenant demand evenly
    /// across shards by passing `1/shards`); per-tenant RNG streams are
    /// derived from `seed` and the tenant index, so two tenants never
    /// share randomness.
    ///
    /// # Panics
    ///
    /// Panics if `rate_scale` is not finite and positive. Spec-level
    /// validation (rates, fractions, names) happens at parse time.
    pub fn build(&self, num_lines: u32, rate_scale: f64, seed: u64) -> TenantMix {
        assert!(
            rate_scale.is_finite() && rate_scale > 0.0,
            "rate_scale must be finite and positive, got {rate_scale}"
        );
        let mut streams = Vec::with_capacity(self.tenants.len());
        for (i, t) in self.tenants.iter().enumerate() {
            let tseed = splitmix64(seed ^ (0xF1EE7 + i as u64));
            let trace = match &t.kind {
                TenantKind::Synthetic {
                    rate,
                    read_frac,
                    pattern,
                    poisson,
                } => SyntheticTrace::builder(&t.name, num_lines)
                    .rate_ops_per_sec(rate * rate_scale)
                    .read_fraction(*read_frac)
                    .pattern(pattern.to_addr_pattern())
                    .arrivals(if *poisson {
                        ArrivalProcess::Poisson
                    } else {
                        ArrivalProcess::Periodic
                    })
                    .seed(tseed)
                    .build(),
                TenantKind::Suite { id, scale } => id.build(num_lines, scale * rate_scale, tseed),
            };
            streams.push(trace);
        }
        let mut pending = Vec::with_capacity(streams.len());
        for s in &mut streams {
            pending.push(s.next_op());
        }
        TenantMix {
            label: format!("open-loop({self})"),
            names: self.tenants.iter().map(|t| t.name.clone()).collect(),
            streams,
            pending,
            reads: vec![0; self.tenants.len()],
            writes: vec![0; self.tenants.len()],
        }
    }
}

impl fmt::Display for TenantMixSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, t) in self.tenants.iter().enumerate() {
            if i > 0 {
                write!(f, ";")?;
            }
            write!(f, "{t}")?;
        }
        Ok(())
    }
}

/// SplitMix64 finalizer: decorrelates per-tenant seeds.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

fn parse_f64(field: &str, raw: &str) -> Result<f64, String> {
    raw.parse::<f64>()
        .map_err(|_| format!("tenant spec: {field} must be a number, got {raw:?}"))
}

impl FromStr for TenantMixSpec {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        let mut tenants: Vec<TenantSpec> = Vec::new();
        for part in s.split(';') {
            let part = part.trim();
            if part.is_empty() {
                return Err("tenant spec: empty tenant entry".to_string());
            }
            let (name, fields) = part
                .split_once(':')
                .ok_or_else(|| format!("tenant spec: missing ':' in {part:?}"))?;
            let name = name.trim();
            if name.is_empty()
                || !name
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
            {
                return Err(format!(
                    "tenant spec: tenant name must be [A-Za-z0-9_-]+, got {name:?}"
                ));
            }
            if tenants.iter().any(|t| t.name == name) {
                return Err(format!("tenant spec: duplicate tenant {name:?}"));
            }
            let mut rate: Option<f64> = None;
            let mut read_frac = 0.7;
            let mut pattern = TenantPattern::Zipf(0.99);
            let mut poisson = true;
            let mut suite: Option<WorkloadId> = None;
            let mut scale = 1.0;
            for field in fields.split(',') {
                let field = field.trim();
                let (key, value) = field
                    .split_once('=')
                    .ok_or_else(|| format!("tenant spec: expected key=value, got {field:?}"))?;
                match key {
                    "rate" => {
                        let r = parse_f64("rate", value)?;
                        if !r.is_finite() || r <= 0.0 {
                            return Err(format!(
                                "tenant spec: tenant {name:?} rate must be finite and positive, \
                                 got {value:?}"
                            ));
                        }
                        rate = Some(r);
                    }
                    "read" => {
                        let f = parse_f64("read", value)?;
                        if !(0.0..=1.0).contains(&f) {
                            return Err(format!(
                                "tenant spec: tenant {name:?} read fraction must be in [0,1], \
                                 got {value:?}"
                            ));
                        }
                        read_frac = f;
                    }
                    "pattern" => {
                        pattern = match value {
                            "uniform" => TenantPattern::Uniform,
                            "seq" => TenantPattern::Sequential,
                            z => {
                                let theta = z
                                    .strip_prefix("zipf:")
                                    .ok_or_else(|| {
                                        format!(
                                            "tenant spec: pattern must be uniform|zipf:THETA|seq, \
                                             got {value:?}"
                                        )
                                    })
                                    .and_then(|t| parse_f64("pattern", t))?;
                                if !theta.is_finite() || theta <= 0.0 {
                                    return Err(format!(
                                        "tenant spec: zipf theta must be finite and positive, \
                                         got {value:?}"
                                    ));
                                }
                                TenantPattern::Zipf(theta)
                            }
                        };
                    }
                    "arrivals" => {
                        poisson = match value {
                            "poisson" => true,
                            "periodic" => false,
                            other => {
                                return Err(format!(
                                    "tenant spec: arrivals must be poisson or periodic, \
                                     got {other:?}"
                                ))
                            }
                        };
                    }
                    "suite" => {
                        suite = Some(
                            WorkloadId::all()
                                .into_iter()
                                .find(|w| w.name() == value)
                                .ok_or_else(|| {
                                    format!("tenant spec: unknown suite workload {value:?}")
                                })?,
                        );
                    }
                    "scale" => {
                        let x = parse_f64("scale", value)?;
                        if !x.is_finite() || x <= 0.0 {
                            return Err(format!(
                                "tenant spec: tenant {name:?} scale must be finite and positive, \
                                 got {value:?}"
                            ));
                        }
                        scale = x;
                    }
                    other => return Err(format!("tenant spec: unknown field {other:?}")),
                }
            }
            let kind = match (rate, suite) {
                (Some(_), Some(_)) => {
                    return Err(format!(
                        "tenant spec: tenant {name:?} cannot set both rate= and suite="
                    ))
                }
                (None, None) => {
                    return Err(format!(
                        "tenant spec: tenant {name:?} needs rate= (synthetic) or suite= \
                         (trace-driven)"
                    ))
                }
                (Some(rate), None) => TenantKind::Synthetic {
                    rate,
                    read_frac,
                    pattern,
                    poisson,
                },
                (None, Some(id)) => TenantKind::Suite { id, scale },
            };
            tenants.push(TenantSpec {
                name: name.to_string(),
                kind,
            });
        }
        if tenants.is_empty() {
            return Err("tenant spec: at least one tenant required".to_string());
        }
        Ok(TenantMixSpec { tenants })
    }
}

/// The live open-loop mix: per-tenant generators merged into one
/// time-ordered stream, with per-tenant delivered-op accounting.
///
/// Ties on arrival time break by tenant index (spec order), so the merged
/// stream is a pure function of the spec and seed. Fully supports
/// checkpoint/resume: the saved state carries every tenant's generator
/// position, its buffered head-of-stream op, and the op counters.
#[derive(Debug)]
pub struct TenantMix {
    label: String,
    names: Vec<String>,
    streams: Vec<SyntheticTrace>,
    /// Head-of-stream op per tenant, already drawn but not yet emitted.
    pending: Vec<Option<MemOp>>,
    reads: Vec<u64>,
    writes: Vec<u64>,
}

impl TenantMix {
    /// Number of tenants.
    pub fn num_tenants(&self) -> usize {
        self.streams.len()
    }
}

impl TraceSource for TenantMix {
    fn next_op(&mut self) -> Option<MemOp> {
        let mut winner: Option<usize> = None;
        for (i, p) in self.pending.iter().enumerate() {
            if let Some(op) = p {
                let better = match winner {
                    None => true,
                    // Strict < keeps the tie-break on the lowest index.
                    Some(w) => op.at < self.pending[w].expect("winner pending").at,
                };
                if better {
                    winner = Some(i);
                }
            }
        }
        let i = winner?;
        let op = self.pending[i].take().expect("winner pending");
        self.pending[i] = self.streams[i].next_op();
        match op.kind {
            OpKind::Read => self.reads[i] += 1,
            OpKind::Write => self.writes[i] += 1,
        }
        Some(op)
    }

    fn name(&self) -> &str {
        &self.label
    }

    fn save_state(&self) -> Option<Vec<u8>> {
        let mut w = Writer::new();
        w.put_u32(self.streams.len() as u32);
        for (i, s) in self.streams.iter().enumerate() {
            w.put_bytes(&s.save_state()?);
            match &self.pending[i] {
                Some(op) => {
                    w.put_u8(1);
                    w.put_f64(op.at.secs());
                    w.put_u8(match op.kind {
                        OpKind::Read => 0,
                        OpKind::Write => 1,
                    });
                    w.put_u32(op.addr.0);
                }
                None => w.put_u8(0),
            }
            w.put_u64(self.reads[i]);
            w.put_u64(self.writes[i]);
        }
        Some(w.into_bytes())
    }

    fn load_state(&mut self, bytes: &[u8]) -> Result<(), String> {
        let mut r = Reader::new(bytes);
        let restore = |mix: &mut TenantMix| -> Result<(), CheckpointError> {
            let n = r.u32()? as usize;
            if n != mix.streams.len() {
                return Err(CheckpointError::Malformed(format!(
                    "tenant mix state has {n} tenants, config builds {}",
                    mix.streams.len()
                )));
            }
            for i in 0..n {
                let sub = r.bytes()?.to_vec();
                mix.streams[i]
                    .load_state(&sub)
                    .map_err(CheckpointError::Malformed)?;
                mix.pending[i] = match r.u8()? {
                    0 => None,
                    1 => {
                        let at = pcm_memsim::SimTime::from_secs(r.time_f64("tenant pending op")?);
                        let kind = match r.u8()? {
                            0 => OpKind::Read,
                            1 => OpKind::Write,
                            other => {
                                return Err(CheckpointError::Malformed(format!(
                                    "invalid tenant pending-op kind {other}"
                                )))
                            }
                        };
                        let addr = r.u32()?;
                        Some(MemOp {
                            at,
                            kind,
                            addr: pcm_memsim::LineAddr(addr),
                        })
                    }
                    other => {
                        return Err(CheckpointError::Malformed(format!(
                            "invalid tenant pending-op flag {other}"
                        )))
                    }
                };
                mix.reads[i] = r.u64()?;
                mix.writes[i] = r.u64()?;
            }
            r.finish()?;
            Ok(())
        };
        restore(self).map_err(|e| format!("tenant mix state: {e}"))
    }

    fn tenant_ops(&self) -> Option<Vec<(String, u64, u64)>> {
        Some(
            self.names
                .iter()
                .enumerate()
                .map(|(i, n)| (n.clone(), self.reads[i], self.writes[i]))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcm_memsim::SimTime;

    const SPEC: &str = "alpha:rate=120,read=0.7,pattern=zipf:0.99,arrivals=poisson;\
                        beta:rate=40,read=0.5,pattern=uniform,arrivals=poisson;\
                        batch:suite=db-olap,scale=0.5";

    #[test]
    fn spec_round_trips_through_display() {
        let spec: TenantMixSpec = SPEC.parse().expect("valid");
        let canon = spec.to_string();
        let back: TenantMixSpec = canon.parse().expect("canonical form parses");
        assert_eq!(back, spec);
        assert_eq!(back.to_string(), canon);
    }

    #[test]
    fn rejects_malformed_specs() {
        for (bad, needle) in [
            ("", "empty"),
            ("alpha", "missing ':'"),
            ("alpha:rate=0", "finite and positive"),
            ("alpha:rate=NaN", "finite and positive"),
            ("alpha:rate=-5", "finite and positive"),
            ("alpha:rate=inf", "finite and positive"),
            ("alpha:read=0.5", "needs rate="),
            ("alpha:rate=10,suite=db-oltp", "both"),
            ("alpha:rate=10,read=1.5", "[0,1]"),
            ("alpha:rate=10,pattern=hot", "pattern"),
            ("alpha:rate=10,arrivals=sometimes", "arrivals"),
            ("alpha:suite=db-nosuch", "unknown suite"),
            ("alpha:rate=10;alpha:rate=20", "duplicate"),
            ("a!b:rate=10", "name"),
            ("alpha:rate=10,flavor=mild", "unknown field"),
        ] {
            let err = bad.parse::<TenantMixSpec>().expect_err(bad);
            assert!(err.contains(needle), "{bad:?}: {err}");
        }
    }

    #[test]
    fn merged_stream_is_time_ordered_and_counts_per_tenant() {
        let spec: TenantMixSpec = SPEC.parse().expect("valid");
        let mut mix = spec.build(1024, 1.0, 9);
        let mut prev = SimTime::ZERO;
        for _ in 0..2000 {
            let op = mix.next_op().expect("infinite");
            assert!(op.at >= prev, "stream must be time-ordered");
            assert!(op.addr.0 < 1024);
            prev = op.at;
        }
        let ops = mix.tenant_ops().expect("mix reports tenants");
        assert_eq!(ops.len(), 3);
        let total: u64 = ops.iter().map(|(_, r, w)| r + w).sum();
        assert_eq!(total, 2000);
        // alpha (120 ops/s) must dominate beta (40 ops/s).
        let by_name = |n: &str| {
            ops.iter()
                .find(|(name, _, _)| name == n)
                .map(|(_, r, w)| r + w)
                .expect("tenant present")
        };
        assert!(by_name("alpha") > 2 * by_name("beta"));
    }

    #[test]
    fn rate_scale_divides_demand() {
        let spec: TenantMixSpec = "a:rate=100".parse().expect("valid");
        let measure = |scale: f64| {
            let mut mix = spec.build(256, scale, 3);
            let n = 4000;
            let mut last = SimTime::ZERO;
            for _ in 0..n {
                last = mix.next_op().expect("infinite").at;
            }
            n as f64 / last.secs()
        };
        let full = measure(1.0);
        let quarter = measure(0.25);
        assert!((full - 100.0).abs() < 10.0, "full-rate measured {full}");
        assert!(
            (quarter - 25.0).abs() < 4.0,
            "quarter-rate measured {quarter}"
        );
    }

    #[test]
    fn save_load_resumes_exact_stream() {
        let spec: TenantMixSpec = SPEC.parse().expect("valid");
        let mut continuous = spec.build(512, 1.0, 21);
        for _ in 0..357 {
            continuous.next_op();
        }
        let mut split = spec.build(512, 1.0, 21);
        for _ in 0..200 {
            split.next_op();
        }
        let state = split.save_state().expect("supported");
        let mut resumed = spec.build(512, 1.0, 21);
        resumed.load_state(&state).expect("round-trip");
        for _ in 0..157 {
            resumed.next_op();
        }
        assert_eq!(
            continuous.next_op(),
            resumed.next_op(),
            "stream diverged after resume"
        );
        assert_eq!(continuous.tenant_ops(), resumed.tenant_ops());
    }

    #[test]
    fn load_state_rejects_garbage_and_wrong_shape() {
        let spec: TenantMixSpec = "a:rate=10;b:rate=20".parse().expect("valid");
        let mut mix = spec.build(64, 1.0, 1);
        assert!(mix.load_state(&[9, 9, 9]).is_err());
        let other: TenantMixSpec = "a:rate=10".parse().expect("valid");
        let state = other.build(64, 1.0, 1).save_state().expect("supported");
        let err = mix.load_state(&state).expect_err("tenant count mismatch");
        assert!(err.contains("tenants"), "{err}");
    }

    #[test]
    fn distinct_tenants_draw_distinct_randomness() {
        let spec: TenantMixSpec = "a:rate=50,pattern=uniform;b:rate=50,pattern=uniform"
            .parse()
            .expect("valid");
        let mut mix = spec.build(4096, 1.0, 5);
        let mut a_addrs = Vec::new();
        let mut b_addrs = Vec::new();
        for _ in 0..200 {
            let before = mix.tenant_ops().expect("tenants");
            let op = mix.next_op().expect("infinite");
            let after = mix.tenant_ops().expect("tenants");
            let winner = before
                .iter()
                .zip(&after)
                .position(|(x, y)| x != y)
                .expect("one tenant advanced");
            if winner == 0 {
                a_addrs.push(op.addr.0);
            } else {
                b_addrs.push(op.addr.0);
            }
        }
        assert!(!a_addrs.is_empty() && !b_addrs.is_empty());
        assert_ne!(
            a_addrs[..a_addrs.len().min(b_addrs.len())],
            b_addrs[..a_addrs.len().min(b_addrs.len())],
            "tenant streams must not share RNG draws"
        );
    }
}
