//! The named eight-workload suite standing in for the paper's benchmark
//! traces.
//!
//! Each workload is defined by the two properties scrub policies actually
//! interact with (DESIGN.md "Substitutions"): the distribution of
//! time-since-last-write across lines (drift clock resets), and the demand
//! bandwidth the scrubber must share. Rates are per-gigabyte-scaled so the
//! same suite exercises any memory size.

use crate::generator::{AddrPattern, ArrivalProcess, SyntheticTrace};

/// Identifiers for the standard suite, in canonical order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkloadId {
    /// OLTP-style: zipf 0.99, 70% reads, steady Poisson traffic.
    DbOltp,
    /// OLAP-style: long scans plus zipf point lookups, 90% reads.
    DbOlap,
    /// Web serving: hot zipf 1.1, 95% reads.
    WebServe,
    /// Log/journal: 40% reads, zipf writes churn a hot set.
    Logging,
    /// Streaming scan: sequential, 90% reads, high rate.
    Stream,
    /// HPC checkpoint-like: bursty, 50/50 mix.
    Batch,
    /// Key-value cache: uniform, 80% reads.
    KvCache,
    /// Cold archive: tiny uniform traffic — drift's worst case, since
    /// demand writes almost never refresh lines.
    Archive,
}

impl WorkloadId {
    /// All suite members in canonical order.
    pub fn all() -> [WorkloadId; 8] {
        [
            WorkloadId::DbOltp,
            WorkloadId::DbOlap,
            WorkloadId::WebServe,
            WorkloadId::Logging,
            WorkloadId::Stream,
            WorkloadId::Batch,
            WorkloadId::KvCache,
            WorkloadId::Archive,
        ]
    }

    /// The canonical short name.
    pub fn name(self) -> &'static str {
        match self {
            WorkloadId::DbOltp => "db-oltp",
            WorkloadId::DbOlap => "db-olap",
            WorkloadId::WebServe => "web-serve",
            WorkloadId::Logging => "logging",
            WorkloadId::Stream => "stream",
            WorkloadId::Batch => "batch",
            WorkloadId::KvCache => "kv-cache",
            WorkloadId::Archive => "archive",
        }
    }

    /// The workload's nominal access rate (ops/s) over `num_lines` lines
    /// at `rate_scale` 1.0 — what [`WorkloadId::build`] configures. Used
    /// by open-loop tenant accounting (expected vs. delivered demand).
    pub fn nominal_rate(self, num_lines: u32) -> f64 {
        let per_64k = num_lines as f64 / 65_536.0;
        let base = match self {
            WorkloadId::DbOltp => 200.0,
            WorkloadId::DbOlap => 300.0,
            WorkloadId::WebServe => 150.0,
            WorkloadId::Logging => 120.0,
            WorkloadId::Stream => 400.0,
            WorkloadId::Batch => 100.0,
            WorkloadId::KvCache => 180.0,
            WorkloadId::Archive => 4.0,
        };
        base * per_64k
    }

    /// Builds the generator for this workload over `num_lines` lines.
    ///
    /// `rate_scale` multiplies the nominal access rate (1.0 = nominal);
    /// `seed` controls all stochastic choices.
    pub fn build(self, num_lines: u32, rate_scale: f64, seed: u64) -> SyntheticTrace {
        assert!(rate_scale > 0.0, "rate scale must be positive");
        // Nominal rates (see `nominal_rate`) are per 64Ki lines (4 MiB),
        // scaled linearly with capacity so per-line touch frequency is
        // size-invariant.
        let b = SyntheticTrace::builder(self.name(), num_lines)
            .seed(seed)
            .rate_ops_per_sec(self.nominal_rate(num_lines) * rate_scale);
        let b = match self {
            WorkloadId::DbOltp => b
                .read_fraction(0.70)
                .pattern(AddrPattern::Zipf { theta: 0.99 })
                .arrivals(ArrivalProcess::Poisson),
            WorkloadId::DbOlap => b
                .read_fraction(0.90)
                .pattern(AddrPattern::ScanPoint {
                    scan_len: 256,
                    theta: 0.9,
                })
                .arrivals(ArrivalProcess::Poisson),
            WorkloadId::WebServe => b
                .read_fraction(0.95)
                .pattern(AddrPattern::Zipf { theta: 1.1 })
                .arrivals(ArrivalProcess::Poisson),
            WorkloadId::Logging => b
                .read_fraction(0.40)
                .pattern(AddrPattern::Zipf { theta: 0.8 })
                .arrivals(ArrivalProcess::Poisson),
            WorkloadId::Stream => b
                .read_fraction(0.90)
                .pattern(AddrPattern::Sequential)
                .arrivals(ArrivalProcess::Periodic),
            WorkloadId::Batch => b
                .read_fraction(0.50)
                .pattern(AddrPattern::Uniform)
                .arrivals(ArrivalProcess::Bursty {
                    burst_len: 64,
                    idle_ratio: 9.0,
                }),
            WorkloadId::KvCache => b
                .read_fraction(0.80)
                .pattern(AddrPattern::Uniform)
                .arrivals(ArrivalProcess::Poisson),
            WorkloadId::Archive => b
                .read_fraction(0.85)
                .pattern(AddrPattern::Uniform)
                .arrivals(ArrivalProcess::Poisson),
        };
        b.build()
    }
}

impl std::fmt::Display for WorkloadId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcm_memsim::{OpKind, TraceSource};

    #[test]
    fn all_eight_build_and_stream() {
        for id in WorkloadId::all() {
            let mut t = id.build(4096, 1.0, 1);
            assert_eq!(t.name(), id.name());
            for _ in 0..100 {
                let op = t.next_op().expect("infinite");
                assert!(op.addr.index() < 4096, "{id}");
            }
        }
    }

    #[test]
    fn archive_is_much_colder_than_stream() {
        let archive = WorkloadId::Archive.build(65_536, 1.0, 2);
        let stream = WorkloadId::Stream.build(65_536, 1.0, 2);
        assert!(archive.rate_ops_per_sec() * 50.0 < stream.rate_ops_per_sec());
    }

    #[test]
    fn logging_is_write_heavy() {
        let mut t = WorkloadId::Logging.build(4096, 1.0, 3);
        let mut writes = 0;
        for _ in 0..5000 {
            if t.next_op().expect("inf").kind == OpKind::Write {
                writes += 1;
            }
        }
        assert!(writes > 2500, "logging writes {writes}/5000");
    }

    #[test]
    fn rates_scale_with_capacity() {
        let small = WorkloadId::DbOltp.build(65_536, 1.0, 4);
        let big = WorkloadId::DbOltp.build(131_072, 1.0, 4);
        assert!((big.rate_ops_per_sec() / small.rate_ops_per_sec() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn names_are_unique() {
        let names: std::collections::HashSet<_> =
            WorkloadId::all().iter().map(|w| w.name()).collect();
        assert_eq!(names.len(), 8);
    }
}
