//! # pcm-workloads — deterministic synthetic memory-trace generators
//!
//! Stand-in for the benchmark traces of the HPCA 2012 scrub-mechanisms
//! paper (which used proprietary simulator traces; see DESIGN.md
//! "Substitutions"). Scrub policies interact with workloads through the
//! write-recency profile of lines and demand bandwidth; the generators
//! here expose exactly those knobs:
//!
//! * [`SyntheticTrace`] — address pattern ([`AddrPattern`]) × read/write
//!   mix × arrival process ([`ArrivalProcess`]), fully seed-deterministic;
//! * [`WorkloadId`] — the named eight-workload suite used by every
//!   experiment (`db-oltp`, `db-olap`, `web-serve`, `logging`, `stream`,
//!   `batch`, `kv-cache`, `archive`);
//! * [`Zipf`] — exact zipfian rank sampling;
//! * [`TenantMixSpec`] / [`TenantMix`] — open-loop multi-tenant demand
//!   (seeded Poisson or suite-driven per-tenant arrival streams merged in
//!   time order), the fleet service's "millions of users" workload.
//!
//! # Quick start
//!
//! ```
//! use pcm_workloads::WorkloadId;
//! use pcm_memsim::TraceSource;
//!
//! let mut trace = WorkloadId::DbOltp.build(65_536, 1.0, 42);
//! let op = trace.next_op().expect("traces are infinite");
//! println!("{:?} at t={}", op.kind, op.at);
//! ```

mod generator;
mod phased;
mod record;
mod suite;
mod tenant;
mod zipf;

pub use generator::{AddrPattern, ArrivalProcess, SyntheticTrace, SyntheticTraceBuilder};
pub use phased::{DiurnalTrace, Phase};
pub use record::{MergedTrace, RecordedTrace};
pub use suite::WorkloadId;
pub use tenant::{TenantKind, TenantMix, TenantMixSpec, TenantPattern, TenantSpec};
pub use zipf::Zipf;
