//! The synthetic trace generator: address pattern × read/write mix ×
//! arrival process, all seed-deterministic.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use pcm_memsim::{LineAddr, MemOp, OpKind, SimTime, TraceSource};
use scrub_checkpoint::{Reader, Writer};

use crate::zipf::Zipf;

/// Spatial access pattern over the line address space.
#[derive(Debug, Clone)]
pub enum AddrPattern {
    /// Uniform random lines.
    Uniform,
    /// Zipfian popularity with the given skew; ranks are scattered over
    /// the address space by a fixed odd-multiplier permutation so hot
    /// lines don't cluster in one bank.
    Zipf {
        /// Skew exponent (0.99 ≈ classic OLTP).
        theta: f64,
    },
    /// Sequential sweep that wraps around (streaming scans).
    Sequential,
    /// Sequential scan bursts interleaved with zipfian point accesses
    /// (OLAP-style).
    ScanPoint {
        /// Length of each sequential burst.
        scan_len: u32,
        /// Zipf skew of the point accesses.
        theta: f64,
    },
}

/// Arrival-time process for accesses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalProcess {
    /// Fixed spacing `1/rate`.
    Periodic,
    /// Poisson arrivals (exponential gaps) at the same mean rate.
    Poisson,
    /// Bursts of `burst_len` back-to-back accesses separated by idle gaps
    /// so the long-run mean rate is preserved.
    Bursty {
        /// Accesses per burst.
        burst_len: u32,
        /// Idle time between bursts as a multiple of the busy time.
        idle_ratio: f64,
    },
}

/// A deterministic synthetic demand-trace generator.
///
/// # Examples
///
/// ```
/// use pcm_workloads::{AddrPattern, ArrivalProcess, SyntheticTrace};
/// use pcm_memsim::TraceSource;
///
/// let mut t = SyntheticTrace::builder("toy", 1024)
///     .rate_ops_per_sec(100.0)
///     .read_fraction(0.5)
///     .pattern(AddrPattern::Uniform)
///     .seed(7)
///     .build();
/// let op = t.next_op().expect("infinite trace");
/// assert!(op.addr.index() < 1024);
/// ```
#[derive(Debug)]
pub struct SyntheticTrace {
    name: String,
    num_lines: u32,
    rate: f64,
    read_frac: f64,
    pattern: AddrPattern,
    arrivals: ArrivalProcess,
    rng: StdRng,
    now: SimTime,
    zipf: Option<Zipf>,
    seq_pos: u32,
    scan_remaining: u32,
    burst_remaining: u32,
}

impl SyntheticTrace {
    /// Starts a builder for a trace over `num_lines` lines.
    pub fn builder(name: &str, num_lines: u32) -> SyntheticTraceBuilder {
        SyntheticTraceBuilder {
            name: name.to_string(),
            num_lines,
            rate: 1000.0,
            read_frac: 0.7,
            pattern: AddrPattern::Uniform,
            arrivals: ArrivalProcess::Poisson,
            seed: 0,
        }
    }

    /// Long-run mean access rate (ops/s).
    pub fn rate_ops_per_sec(&self) -> f64 {
        self.rate
    }

    /// Fraction of accesses that are reads.
    pub fn read_fraction(&self) -> f64 {
        self.read_frac
    }

    /// Scatters a popularity rank over the address space.
    fn scatter(&self, rank: u32) -> u32 {
        // Odd multiplier => bijection modulo any power-of-two-free n too,
        // via 64-bit arithmetic then reduction.
        ((rank as u64).wrapping_mul(2_654_435_761) % self.num_lines as u64) as u32
    }

    fn next_addr(&mut self) -> LineAddr {
        let addr = match &self.pattern {
            AddrPattern::Uniform => self.rng.gen_range(0..self.num_lines),
            AddrPattern::Zipf { .. } => {
                let rank = self
                    .zipf
                    .as_ref()
                    .expect("zipf built")
                    .sample(&mut self.rng) as u32;
                self.scatter(rank)
            }
            AddrPattern::Sequential => {
                let a = self.seq_pos;
                self.seq_pos = (self.seq_pos + 1) % self.num_lines;
                a
            }
            AddrPattern::ScanPoint { scan_len, .. } => {
                if self.scan_remaining > 0 {
                    self.scan_remaining -= 1;
                    let a = self.seq_pos;
                    self.seq_pos = (self.seq_pos + 1) % self.num_lines;
                    a
                } else {
                    // Alternate: one zipf point access, then a new scan.
                    self.scan_remaining = *scan_len;
                    let rank = self
                        .zipf
                        .as_ref()
                        .expect("zipf built")
                        .sample(&mut self.rng) as u32;
                    self.scatter(rank)
                }
            }
        };
        LineAddr(addr)
    }

    fn advance_clock(&mut self) {
        let mean_gap = 1.0 / self.rate;
        let dt = match self.arrivals {
            ArrivalProcess::Periodic => mean_gap,
            ArrivalProcess::Poisson => {
                let u: f64 = loop {
                    let u = self.rng.gen::<f64>();
                    if u > 0.0 {
                        break u;
                    }
                };
                -u.ln() * mean_gap
            }
            ArrivalProcess::Bursty {
                burst_len,
                idle_ratio,
            } => {
                let short_gap = mean_gap / (1.0 + idle_ratio);
                if self.burst_remaining == 0 {
                    // Idle gap sized so one full cycle (gap + burst) spans
                    // exactly `burst_len · mean_gap`, preserving the rate.
                    self.burst_remaining = burst_len.saturating_sub(1);
                    burst_len as f64 * mean_gap - burst_len.saturating_sub(1) as f64 * short_gap
                } else {
                    self.burst_remaining -= 1;
                    short_gap
                }
            }
        };
        self.now += dt;
    }
}

impl TraceSource for SyntheticTrace {
    fn next_op(&mut self) -> Option<MemOp> {
        self.advance_clock();
        let kind = if self.rng.gen::<f64>() < self.read_frac {
            OpKind::Read
        } else {
            OpKind::Write
        };
        let addr = self.next_addr();
        Some(MemOp {
            at: self.now,
            kind,
            addr,
        })
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn save_state(&self) -> Option<Vec<u8>> {
        // Only the mutable words: the pattern, zipf tables, and rates are
        // configuration, rebuilt by the resuming run.
        let mut w = Writer::new();
        for word in self.rng.state() {
            w.put_u64(word);
        }
        w.put_f64(self.now.secs());
        w.put_u32(self.seq_pos);
        w.put_u32(self.scan_remaining);
        w.put_u32(self.burst_remaining);
        Some(w.into_bytes())
    }

    fn load_state(&mut self, bytes: &[u8]) -> Result<(), String> {
        let mut r = Reader::new(bytes);
        let restore = || -> Result<(), scrub_checkpoint::CheckpointError> {
            let rng_state = [r.u64()?, r.u64()?, r.u64()?, r.u64()?];
            let now = r.time_f64("trace clock")?;
            let seq_pos = r.u32()?;
            let scan_remaining = r.u32()?;
            let burst_remaining = r.u32()?;
            r.finish()?;
            if seq_pos >= self.num_lines {
                return Err(scrub_checkpoint::CheckpointError::Malformed(format!(
                    "trace seq_pos {seq_pos} out of range ({} lines)",
                    self.num_lines
                )));
            }
            self.rng = StdRng::from_state(rng_state);
            self.now = SimTime::from_secs(now);
            self.seq_pos = seq_pos;
            self.scan_remaining = scan_remaining;
            self.burst_remaining = burst_remaining;
            Ok(())
        };
        restore().map_err(|e| format!("synthetic trace state: {e}"))
    }
}

/// Builder for [`SyntheticTrace`].
#[derive(Debug, Clone)]
pub struct SyntheticTraceBuilder {
    name: String,
    num_lines: u32,
    rate: f64,
    read_frac: f64,
    pattern: AddrPattern,
    arrivals: ArrivalProcess,
    seed: u64,
}

impl SyntheticTraceBuilder {
    /// Sets the long-run mean access rate in line ops per second.
    pub fn rate_ops_per_sec(mut self, rate: f64) -> Self {
        assert!(rate > 0.0, "rate must be positive");
        self.rate = rate;
        self
    }

    /// Sets the fraction of accesses that are reads.
    pub fn read_fraction(mut self, f: f64) -> Self {
        assert!((0.0..=1.0).contains(&f), "read fraction must be in [0,1]");
        self.read_frac = f;
        self
    }

    /// Sets the address pattern.
    pub fn pattern(mut self, p: AddrPattern) -> Self {
        self.pattern = p;
        self
    }

    /// Sets the arrival process.
    pub fn arrivals(mut self, a: ArrivalProcess) -> Self {
        self.arrivals = a;
        self
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Finalizes the generator.
    pub fn build(self) -> SyntheticTrace {
        let zipf = match &self.pattern {
            AddrPattern::Zipf { theta } | AddrPattern::ScanPoint { theta, .. } => {
                Some(Zipf::new(self.num_lines as usize, *theta))
            }
            _ => None,
        };
        SyntheticTrace {
            name: self.name,
            num_lines: self.num_lines,
            rate: self.rate,
            read_frac: self.read_frac,
            pattern: self.pattern,
            arrivals: self.arrivals,
            rng: StdRng::seed_from_u64(self.seed),
            now: SimTime::ZERO,
            zipf,
            seq_pos: 0,
            scan_remaining: 0,
            burst_remaining: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timestamps_are_nondecreasing() {
        let mut t = SyntheticTrace::builder("t", 100)
            .rate_ops_per_sec(10.0)
            .build();
        let mut prev = SimTime::ZERO;
        for _ in 0..1000 {
            let op = t.next_op().expect("infinite");
            assert!(op.at >= prev);
            prev = op.at;
        }
    }

    #[test]
    fn mean_rate_respected() {
        for arrivals in [
            ArrivalProcess::Periodic,
            ArrivalProcess::Poisson,
            ArrivalProcess::Bursty {
                burst_len: 10,
                idle_ratio: 3.0,
            },
        ] {
            let mut t = SyntheticTrace::builder("t", 100)
                .rate_ops_per_sec(100.0)
                .arrivals(arrivals)
                .seed(5)
                .build();
            let n = 20_000;
            let mut last = SimTime::ZERO;
            for _ in 0..n {
                last = t.next_op().expect("infinite").at;
            }
            let measured = n as f64 / last.secs();
            assert!(
                (measured - 100.0).abs() < 15.0,
                "{arrivals:?}: measured rate {measured}"
            );
        }
    }

    #[test]
    fn read_fraction_respected() {
        let mut t = SyntheticTrace::builder("t", 100)
            .read_fraction(0.8)
            .seed(6)
            .build();
        let mut reads = 0;
        for _ in 0..10_000 {
            if t.next_op().expect("infinite").kind == OpKind::Read {
                reads += 1;
            }
        }
        let f = reads as f64 / 10_000.0;
        assert!((f - 0.8).abs() < 0.02, "read fraction {f}");
    }

    #[test]
    fn sequential_sweeps_in_order() {
        let mut t = SyntheticTrace::builder("t", 10)
            .pattern(AddrPattern::Sequential)
            .build();
        let addrs: Vec<u32> = (0..12).map(|_| t.next_op().expect("inf").addr.0).collect();
        assert_eq!(addrs[..10], (0..10).collect::<Vec<u32>>()[..]);
        assert_eq!(addrs[10], 0); // wraps
    }

    #[test]
    fn zipf_concentrates_accesses() {
        let mut t = SyntheticTrace::builder("t", 1000)
            .pattern(AddrPattern::Zipf { theta: 1.2 })
            .seed(7)
            .build();
        let mut counts = std::collections::HashMap::new();
        for _ in 0..10_000 {
            *counts.entry(t.next_op().expect("inf").addr).or_insert(0u32) += 1;
        }
        let mut freqs: Vec<u32> = counts.values().copied().collect();
        freqs.sort_unstable_by(|a, b| b.cmp(a));
        let top10: u32 = freqs.iter().take(10).sum();
        assert!(
            top10 > 4000,
            "top-10 lines should dominate a theta=1.2 zipf, got {top10}/10000"
        );
    }

    #[test]
    fn addresses_in_range() {
        let mut t = SyntheticTrace::builder("t", 33)
            .pattern(AddrPattern::ScanPoint {
                scan_len: 5,
                theta: 0.9,
            })
            .build();
        for _ in 0..500 {
            assert!(t.next_op().expect("inf").addr.0 < 33);
        }
    }

    #[test]
    fn save_load_resumes_exact_stream() {
        for pattern in [
            AddrPattern::Uniform,
            AddrPattern::Zipf { theta: 0.99 },
            AddrPattern::Sequential,
            AddrPattern::ScanPoint {
                scan_len: 5,
                theta: 0.9,
            },
        ] {
            let build = || {
                SyntheticTrace::builder("t", 64)
                    .pattern(pattern.clone())
                    .arrivals(ArrivalProcess::Bursty {
                        burst_len: 4,
                        idle_ratio: 2.0,
                    })
                    .seed(11)
                    .build()
            };
            let mut continuous = build();
            for _ in 0..137 {
                continuous.next_op();
            }
            let mut split = build();
            for _ in 0..70 {
                split.next_op();
            }
            let state = split.save_state().expect("supported");
            let mut resumed = build();
            resumed.load_state(&state).expect("round-trip");
            for i in 0..67 {
                resumed.next_op();
                let _ = i;
            }
            assert_eq!(
                continuous.next_op(),
                resumed.next_op(),
                "{pattern:?}: stream diverged after resume"
            );
        }
    }

    #[test]
    fn load_state_rejects_garbage() {
        let mut t = SyntheticTrace::builder("t", 64).build();
        assert!(t.load_state(&[1, 2, 3]).is_err());
        let mut state = t.save_state().expect("supported");
        // seq_pos out of range for a 64-line trace.
        let off = 4 * 8 + 8;
        state[off..off + 4].copy_from_slice(&1000u32.to_le_bytes());
        assert!(t.load_state(&state).is_err());
    }

    #[test]
    fn deterministic_under_seed() {
        let collect = || {
            let mut t = SyntheticTrace::builder("t", 64).seed(42).build();
            (0..100)
                .map(|_| {
                    let op = t.next_op().expect("inf");
                    (op.addr.0, op.kind == OpKind::Read)
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(collect(), collect());
    }
}
