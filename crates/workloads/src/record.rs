//! Trace recording, replay, and composition utilities.

use pcm_memsim::{MemOp, TraceSource};

/// A pre-recorded, replayable trace.
///
/// Useful for capturing a stochastic generator's output once and feeding
/// the identical access stream to several simulator configurations (true
/// apples-to-apples comparisons), or for loading externally produced
/// traces.
///
/// # Examples
///
/// ```
/// use pcm_workloads::{RecordedTrace, WorkloadId};
/// use pcm_memsim::TraceSource;
///
/// let mut gen = WorkloadId::KvCache.build(1024, 1.0, 9);
/// let recorded = RecordedTrace::capture("kv-snap", &mut gen, 100);
/// assert_eq!(recorded.len(), 100);
/// let mut replay = recorded.clone();
/// assert!(replay.next_op().is_some());
/// ```
#[derive(Debug, Clone)]
pub struct RecordedTrace {
    name: String,
    ops: Vec<MemOp>,
    pos: usize,
}

impl RecordedTrace {
    /// Builds a trace from explicit ops.
    ///
    /// # Panics
    ///
    /// Panics if timestamps are not nondecreasing.
    pub fn new(name: &str, ops: Vec<MemOp>) -> Self {
        for w in ops.windows(2) {
            assert!(w[0].at <= w[1].at, "recorded trace must be time-ordered");
        }
        Self {
            name: name.to_string(),
            ops,
            pos: 0,
        }
    }

    /// Captures the next `n` ops from a live source.
    pub fn capture(name: &str, source: &mut dyn TraceSource, n: usize) -> Self {
        let ops: Vec<MemOp> = (0..n).filter_map(|_| source.next_op()).collect();
        Self::new(name, ops)
    }

    /// Number of ops in the recording.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the recording is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Rewinds the replay cursor.
    pub fn rewind(&mut self) {
        self.pos = 0;
    }

    /// The raw ops.
    pub fn ops(&self) -> &[MemOp] {
        &self.ops
    }
}

impl TraceSource for RecordedTrace {
    fn next_op(&mut self) -> Option<MemOp> {
        let op = self.ops.get(self.pos).copied();
        if op.is_some() {
            self.pos += 1;
        }
        op
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// Merges two trace sources into one time-ordered stream (e.g. a
/// foreground workload plus a background checkpointing task).
#[derive(Debug)]
pub struct MergedTrace<A, B> {
    name: String,
    a: A,
    b: B,
    pending_a: Option<MemOp>,
    pending_b: Option<MemOp>,
}

impl<A: TraceSource, B: TraceSource> MergedTrace<A, B> {
    /// Creates the merged stream.
    pub fn new(mut a: A, mut b: B) -> Self {
        let pending_a = a.next_op();
        let pending_b = b.next_op();
        let name = format!("{}+{}", a.name(), b.name());
        Self {
            name,
            a,
            b,
            pending_a,
            pending_b,
        }
    }
}

impl<A: TraceSource, B: TraceSource> TraceSource for MergedTrace<A, B> {
    fn next_op(&mut self) -> Option<MemOp> {
        let take_a = match (self.pending_a, self.pending_b) {
            (Some(x), Some(y)) => x.at <= y.at,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => return None,
        };
        if take_a {
            let op = self.pending_a.take();
            self.pending_a = self.a.next_op();
            op
        } else {
            let op = self.pending_b.take();
            self.pending_b = self.b.next_op();
            op
        }
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::WorkloadId;
    use pcm_memsim::{LineAddr, SimTime};

    #[test]
    fn capture_and_replay_identical() {
        let mut gen = WorkloadId::DbOltp.build(512, 1.0, 3);
        let rec = RecordedTrace::capture("snap", &mut gen, 50);
        let mut r1 = rec.clone();
        let mut r2 = rec.clone();
        for _ in 0..50 {
            assert_eq!(r1.next_op(), r2.next_op());
        }
        assert!(r1.next_op().is_none(), "exhausted after len ops");
    }

    #[test]
    fn rewind_restarts() {
        let mut gen = WorkloadId::Stream.build(128, 1.0, 4);
        let mut rec = RecordedTrace::capture("snap", &mut gen, 10);
        let first = rec.next_op();
        while rec.next_op().is_some() {}
        rec.rewind();
        assert_eq!(rec.next_op(), first);
    }

    #[test]
    fn merged_stream_is_time_ordered() {
        let a = WorkloadId::KvCache.build(256, 1.0, 5);
        let b = WorkloadId::Batch.build(256, 1.0, 6);
        let mut m = MergedTrace::new(a, b);
        let mut prev = SimTime::ZERO;
        for _ in 0..500 {
            let op = m.next_op().expect("both infinite");
            assert!(op.at >= prev);
            prev = op.at;
        }
        assert_eq!(m.name(), "kv-cache+batch");
    }

    #[test]
    fn merged_drains_finite_sources() {
        let a = RecordedTrace::new("a", vec![MemOp::read(SimTime::from_secs(1.0), LineAddr(0))]);
        let b = RecordedTrace::new(
            "b",
            vec![
                MemOp::read(SimTime::from_secs(0.5), LineAddr(1)),
                MemOp::read(SimTime::from_secs(2.0), LineAddr(2)),
            ],
        );
        let mut m = MergedTrace::new(a, b);
        let order: Vec<u32> = std::iter::from_fn(|| m.next_op())
            .map(|o| o.addr.0)
            .collect();
        assert_eq!(order, vec![1, 0, 2]);
    }

    #[test]
    #[should_panic(expected = "time-ordered")]
    fn rejects_disordered_recording() {
        RecordedTrace::new(
            "bad",
            vec![
                MemOp::read(SimTime::from_secs(2.0), LineAddr(0)),
                MemOp::read(SimTime::from_secs(1.0), LineAddr(1)),
            ],
        );
    }
}
