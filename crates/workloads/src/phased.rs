//! Phased (diurnal) traffic: a workload whose intensity follows a
//! repeating schedule — the regime where adaptive scrub pacing shines,
//! since drift pressure follows the write lull.

use pcm_memsim::{MemOp, SimTime, TraceSource};

use crate::generator::SyntheticTrace;
use crate::suite::WorkloadId;

/// One segment of the repeating schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Phase {
    /// Segment length in seconds.
    pub duration_s: f64,
    /// Rate multiplier applied to ops whose timestamp falls in this
    /// segment (0 = fully idle).
    pub rate_multiplier: f64,
}

/// Wraps a generator with a repeating intensity schedule by *thinning*:
/// ops landing in a phase with multiplier `m < 1` are kept with
/// probability `m` (deterministically, via a counter), preserving
/// timestamps and address structure.
///
/// # Examples
///
/// ```
/// use pcm_workloads::{DiurnalTrace, Phase, WorkloadId};
/// use pcm_memsim::TraceSource;
///
/// let mut t = DiurnalTrace::day_night(WorkloadId::DbOltp, 1024, 7, 3600.0, 0.1);
/// assert!(t.next_op().is_some());
/// ```
#[derive(Debug)]
pub struct DiurnalTrace {
    name: String,
    inner: SyntheticTrace,
    phases: Vec<Phase>,
    period_s: f64,
    /// Deterministic thinning accumulator per phase.
    keep_credit: Vec<f64>,
}

impl DiurnalTrace {
    /// Wraps `inner` with a repeating schedule.
    ///
    /// # Panics
    ///
    /// Panics if `phases` is empty, any duration is non-positive, or any
    /// multiplier is outside `[0, 1]` (thinning cannot add traffic).
    pub fn new(inner: SyntheticTrace, phases: Vec<Phase>) -> Self {
        assert!(!phases.is_empty(), "need at least one phase");
        for p in &phases {
            assert!(p.duration_s > 0.0, "phase duration must be positive");
            assert!(
                (0.0..=1.0).contains(&p.rate_multiplier),
                "thinning multiplier must be in [0,1]"
            );
        }
        let period_s = phases.iter().map(|p| p.duration_s).sum();
        let name = format!("diurnal({})", pcm_memsim::TraceSource::name(&inner));
        let keep_credit = vec![0.0; phases.len()];
        Self {
            name,
            inner,
            phases,
            period_s,
            keep_credit,
        }
    }

    /// Classic two-phase day/night pattern: `busy_s` seconds at full rate
    /// then `busy_s` at `night_multiplier`.
    pub fn day_night(
        id: WorkloadId,
        num_lines: u32,
        seed: u64,
        busy_s: f64,
        night_multiplier: f64,
    ) -> Self {
        let inner = id.build(num_lines, 1.0, seed);
        Self::new(
            inner,
            vec![
                Phase {
                    duration_s: busy_s,
                    rate_multiplier: 1.0,
                },
                Phase {
                    duration_s: busy_s,
                    rate_multiplier: night_multiplier,
                },
            ],
        )
    }

    /// Index of the phase containing time `t`.
    fn phase_of(&self, t: SimTime) -> usize {
        let mut pos = t.secs() % self.period_s;
        for (i, p) in self.phases.iter().enumerate() {
            if pos < p.duration_s {
                return i;
            }
            pos -= p.duration_s;
        }
        self.phases.len() - 1
    }
}

impl TraceSource for DiurnalTrace {
    fn next_op(&mut self) -> Option<MemOp> {
        loop {
            let op = self.inner.next_op()?;
            let idx = self.phase_of(op.at);
            let m = self.phases[idx].rate_multiplier;
            // Deterministic thinning: accumulate credit, emit when >= 1.
            self.keep_credit[idx] += m;
            if self.keep_credit[idx] >= 1.0 {
                self.keep_credit[idx] -= 1.0;
                return Some(op);
            }
        }
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn night_phase_is_thinner() {
        let mut t = DiurnalTrace::day_night(WorkloadId::KvCache, 1024, 3, 1800.0, 0.1);
        let mut day = 0u32;
        let mut night = 0u32;
        for _ in 0..20_000 {
            let Some(op) = t.next_op() else { break };
            if op.at.secs() % 3600.0 < 1800.0 {
                day += 1;
            } else {
                night += 1;
            }
        }
        assert!(
            night * 5 < day,
            "night ({night}) should be ~10x thinner than day ({day})"
        );
        assert!(night > 0, "night should not be fully silent");
    }

    #[test]
    fn zero_multiplier_silences_phase() {
        let inner = WorkloadId::KvCache.build(256, 1.0, 4);
        let mut t = DiurnalTrace::new(
            inner,
            vec![
                Phase {
                    duration_s: 100.0,
                    rate_multiplier: 1.0,
                },
                Phase {
                    duration_s: 100.0,
                    rate_multiplier: 0.0,
                },
            ],
        );
        for _ in 0..5000 {
            let op = t.next_op().expect("infinite");
            assert!(
                op.at.secs() % 200.0 < 100.0,
                "op leaked into the silent phase at {}",
                op.at
            );
        }
    }

    #[test]
    fn timestamps_stay_ordered() {
        let mut t = DiurnalTrace::day_night(WorkloadId::Stream, 512, 5, 60.0, 0.3);
        let mut prev = SimTime::ZERO;
        for _ in 0..2000 {
            let op = t.next_op().expect("infinite");
            assert!(op.at >= prev);
            prev = op.at;
        }
    }

    #[test]
    #[should_panic(expected = "thinning multiplier")]
    fn rejects_amplification() {
        let inner = WorkloadId::KvCache.build(64, 1.0, 6);
        DiurnalTrace::new(
            inner,
            vec![Phase {
                duration_s: 10.0,
                rate_multiplier: 2.0,
            }],
        );
    }
}
