//! Zipfian rank sampling via an exact precomputed CDF.

use rand::Rng;

/// Samples ranks `0..n` with probability `∝ 1/(rank+1)^theta`.
///
/// Built once per workload (O(n) table), then O(log n) per sample by
/// binary-searching the CDF — exact, with no rejection-envelope
/// approximations.
///
/// # Examples
///
/// ```
/// use pcm_workloads::Zipf;
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let z = Zipf::new(1000, 0.99);
/// let r = z.sample(&mut rng);
/// assert!(r < 1000);
/// ```
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
    theta: f64,
}

impl Zipf {
    /// Builds a sampler over `n` ranks with exponent `theta`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `theta < 0`.
    pub fn new(n: usize, theta: f64) -> Self {
        assert!(n > 0, "zipf needs at least one rank");
        assert!(theta >= 0.0, "zipf exponent must be nonnegative");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for i in 0..n {
            acc += 1.0 / ((i + 1) as f64).powf(theta);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Self { cdf, theta }
    }

    /// Number of ranks.
    pub fn n(&self) -> usize {
        self.cdf.len()
    }

    /// The skew exponent.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Draws a rank (0 = hottest).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }

    /// Probability mass of a rank.
    pub fn pmf(&self, rank: usize) -> f64 {
        assert!(rank < self.cdf.len(), "rank out of range");
        if rank == 0 {
            self.cdf[0]
        } else {
            self.cdf[rank] - self.cdf[rank - 1]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pmf_sums_to_one() {
        let z = Zipf::new(500, 0.99);
        let s: f64 = (0..500).map(|r| z.pmf(r)).sum();
        assert!((s - 1.0).abs() < 1e-9);
    }

    #[test]
    fn rank_zero_is_hottest() {
        let z = Zipf::new(100, 1.2);
        for r in 1..100 {
            assert!(z.pmf(0) > z.pmf(r));
        }
    }

    #[test]
    fn theta_zero_is_uniform() {
        let z = Zipf::new(10, 0.0);
        for r in 0..10 {
            assert!((z.pmf(r) - 0.1).abs() < 1e-12);
        }
    }

    #[test]
    fn empirical_frequencies_match_pmf() {
        let z = Zipf::new(50, 0.9);
        let mut rng = StdRng::seed_from_u64(71);
        let mut counts = [0u32; 50];
        let reps = 100_000;
        for _ in 0..reps {
            counts[z.sample(&mut rng)] += 1;
        }
        for r in [0usize, 1, 5, 20] {
            let emp = counts[r] as f64 / reps as f64;
            let want = z.pmf(r);
            assert!(
                (emp - want).abs() < 0.01 + 0.1 * want,
                "rank {r}: emp {emp} want {want}"
            );
        }
    }

    #[test]
    fn samples_in_range() {
        let z = Zipf::new(7, 2.0);
        let mut rng = StdRng::seed_from_u64(72);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 7);
        }
    }
}
