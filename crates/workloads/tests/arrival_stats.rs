//! Statistical validation of the open-loop tenant arrival processes.
//!
//! The fleet service's service-level claims rest on the demand streams
//! actually being what the config says: per-tenant Poisson arrivals at
//! the configured rate, merged fairly. This suite checks that with real
//! goodness-of-fit machinery (`pcm_analysis::infer`) under a
//! Holm–Bonferroni battery, and then proves the harness has teeth: the
//! same samples tested against a rate perturbed by 5% must *fail*.
//!
//! Everything is seed-deterministic, so these are exact regression tests,
//! not flaky statistical coin flips.

use pcm_analysis::{chi_square_gof, ks_test, TestBattery};
use pcm_memsim::TraceSource;
use pcm_workloads::TenantMixSpec;

/// Collects `n` inter-arrival gaps from a single-tenant Poisson mix.
fn poisson_gaps(rate: f64, n: usize, seed: u64) -> Vec<f64> {
    let spec: TenantMixSpec = format!("t:rate={rate},pattern=uniform")
        .parse()
        .expect("valid spec");
    let mut mix = spec.build(4096, 1.0, seed);
    let mut gaps = Vec::with_capacity(n);
    let mut last = None;
    while gaps.len() < n {
        let op = mix.next_op().expect("open-loop streams are infinite");
        let t = op.at.secs();
        if let Some(prev) = last {
            gaps.push(t - prev);
        }
        last = Some(t);
    }
    gaps
}

/// KS p-value of `gaps` against Exp(rate) (`ks_test` returns the
/// p-value directly).
fn exp_ks_p(gaps: &[f64], rate: f64) -> f64 {
    let mut samples = gaps.to_vec();
    ks_test(&mut samples, |t| 1.0 - (-rate * t).exp())
}

const N_GAPS: usize = 20_000;

#[test]
fn poisson_interarrivals_match_configured_rates() {
    let mut battery = TestBattery::new(0.01);
    for (i, rate) in [20.0, 80.0, 250.0].into_iter().enumerate() {
        let gaps = poisson_gaps(rate, N_GAPS, 0xA221 + i as u64);
        battery.record(&format!("ks.exp.rate{rate}"), exp_ks_p(&gaps, rate));
        // Mean gap sanity alongside the shape test: 1/rate within 3%.
        let mean: f64 = gaps.iter().sum::<f64>() / gaps.len() as f64;
        assert!(
            (mean * rate - 1.0).abs() < 0.03,
            "mean gap {mean} vs rate {rate}"
        );
    }
    assert!(
        battery.rejections().is_empty(),
        "arrival processes deviate from configured rates: {:?}",
        battery.rejections()
    );
}

#[test]
fn tripwire_five_percent_rate_perturbation_fails_the_suite() {
    // Same samples, same harness — but the null hypothesis claims a rate
    // 5% off what the generator was configured with. If this battery
    // does NOT reject, the suite has no power to catch rate drift, and
    // the validation above is meaningless.
    let mut battery = TestBattery::new(0.01);
    for (i, rate) in [20.0, 80.0, 250.0].into_iter().enumerate() {
        let gaps = poisson_gaps(rate, N_GAPS, 0xA221 + i as u64);
        battery.record(
            &format!("ks.exp.rate{rate}.perturbed"),
            exp_ks_p(&gaps, rate * 1.05),
        );
    }
    assert_eq!(
        battery.rejections().len(),
        3,
        "a 5% rate perturbation must fail every tenant's KS test, got {:?}",
        battery.outcomes()
    );
}

#[test]
fn tenant_shares_in_a_mix_follow_configured_proportions() {
    // Three tenants at 1:3:6 demand. Drive the merged mix and chi-square
    // the delivered per-tenant op counts against the configured shares.
    let spec: TenantMixSpec = "small:rate=30;mid:rate=90;big:rate=180,read=0.5,pattern=uniform"
        .parse()
        .expect("valid spec");
    let mut mix = spec.build(4096, 1.0, 0xBEEF);
    for _ in 0..30_000 {
        mix.next_op().expect("infinite");
    }
    let rows = mix
        .tenant_ops()
        .expect("tenant mixes report per-tenant ops");
    let observed: Vec<u64> = rows.iter().map(|(_, r, w)| r + w).collect();
    let total: u64 = observed.iter().sum();
    assert_eq!(total, 30_000);
    let rates = [30.0, 90.0, 180.0];
    let rate_sum: f64 = rates.iter().sum();
    let expected: Vec<f64> = rates.iter().map(|r| total as f64 * r / rate_sum).collect();
    let (p, dof) = chi_square_gof(&observed, &expected, 5.0);
    assert_eq!(dof, 2);
    assert!(
        p > 0.01,
        "tenant shares {observed:?} deviate from configured proportions (p={p})"
    );

    // Tripwire at the mix level: testing the same counts against shares
    // perturbed 5% toward the big tenant must reject.
    let skewed = [30.0 * 0.95, 90.0 * 0.95, 180.0 * 1.05];
    let skew_sum: f64 = skewed.iter().sum();
    let expected_skewed: Vec<f64> = skewed.iter().map(|r| total as f64 * r / skew_sum).collect();
    let (p_skewed, _) = chi_square_gof(&observed, &expected_skewed, 5.0);
    assert!(
        p_skewed < 0.01,
        "chi-square failed to reject 5%-skewed shares (p={p_skewed})"
    );
}

#[test]
fn periodic_tenants_are_not_poisson() {
    // Negative control for the KS harness itself: a periodic stream at
    // the same rate must be rejected against the exponential null.
    let spec: TenantMixSpec = "clock:rate=50,arrivals=periodic,pattern=uniform"
        .parse()
        .expect("valid spec");
    let mut mix = spec.build(4096, 1.0, 0xC10C);
    let mut gaps = Vec::with_capacity(2000);
    let mut last = None;
    while gaps.len() < 2000 {
        let t = mix.next_op().expect("infinite").at.secs();
        if let Some(prev) = last {
            gaps.push(t - prev);
        }
        last = Some(t);
    }
    assert!(
        exp_ks_p(&gaps, 50.0) < 1e-6,
        "periodic arrivals must not pass as Poisson"
    );
}
