//! Resistance-drift model: the soft-error source this whole system exists
//! to manage.
//!
//! A cell programmed at `log₁₀R = x₀` drifts to `x(t) = x₀ + ν·log₁₀(t/t₀)`
//! with a per-cell drift exponent `ν` that is lognormally distributed around
//! a per-level median. Misreads happen when the drifted (and noisily sensed)
//! resistance crosses a sense threshold. The model splits misreads into:
//!
//! * **persistent** errors — the *noiseless* resistance has crossed a
//!   boundary; these stay wrong on every subsequent read until the cell is
//!   rewritten. Up-crossings are **monotone nondecreasing in time**, which
//!   the simulator's incremental-binomial fault engine relies on.
//! * **transient** errors — sensing noise pushes an otherwise-good read
//!   across a boundary; independent across reads.

use crate::level::LevelStack;
use crate::math::{norm_cdf, norm_sf, GaussHermite};
use crate::noise::NoiseParams;
use crate::threshold::Thresholds;

/// How the sense amplifier places thresholds at read time.
///
/// `AgeCompensated` models *time-aware sensing*: the controller knows how
/// long ago a line was written (it tracks write times for scrubbing
/// anyway) and shifts each boundary upward by the median drift the level
/// below it will have accumulated — so only above-median drifters misread.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SensingMode {
    /// Fixed thresholds; all drift shows up as error probability.
    #[default]
    Fixed,
    /// Boundaries shifted by the lower level's median drift at the line's
    /// known age (clamped to preserve the upper level's guard band).
    AgeCompensated,
}

/// Distributional parameters of the drift exponent ν.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftParams {
    /// Spread of `ln ν` around `ln ν̄` (lognormal shape parameter).
    pub sigma_ln_nu: f64,
    /// Drift normalization time t₀ (seconds); no drift accrues before t₀.
    pub t0_s: f64,
    /// Global multiplier on every level's median ν — the sensitivity knob
    /// for experiment E10 (1.0 = nominal, 0.0 = drift-free).
    pub nu_scale: f64,
}

impl DriftParams {
    /// Literature defaults: σ_lnν = 0.3, t₀ = 1 s, nominal scale.
    pub fn new(sigma_ln_nu: f64, t0_s: f64) -> Self {
        assert!(sigma_ln_nu >= 0.0, "sigma_ln_nu must be nonnegative");
        assert!(t0_s > 0.0, "t0 must be positive");
        Self {
            sigma_ln_nu,
            t0_s,
            nu_scale: 1.0,
        }
    }

    /// Sets the global drift-severity multiplier.
    pub fn with_scale(mut self, nu_scale: f64) -> Self {
        assert!(nu_scale >= 0.0, "nu_scale must be nonnegative");
        self.nu_scale = nu_scale;
        self
    }

    /// Sets the severity multiplier from an operating temperature.
    ///
    /// Drift is thermally activated; measurements in the MLC-PCM
    /// literature show ν roughly doubling between room temperature and
    /// ~85 °C. This helper uses the representative scaling
    /// `ν_scale = 2^((T − 25)/60)` so 25 °C is nominal and 85 °C doubles
    /// drift severity.
    ///
    /// # Panics
    ///
    /// Panics for temperatures outside −25 °C..=125 °C (beyond the model's
    /// calibrated range).
    pub fn with_temperature_c(self, temp_c: f64) -> Self {
        assert!(
            (-25.0..=125.0).contains(&temp_c),
            "temperature {temp_c}C outside the calibrated -25..=125C range"
        );
        let scale = 2f64.powf((temp_c - 25.0) / 60.0);
        self.with_scale(scale)
    }

    /// Decades of drift accumulated by time `t` for exponent ν:
    /// `ν·log₁₀(max(t, t₀)/t₀)`.
    pub fn log_time_factor(&self, t_s: f64) -> f64 {
        if t_s <= self.t0_s {
            0.0
        } else {
            (t_s / self.t0_s).log10()
        }
    }
}

impl Default for DriftParams {
    fn default() -> Self {
        Self::new(0.3, 1.0)
    }
}

/// Number of points in each per-level `p_up` lookup table.
const LUT_POINTS: usize = 768;
/// The transient LUT is much smoother (no monotonicity requirement) and
/// each point costs a double quadrature, so it uses a coarser grid.
const TR_LUT_POINTS: usize = 128;
/// LUTs span ages `t₀ … t₀·10^LUT_DECADES`.
const LUT_DECADES: f64 = 12.0;
/// Gauss–Hermite order for marginalizing ν (outer) and read noise (inner).
const GH_ORDER_NU: usize = 48;
const GH_ORDER_READ: usize = 16;

/// Clamped linear interpolation of every level's LUT at log-age `l`,
/// shared by the batched accessors (the arithmetic must stay identical
/// across them — callers rely on fused and separate lookups agreeing
/// bit for bit). `flat` is the point-major interleaved layout
/// (`flat[i·levels + lv]`), so one lookup reads two adjacent rows instead
/// of chasing a pointer per level.
#[inline]
fn interp_levels(flat: &[f64], points: usize, levels: usize, l: f64, out: &mut [f64]) {
    if l <= 0.0 {
        out[..levels].copy_from_slice(&flat[..levels]);
        return;
    }
    let pos = (l / LUT_DECADES) * (points - 1) as f64;
    if pos >= (points - 1) as f64 {
        out[..levels].copy_from_slice(&flat[(points - 1) * levels..]);
        return;
    }
    let i = pos as usize;
    let frac = pos - i as f64;
    let rows = &flat[i * levels..(i + 2) * levels];
    for lv in 0..levels {
        let (a, b) = (rows[lv], rows[levels + lv]);
        out[lv] = a + (b - a) * frac;
    }
}

/// Re-lays per-level LUTs (`luts[lv][i]`) into the point-major interleaved
/// buffer [`interp_levels`] reads. Values are copied verbatim, so flat and
/// per-level lookups agree bit for bit.
fn flatten_luts(luts: &[Vec<f64>], points: usize) -> Vec<f64> {
    let mut flat = Vec::with_capacity(points * luts.len());
    for i in 0..points {
        for lut in luts {
            flat.push(lut[i]);
        }
    }
    flat
}

/// Analytic per-level misread probabilities as a function of cell age.
///
/// Construction precomputes monotone lookup tables so the hot path
/// ([`DriftModel::p_up`]) is a clamped linear interpolation; exact
/// quadrature versions remain available for validation.
///
/// # Examples
///
/// ```
/// use pcm_model::{DriftModel, DriftParams, LevelStack, NoiseParams, ThresholdPlacement};
/// let stack = LevelStack::standard_mlc2();
/// let noise = NoiseParams::default();
/// let th = ThresholdPlacement::Midpoint.build(&stack, &noise, 1.0);
/// let model = DriftModel::new(stack, noise, th, DriftParams::default());
/// // Level 2 is much more drift-vulnerable after a day than after a second.
/// assert!(model.p_up(2, 86_400.0) > model.p_up(2, 1.0));
/// ```
#[derive(Debug, Clone)]
pub struct DriftModel {
    stack: LevelStack,
    noise: NoiseParams,
    thresholds: Thresholds,
    params: DriftParams,
    gh_nu: GaussHermite,
    gh_read: GaussHermite,
    sensing: SensingMode,
    /// Per level: `p_up` persistent-up-crossing LUT over the log-age grid
    /// (for the configured sensing mode).
    lut_up: Vec<Vec<f64>>,
    /// Per level: transient (read-noise) misread LUT over the same grid.
    lut_tr: Vec<Vec<f64>>,
    /// `lut_up` in point-major interleaved layout for the batched lookups.
    flat_up: Vec<f64>,
    /// `lut_tr` in point-major interleaved layout for the batched lookups.
    flat_tr: Vec<f64>,
}

impl DriftModel {
    /// Builds the model and precomputes LUTs.
    ///
    /// # Panics
    ///
    /// Panics if the thresholds' level count does not match the stack.
    pub fn new(
        stack: LevelStack,
        noise: NoiseParams,
        thresholds: Thresholds,
        params: DriftParams,
    ) -> Self {
        Self::with_sensing(stack, noise, thresholds, params, SensingMode::Fixed)
    }

    /// Builds the model with an explicit sensing mode.
    ///
    /// # Panics
    ///
    /// Panics if the thresholds' level count does not match the stack.
    pub fn with_sensing(
        stack: LevelStack,
        noise: NoiseParams,
        thresholds: Thresholds,
        params: DriftParams,
        sensing: SensingMode,
    ) -> Self {
        assert_eq!(
            thresholds.num_levels(),
            stack.num_levels(),
            "threshold arity does not match level stack"
        );
        let mut model = Self {
            stack,
            noise,
            thresholds,
            params,
            sensing,
            gh_nu: GaussHermite::new(GH_ORDER_NU),
            gh_read: GaussHermite::new(GH_ORDER_READ),
            lut_up: Vec::new(),
            lut_tr: Vec::new(),
            flat_up: Vec::new(),
            flat_tr: Vec::new(),
        };
        model.lut_up = (0..model.stack.num_levels())
            .map(|lv| {
                (0..LUT_POINTS)
                    .map(|i| {
                        let l = LUT_DECADES * i as f64 / (LUT_POINTS - 1) as f64;
                        let t = model.params.t0_s * 10f64.powf(l);
                        model.p_up_exact(lv, t)
                    })
                    .collect()
            })
            .collect();
        model.lut_tr = (0..model.stack.num_levels())
            .map(|lv| {
                (0..TR_LUT_POINTS)
                    .map(|i| {
                        let l = LUT_DECADES * i as f64 / (TR_LUT_POINTS - 1) as f64;
                        let t = model.params.t0_s * 10f64.powf(l);
                        model.p_transient(lv, t)
                    })
                    .collect()
            })
            .collect();
        // Enforce monotonicity against any residual quadrature wiggle.
        for lut in &mut model.lut_up {
            for i in 1..lut.len() {
                if lut[i] < lut[i - 1] {
                    lut[i] = lut[i - 1];
                }
            }
        }
        model.flat_up = flatten_luts(&model.lut_up, LUT_POINTS);
        model.flat_tr = flatten_luts(&model.lut_tr, TR_LUT_POINTS);
        model
    }

    /// The level stack this model describes.
    pub fn stack(&self) -> &LevelStack {
        &self.stack
    }

    /// The sense thresholds in force.
    pub fn thresholds(&self) -> &Thresholds {
        &self.thresholds
    }

    /// The noise parameters in force.
    pub fn noise(&self) -> &NoiseParams {
        &self.noise
    }

    /// The drift-exponent distribution parameters.
    pub fn params(&self) -> &DriftParams {
        &self.params
    }

    /// Effective median ν of a level after the global scale factor.
    pub fn nu_median(&self, level: usize) -> f64 {
        self.stack.level(level).nu_median * self.params.nu_scale
    }

    /// `P(x₀ > c)` under the (possibly verify-truncated) write distribution
    /// of `level`.
    fn write_tail_above(&self, level: usize, c: f64) -> f64 {
        let mu = self.stack.level(level).log_r;
        let sw = self.noise.sigma_write;
        match self.noise.verify_half_band {
            None => norm_sf((c - mu) / sw),
            Some(h) => {
                if c >= mu + h {
                    0.0
                } else if c <= mu - h {
                    1.0
                } else {
                    let z_top = norm_cdf(h / sw);
                    let z_bot = norm_cdf(-h / sw);
                    let z_c = norm_cdf((c - mu) / sw);
                    ((z_top - z_c) / (z_top - z_bot)).clamp(0.0, 1.0)
                }
            }
        }
    }

    /// `P(x₀ < c)` under the write distribution of `level`.
    fn write_tail_below(&self, level: usize, c: f64) -> f64 {
        1.0 - self.write_tail_above(level, c)
    }

    /// Integrates `f(ν)` against the level's ν distribution.
    fn expect_over_nu<F: FnMut(f64) -> f64>(&self, level: usize, mut f: F) -> f64 {
        let med = self.nu_median(level);
        if med <= 0.0 {
            return f(0.0);
        }
        if self.params.sigma_ln_nu == 0.0 {
            return f(med);
        }
        self.gh_nu
            .expect_lognormal(med.ln(), self.params.sigma_ln_nu, f)
            .clamp(0.0, 1.0)
    }

    /// The sensing mode this model was built with.
    pub fn sensing(&self) -> SensingMode {
        self.sensing
    }

    /// Upward shift applied at read time to the boundary *above* `level`
    /// for a line of age `t_s` (zero under fixed sensing).
    ///
    /// The shift is the level's median drift, clamped so the boundary
    /// keeps a 3σ_w guard band below the (itself drifted) upper level.
    pub fn boundary_shift(&self, level: usize, t_s: f64) -> f64 {
        raw_boundary_shift(
            &self.stack,
            &self.noise,
            &self.params,
            &self.thresholds,
            self.sensing,
            level,
            t_s,
        )
    }

    /// Exact (quadrature) CDF of the *noiseless drifted* resistance of a
    /// cell written to `level`: `P(x₀ + ν·log₁₀(t/t₀) ≤ x)` at age `t_s`,
    /// marginalized over the write distribution and the lognormal drift
    /// exponent. No lookup table is involved — this is the raw law the
    /// LUTs are sampled from, exposed so external validators (the
    /// `scrub-oracle` crate, goodness-of-fit tests against `CellArray`
    /// samples) can cross-check the distribution itself rather than only
    /// its threshold exceedances.
    ///
    /// # Examples
    ///
    /// ```
    /// use pcm_model::DeviceConfig;
    /// let m = DeviceConfig::default().drift_model();
    /// // A day-old level-2 cell has drifted up from 5.0 decades.
    /// let below_center = m.drift_cdf(2, 86_400.0, 5.0);
    /// assert!(below_center < 0.5);
    /// assert!(m.drift_cdf(2, 86_400.0, 9.0) > 0.999);
    /// ```
    pub fn drift_cdf(&self, level: usize, t_s: f64, x: f64) -> f64 {
        let l = self.params.log_time_factor(t_s);
        self.expect_over_nu(level, |nu| self.write_tail_below(level, x - nu * l))
    }

    /// Exact (quadrature) persistent up-crossing probability: the noiseless
    /// resistance of a cell written to `level` has drifted above the level's
    /// (possibly age-compensated) upper boundary by age `t_s`.
    pub fn p_up_exact(&self, level: usize, t_s: f64) -> f64 {
        let Some(t_up) = self.thresholds.upper(level) else {
            return 0.0; // top level has no upper boundary
        };
        let t_up = t_up + self.boundary_shift(level, t_s);
        let l = self.params.log_time_factor(t_s);
        self.expect_over_nu(level, |nu| self.write_tail_above(level, t_up - nu * l))
    }

    /// Fast persistent up-crossing probability via the monotone LUT.
    ///
    /// Guaranteed nondecreasing in `t_s` — the fault engine's correctness
    /// depends on this.
    pub fn p_up(&self, level: usize, t_s: f64) -> f64 {
        let lut = &self.lut_up[level];
        let l = self.params.log_time_factor(t_s);
        if l <= 0.0 {
            return lut[0];
        }
        let pos = (l / LUT_DECADES) * (LUT_POINTS - 1) as f64;
        if pos >= (LUT_POINTS - 1) as f64 {
            return lut[LUT_POINTS - 1];
        }
        let i = pos as usize;
        let frac = pos - i as f64;
        lut[i] + (lut[i + 1] - lut[i]) * frac
    }

    /// Fast persistent up-crossing probabilities for *all* levels at once:
    /// one log-age computation, then one LUT interpolation per level (the
    /// per-line hot path touches every level anyway, and the logarithm
    /// dominates a single lookup). Fills `out[0..num_levels]`.
    ///
    /// # Panics
    ///
    /// Panics if `out` is shorter than the level count.
    pub fn p_up_levels(&self, t_s: f64, out: &mut [f64]) {
        let levels = self.stack.num_levels();
        assert!(out.len() >= levels, "p_up_levels buffer too short");
        let l = self.params.log_time_factor(t_s);
        interp_levels(&self.flat_up, LUT_POINTS, levels, l, &mut out[..levels]);
    }

    /// One-read fused lookup: fills both the persistent (`up`) and
    /// transient (`tr`) per-level probabilities at age `t_s`, computing
    /// the log-age once. Bit-identical to calling [`Self::p_up_levels`]
    /// and [`Self::p_transient_levels`] separately — this exists because
    /// every demand read and scrub probe needs both at the same age.
    ///
    /// # Panics
    ///
    /// Panics if either buffer is shorter than the level count.
    pub fn p_read_levels(&self, t_s: f64, up: &mut [f64], tr: &mut [f64]) {
        let levels = self.stack.num_levels();
        assert!(
            up.len() >= levels && tr.len() >= levels,
            "p_read_levels buffer too short"
        );
        let l = self.params.log_time_factor(t_s);
        interp_levels(&self.flat_up, LUT_POINTS, levels, l, &mut up[..levels]);
        interp_levels(&self.flat_tr, TR_LUT_POINTS, levels, l, &mut tr[..levels]);
    }

    /// Fast transient misread probabilities for all levels at once (the
    /// [`DriftModel::p_transient_fast`] analogue of
    /// [`DriftModel::p_up_levels`]). Fills `out[0..num_levels]`.
    ///
    /// # Panics
    ///
    /// Panics if `out` is shorter than the level count.
    pub fn p_transient_levels(&self, t_s: f64, out: &mut [f64]) {
        let levels = self.stack.num_levels();
        assert!(out.len() >= levels, "p_transient_levels buffer too short");
        let l = self.params.log_time_factor(t_s);
        interp_levels(&self.flat_tr, TR_LUT_POINTS, levels, l, &mut out[..levels]);
    }

    /// Persistent down-miss probability: the noiseless resistance sits below
    /// the level's lower boundary at age `t_s` (only plausible right after
    /// write under aggressive drift-aware threshold placement; drift then
    /// *repairs* these, so this is nonincreasing in `t_s`).
    pub fn p_down(&self, level: usize, t_s: f64) -> f64 {
        let Some(t_dn) = self.thresholds.lower(level) else {
            return 0.0;
        };
        // Under age-compensated sensing the boundary below this level is
        // shifted up by the *lower* level's compensation.
        let t_dn = t_dn + self.boundary_shift(level - 1, t_s);
        let l = self.params.log_time_factor(t_s);
        self.expect_over_nu(level, |nu| self.write_tail_below(level, t_dn - nu * l))
    }

    /// Total misread probability of a single read at age `t_s`, including
    /// sensing noise (quadrature over both ν and the read-noise deviate).
    pub fn p_misread(&self, level: usize, t_s: f64) -> f64 {
        let t_up = self
            .thresholds
            .upper(level)
            .map(|t| t + self.boundary_shift(level, t_s));
        let t_dn = self
            .thresholds
            .lower(level)
            .map(|t| t + self.boundary_shift(level - 1, t_s));
        let l = self.params.log_time_factor(t_s);
        let sr = self.noise.sigma_read;
        let p = self.expect_over_nu(level, |nu| {
            let shift = nu * l;
            let mut miss_for_eps = |eps: f64| {
                let up = t_up.map_or(0.0, |t| self.write_tail_above(level, t - shift - eps));
                let dn = t_dn.map_or(0.0, |t| self.write_tail_below(level, t - shift - eps));
                (up + dn).clamp(0.0, 1.0)
            };
            if sr == 0.0 {
                miss_for_eps(0.0)
            } else {
                self.gh_read.expect_normal(0.0, sr, &mut miss_for_eps)
            }
        });
        p.clamp(0.0, 1.0)
    }

    /// Transient-only misread probability: total minus persistent
    /// components, floored at zero.
    pub fn p_transient(&self, level: usize, t_s: f64) -> f64 {
        (self.p_misread(level, t_s) - self.p_up_exact(level, t_s) - self.p_down(level, t_s))
            .max(0.0)
    }

    /// Fast transient misread probability via the precomputed LUT
    /// (linear interpolation on the log-age grid).
    pub fn p_transient_fast(&self, level: usize, t_s: f64) -> f64 {
        let lut = &self.lut_tr[level];
        let l = self.params.log_time_factor(t_s);
        if l <= 0.0 {
            return lut[0];
        }
        let pos = (l / LUT_DECADES) * (TR_LUT_POINTS - 1) as f64;
        if pos >= (TR_LUT_POINTS - 1) as f64 {
            return lut[TR_LUT_POINTS - 1];
        }
        let i = pos as usize;
        let frac = pos - i as f64;
        lut[i] + (lut[i + 1] - lut[i]) * frac
    }

    /// Raw bit-error rate of a single read at age `t_s` for data whose
    /// cells are distributed over levels per `occupancy` (must sum to ≈1).
    /// Each misread is costed at one bit (adjacent-level transitions
    /// dominate and Gray coding makes them single-bit).
    pub fn raw_ber(&self, occupancy: &[f64], t_s: f64) -> f64 {
        assert_eq!(
            occupancy.len(),
            self.stack.num_levels(),
            "occupancy arity mismatch"
        );
        let bits = self.stack.bits_per_cell() as f64;
        occupancy
            .iter()
            .enumerate()
            .map(|(lv, &w)| w * self.p_misread(lv, t_s))
            .sum::<f64>()
            / bits
    }
}

/// Shared implementation of the age-compensated boundary shift, usable by
/// both the analytic model and the cell-exact Monte-Carlo reader.
pub(crate) fn raw_boundary_shift(
    stack: &LevelStack,
    noise: &NoiseParams,
    params: &DriftParams,
    thresholds: &Thresholds,
    sensing: SensingMode,
    level: usize,
    t_s: f64,
) -> f64 {
    if sensing == SensingMode::Fixed {
        return 0.0;
    }
    let Some(t_up) = thresholds.upper(level) else {
        return 0.0;
    };
    let l = params.log_time_factor(t_s);
    let want = stack.level(level).nu_median * params.nu_scale * l;
    let upper = stack.level(level + 1);
    let upper_center = upper.log_r + upper.nu_median * params.nu_scale * l;
    let ceiling = (upper_center - 3.0 * noise.sigma_write - t_up).max(0.0);
    want.clamp(0.0, ceiling)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::threshold::ThresholdPlacement;

    fn model() -> DriftModel {
        let stack = LevelStack::standard_mlc2();
        let noise = NoiseParams::default();
        let th = ThresholdPlacement::Midpoint.build(&stack, &noise, 1.0);
        DriftModel::new(stack, noise, th, DriftParams::default())
    }

    #[test]
    fn top_level_never_up_crosses() {
        let m = model();
        assert_eq!(m.p_up(3, 1e9), 0.0);
        assert_eq!(m.p_up_exact(3, 1e9), 0.0);
    }

    #[test]
    fn p_up_monotone_in_time() {
        let m = model();
        for lv in 0..4 {
            let mut prev = 0.0;
            for i in 0..60 {
                let t = 10f64.powf(-1.0 + 0.2 * i as f64);
                let p = m.p_up(lv, t);
                assert!(p >= prev - 1e-15, "level {lv} t {t}: {p} < {prev}");
                assert!((0.0..=1.0).contains(&p));
                prev = p;
            }
        }
    }

    #[test]
    fn lut_matches_exact() {
        let m = model();
        for lv in 0..4 {
            for t in [1.0, 60.0, 3600.0, 86_400.0, 2.6e6] {
                let fast = m.p_up(lv, t);
                let exact = m.p_up_exact(lv, t);
                let tol = 1e-9 + exact * 5e-3;
                assert!(
                    (fast - exact).abs() <= tol,
                    "level {lv} t {t}: lut {fast} vs exact {exact}"
                );
            }
        }
    }

    /// Interpolation error bound of the persistent-up LUT, checked at
    /// every *grid midpoint* — the worst case for linear interpolation —
    /// across the full 12-decade age range and every level.
    ///
    /// Documented bound: `|lut − exact| ≤ 1e-6 + 1e-2·exact`. With 768
    /// log-spaced points the grid step is h ≈ 0.0156 decades and the
    /// interpolation error scales as `(h²/8)·max|d²p/dl²|`; the relative
    /// term dominates on the steep rise of the error CDF, the absolute
    /// term in the near-zero tail. The bound also absorbs the monotone
    /// clamp applied against quadrature wiggle at construction.
    #[test]
    fn p_up_lut_error_bound_at_offgrid_midpoints() {
        let m = model();
        let step = LUT_DECADES / (LUT_POINTS - 1) as f64;
        for lv in 0..4 {
            for i in 0..LUT_POINTS - 1 {
                let l = (i as f64 + 0.5) * step;
                let t = m.params().t0_s * 10f64.powf(l);
                let fast = m.p_up(lv, t);
                let exact = m.p_up_exact(lv, t);
                assert!(
                    (fast - exact).abs() <= 1e-6 + 1e-2 * exact,
                    "level {lv} l={l:.4} (t={t:.3e}): lut {fast} vs exact {exact}"
                );
            }
        }
    }

    /// Same worst-case midpoint sweep for the coarser 128-point transient
    /// LUT. Two effects loosen this bound relative to `p_up`'s: the grid
    /// is 6× coarser, and `p_transient` is floored at zero
    /// (`max(0, misread − up − down)`), which puts a non-differentiable
    /// kink wherever the difference changes sign — linear interpolation
    /// across such a kink leaves an O(h·|slope|) absolute residue, ~3e-5
    /// here. Documented bound: `|lut − exact| ≤ 5e-5 + 8e-2·exact`.
    #[test]
    fn transient_lut_error_bound_at_offgrid_midpoints() {
        let m = model();
        let step = LUT_DECADES / (TR_LUT_POINTS - 1) as f64;
        for lv in 0..4 {
            for i in 0..TR_LUT_POINTS - 1 {
                let l = (i as f64 + 0.5) * step;
                let t = m.params().t0_s * 10f64.powf(l);
                let fast = m.p_transient_fast(lv, t);
                let exact = m.p_transient(lv, t);
                assert!(
                    (fast - exact).abs() <= 5e-5 + 8e-2 * exact,
                    "level {lv} l={l:.4} (t={t:.3e}): lut {fast} vs exact {exact}"
                );
            }
        }
    }

    /// Out-of-range ages clamp to the LUT endpoints: below t₀ both LUTs
    /// return the age-t₀ value exactly; beyond the 12-decade grid they
    /// saturate at the last entry.
    #[test]
    fn lut_clamps_outside_grid_range() {
        let m = model();
        for lv in 0..4 {
            assert_eq!(m.p_up(lv, 1e-6), m.p_up(lv, m.params().t0_s));
            assert_eq!(m.p_up(lv, 1e15), m.p_up(lv, 1e13));
            assert_eq!(
                m.p_transient_fast(lv, 1e-6),
                m.p_transient_fast(lv, m.params().t0_s)
            );
            assert_eq!(m.p_transient_fast(lv, 1e15), m.p_transient_fast(lv, 1e13));
        }
    }

    #[test]
    fn drift_cdf_monotone_and_consistent_with_p_up() {
        let m = model();
        for lv in 0..4 {
            for t in [1.0, 3600.0, 86_400.0] {
                // Monotone nondecreasing in x, with full range.
                let mut prev = 0.0;
                for i in 0..=80 {
                    let x = 1.0 + 0.1 * i as f64;
                    let c = m.drift_cdf(lv, t, x);
                    assert!((0.0..=1.0).contains(&c));
                    assert!(c + 1e-12 >= prev, "level {lv} t {t} x {x}");
                    prev = c;
                }
                // Complement at the upper boundary equals p_up_exact
                // (fixed sensing: no boundary shift).
                if let Some(b) = m.thresholds().upper(lv) {
                    let tail = 1.0 - m.drift_cdf(lv, t, b);
                    let p_up = m.p_up_exact(lv, t);
                    assert!(
                        (tail - p_up).abs() < 1e-9 + 1e-6 * p_up,
                        "level {lv} t {t}: tail {tail:e} vs p_up {p_up:e}"
                    );
                }
            }
        }
    }

    #[test]
    fn amorphous_levels_drift_worse() {
        let m = model();
        let day = 86_400.0;
        assert!(m.p_up(2, day) > m.p_up(1, day));
        assert!(m.p_up(1, day) > m.p_up(0, day));
    }

    #[test]
    fn fresh_cells_barely_misread() {
        let m = model();
        // 0.5 decades to the boundary is 5σ_w: tiny at age ~t0.
        for lv in 0..4 {
            assert!(m.p_misread(lv, 1.0) < 1e-4, "level {lv}");
        }
    }

    #[test]
    fn day_old_midlevel_errors_are_substantial() {
        let m = model();
        // Level 2 (ν̄=0.06) drifts 0.06·log10(86400) ≈ 0.30 decades by a day:
        // a 2σ encroachment on the 0.5-decade margin.
        let p = m.p_up(2, 86_400.0);
        assert!(p > 1e-3 && p < 0.5, "p_up(2, day) = {p}");
    }

    #[test]
    fn p_down_negligible_with_midpoints_and_shrinks() {
        let m = model();
        for lv in 0..4 {
            let early = m.p_down(lv, 1.0);
            let late = m.p_down(lv, 1e6);
            assert!(early < 1e-4, "level {lv} early down {early}");
            assert!(late <= early + 1e-15);
        }
    }

    #[test]
    fn transient_lut_matches_exact() {
        let m = model();
        for lv in 0..4 {
            for t in [1.0, 3600.0, 86_400.0] {
                let fast = m.p_transient_fast(lv, t);
                let exact = m.p_transient(lv, t);
                assert!(
                    (fast - exact).abs() <= 1e-9 + exact * 0.05,
                    "level {lv} t {t}: {fast} vs {exact}"
                );
            }
        }
    }

    #[test]
    fn transient_component_nonnegative_and_small() {
        let m = model();
        for lv in 0..4 {
            for t in [1.0, 1e3, 1e6] {
                let tr = m.p_transient(lv, t);
                assert!(tr >= 0.0);
                assert!(tr <= m.p_misread(lv, t) + 1e-12);
            }
        }
    }

    #[test]
    fn drift_scale_zero_freezes_errors() {
        let stack = LevelStack::standard_mlc2();
        let noise = NoiseParams::default();
        let th = ThresholdPlacement::Midpoint.build(&stack, &noise, 1.0);
        let m = DriftModel::new(stack, noise, th, DriftParams::default().with_scale(0.0));
        for lv in 0..4 {
            let p1 = m.p_up(lv, 1.0);
            let p2 = m.p_up(lv, 1e9);
            assert!((p1 - p2).abs() < 1e-15, "level {lv} drifted with scale 0");
        }
    }

    #[test]
    fn temperature_scaling() {
        let room = DriftParams::default().with_temperature_c(25.0);
        assert!((room.nu_scale - 1.0).abs() < 1e-12);
        let hot = DriftParams::default().with_temperature_c(85.0);
        assert!((hot.nu_scale - 2.0).abs() < 1e-12);
        let cold = DriftParams::default().with_temperature_c(-25.0);
        assert!(cold.nu_scale < 1.0);
    }

    #[test]
    #[should_panic(expected = "outside the calibrated")]
    fn temperature_range_checked() {
        DriftParams::default().with_temperature_c(200.0);
    }

    #[test]
    fn raw_ber_uniform_occupancy() {
        let m = model();
        let occ = [0.25; 4];
        let early = m.raw_ber(&occ, 1.0);
        let late = m.raw_ber(&occ, 86_400.0);
        assert!(
            late > early * 10.0,
            "BER should grow strongly: {early} -> {late}"
        );
    }

    fn model_with_sensing(sensing: SensingMode) -> DriftModel {
        let stack = LevelStack::standard_mlc2();
        let noise = NoiseParams::default();
        let th = ThresholdPlacement::Midpoint.build(&stack, &noise, 1.0);
        DriftModel::with_sensing(stack, noise, th, DriftParams::default(), sensing)
    }

    #[test]
    fn age_compensation_slashes_drift_errors() {
        let fixed = model_with_sensing(SensingMode::Fixed);
        let comp = model_with_sensing(SensingMode::AgeCompensated);
        for t in [3600.0, 86_400.0] {
            let pf = fixed.p_up_exact(2, t);
            let pc = comp.p_up_exact(2, t);
            assert!(
                pc < pf / 5.0,
                "t={t}: compensated {pc} should be well below fixed {pf}"
            );
        }
    }

    #[test]
    fn age_compensation_does_not_create_down_errors() {
        let comp = model_with_sensing(SensingMode::AgeCompensated);
        for lv in 0..4 {
            for t in [1.0, 3600.0, 86_400.0, 604_800.0] {
                assert!(
                    comp.p_down(lv, t) < 1e-3,
                    "level {lv} t {t}: down misreads {}",
                    comp.p_down(lv, t)
                );
            }
        }
    }

    #[test]
    fn compensated_shift_is_clamped_and_zero_when_fixed() {
        let fixed = model_with_sensing(SensingMode::Fixed);
        let comp = model_with_sensing(SensingMode::AgeCompensated);
        assert_eq!(fixed.boundary_shift(2, 1e6), 0.0);
        let s = comp.boundary_shift(2, 1e9);
        assert!(s > 0.0);
        // Ceiling: upper level center (drifted) minus 3 sigma_w minus bound.
        let l = (1e9f64).log10();
        let ceiling = (6.0 + 0.10 * l) - 0.3 - 5.5;
        assert!(s <= ceiling + 1e-12, "shift {s} above ceiling {ceiling}");
    }

    #[test]
    fn compensated_lut_still_monotone() {
        let comp = model_with_sensing(SensingMode::AgeCompensated);
        for lv in 0..4 {
            let mut prev = 0.0;
            for i in 0..50 {
                let t = 10f64.powf(0.2 * i as f64);
                let p = comp.p_up(lv, t);
                assert!(p >= prev - 1e-15, "level {lv} t {t}");
                prev = p;
            }
        }
    }

    #[test]
    fn drift_aware_thresholds_cut_day_old_errors() {
        let stack = LevelStack::standard_mlc2();
        let noise = NoiseParams::default();
        let mid = ThresholdPlacement::Midpoint.build(&stack, &noise, 1.0);
        let da = ThresholdPlacement::drift_aware_default().build(&stack, &noise, 1.0);
        let m_mid = DriftModel::new(stack.clone(), noise, mid, DriftParams::default());
        let m_da = DriftModel::new(stack, noise, da, DriftParams::default());
        let day = 86_400.0;
        // Level 2's boundary only gains 0.1 decades (guard-band clamp):
        // ~3.5x fewer errors. Level 1's gains the full drift shift: ~10x.
        assert!(m_da.p_up(2, day) < m_mid.p_up(2, day) / 2.0);
        assert!(m_da.p_up(1, day) < m_mid.p_up(1, day) / 5.0);
    }
}
