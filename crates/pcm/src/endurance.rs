//! Write-endurance (hard-error) model.
//!
//! PCM cells wear out: after some number of SET/RESET cycles a cell fails
//! permanently (stuck-at). Cell lifetimes are lognormally distributed around
//! a process median. Because scrubbing *writes* lines back, scrub policy
//! directly feeds this model — the soft-vs-hard error tradeoff the paper's
//! adaptive mechanisms navigate.

use crate::math::norm_cdf;

/// Lognormal cell-endurance distribution.
///
/// `F(w) = Φ((ln w − ln median)/σ)` gives the probability that a given cell
/// has failed after `w` writes — monotone nondecreasing in `w`, so the same
/// incremental-binomial machinery that tracks drift failures tracks wear
/// failures.
///
/// # Examples
///
/// ```
/// use pcm_model::EnduranceSpec;
/// let e = EnduranceSpec::default();
/// assert!(e.fail_cdf(1_000) < 1e-6);
/// assert!((e.fail_cdf(e.median_writes as u64) - 0.5).abs() < 0.01);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnduranceSpec {
    /// Median writes-to-failure of a cell.
    pub median_writes: f64,
    /// Lognormal shape parameter (spread of `ln` lifetime).
    pub sigma_ln: f64,
}

impl EnduranceSpec {
    /// Creates a spec.
    ///
    /// # Panics
    ///
    /// Panics if `median_writes` or `sigma_ln` is not positive.
    pub fn new(median_writes: f64, sigma_ln: f64) -> Self {
        assert!(median_writes > 0.0, "median endurance must be positive");
        assert!(sigma_ln > 0.0, "endurance sigma must be positive");
        Self {
            median_writes,
            sigma_ln,
        }
    }

    /// The paper-era nominal: 10⁸ writes median, σ_ln = 0.25.
    pub fn nominal() -> Self {
        Self::new(1e8, 0.25)
    }

    /// Accelerated endurance for feasible simulation horizons (10⁶ median).
    /// The soft-vs-hard tradeoff shape is invariant to this scaling; see
    /// DESIGN.md "Substitutions".
    pub fn accelerated() -> Self {
        Self::new(1e6, 0.25)
    }

    /// Probability a cell has failed by `writes` program cycles.
    pub fn fail_cdf(&self, writes: u64) -> f64 {
        if writes == 0 {
            return 0.0;
        }
        let z = ((writes as f64).ln() - self.median_writes.ln()) / self.sigma_ln;
        norm_cdf(z)
    }
}

impl Default for EnduranceSpec {
    fn default() -> Self {
        Self::accelerated()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_is_monotone() {
        let e = EnduranceSpec::default();
        let mut prev = 0.0;
        for k in 0..40 {
            let w = 10u64.pow(1 + k / 6) + (k as u64 % 6) * 10u64.pow(k / 6);
            let p = e.fail_cdf(w);
            assert!(p >= prev, "w={w}");
            prev = p;
        }
    }

    #[test]
    fn median_is_half() {
        let e = EnduranceSpec::new(5e5, 0.3);
        assert!((e.fail_cdf(500_000) - 0.5).abs() < 1e-3);
    }

    #[test]
    fn zero_writes_never_fail() {
        assert_eq!(EnduranceSpec::default().fail_cdf(0), 0.0);
    }

    #[test]
    fn nominal_vs_accelerated() {
        assert!(
            EnduranceSpec::nominal().median_writes > EnduranceSpec::accelerated().median_writes
        );
    }

    #[test]
    #[should_panic(expected = "median endurance must be positive")]
    fn rejects_zero_median() {
        EnduranceSpec::new(0.0, 0.2);
    }
}
