//! Programming and sensing noise parameters.

/// Gaussian noise parameters of the program/read path, in `log₁₀(Ω)` decades.
///
/// * `sigma_write` — residual spread of the programmed resistance after the
///   iterative program-and-verify loop converges.
/// * `sigma_read` — sense-amplifier noise added on every read; transient
///   (a re-read redraws it), unlike drift which is persistent.
/// * `verify_half_band` — if set, program-and-verify retries until the cell
///   lands within `±band` of the target, truncating the write distribution.
///
/// # Examples
///
/// ```
/// use pcm_model::NoiseParams;
/// let n = NoiseParams::default();
/// assert!(n.sigma_write > n.sigma_read);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseParams {
    /// Programmed-resistance spread (decades), post program-and-verify.
    pub sigma_write: f64,
    /// Per-read sensing noise (decades).
    pub sigma_read: f64,
    /// Optional program-and-verify acceptance half-band (decades).
    pub verify_half_band: Option<f64>,
}

impl NoiseParams {
    /// Literature-representative defaults: σ_w = 0.10 dec, σ_r = 0.03 dec,
    /// no explicit verify band (σ_w already models the post-verify residue).
    pub fn new(sigma_write: f64, sigma_read: f64) -> Self {
        assert!(
            sigma_write > 0.0 && sigma_write.is_finite(),
            "sigma_write must be positive"
        );
        assert!(
            sigma_read >= 0.0 && sigma_read.is_finite(),
            "sigma_read must be nonnegative"
        );
        Self {
            sigma_write,
            sigma_read,
            verify_half_band: None,
        }
    }

    /// Adds a program-and-verify truncation band.
    ///
    /// # Panics
    ///
    /// Panics if `half_band` is not positive or is too narrow relative to
    /// `sigma_write` for rejection sampling (< 0.05·σ_w).
    pub fn with_verify_band(mut self, half_band: f64) -> Self {
        assert!(half_band > 0.0, "verify band must be positive");
        assert!(
            half_band >= 0.05 * self.sigma_write,
            "verify band too narrow relative to sigma_write"
        );
        self.verify_half_band = Some(half_band);
        self
    }

    /// Combined one-shot read spread `√(σ_w² + σ_r²)`.
    pub fn sigma_effective(&self) -> f64 {
        (self.sigma_write * self.sigma_write + self.sigma_read * self.sigma_read).sqrt()
    }
}

impl Default for NoiseParams {
    fn default() -> Self {
        Self::new(0.10, 0.03)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_sane() {
        let n = NoiseParams::default();
        assert_eq!(n.sigma_write, 0.10);
        assert_eq!(n.sigma_read, 0.03);
        assert!(n.verify_half_band.is_none());
        assert!(n.sigma_effective() > n.sigma_write);
    }

    #[test]
    fn verify_band_builder() {
        let n = NoiseParams::default().with_verify_band(0.25);
        assert_eq!(n.verify_half_band, Some(0.25));
    }

    #[test]
    #[should_panic(expected = "sigma_write must be positive")]
    fn rejects_zero_write_noise() {
        NoiseParams::new(0.0, 0.01);
    }

    #[test]
    #[should_panic(expected = "verify band must be positive")]
    fn rejects_negative_band() {
        NoiseParams::default().with_verify_band(-1.0);
    }
}
