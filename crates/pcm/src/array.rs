//! Cell-exact Monte-Carlo arrays for validating the analytic model.

use rand::Rng;
use scrub_checkpoint::{CheckpointError, Reader, Writer};

use crate::cell::Cell;
use crate::device::DeviceConfig;
use crate::threshold::Thresholds;

/// A small array of cell-exact PCM cells.
///
/// This is the ground-truth model: every cell carries its own programming
/// noise, drift exponent, and wear. Experiment E1 compares its measured
/// misread rates against [`crate::DriftModel`]'s analytic predictions.
///
/// # Examples
///
/// ```
/// use pcm_model::{CellArray, DeviceConfig};
/// use rand::SeedableRng;
/// let dev = DeviceConfig::default();
/// let mut rng = rand::rngs::StdRng::seed_from_u64(5);
/// let mut arr = CellArray::new(dev, 1024);
/// arr.program_uniform(0.0, &mut rng);
/// let report = arr.read_all(1.0, &mut rng);
/// assert_eq!(report.cells_read, 1024);
/// ```
#[derive(Debug, Clone)]
pub struct CellArray {
    dev: DeviceConfig,
    thresholds: Thresholds,
    cells: Vec<Cell>,
}

/// Result of reading an entire array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ArrayReadReport {
    /// Cells sensed.
    pub cells_read: usize,
    /// Cells whose sensed level differed from the programmed level.
    pub cell_misreads: usize,
    /// Total data-bit errors implied by the misreads (Gray-coded).
    pub bit_errors: u64,
    /// Cells that are permanently stuck.
    pub stuck_cells: usize,
}

impl CellArray {
    /// Allocates `n` fresh cells of the given device.
    pub fn new(dev: DeviceConfig, n: usize) -> Self {
        let thresholds = dev.thresholds();
        Self {
            dev,
            thresholds,
            cells: vec![Cell::new(); n],
        }
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the array has no cells.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// The device configuration in force.
    pub fn device(&self) -> &DeviceConfig {
        &self.dev
    }

    /// Serializes every cell's drift state for checkpointing. The device
    /// config and thresholds are configuration, rebuilt by the resuming
    /// run.
    pub fn save_state(&self, w: &mut Writer) {
        w.put_u32(self.cells.len() as u32);
        for c in &self.cells {
            c.save_state(w);
        }
    }

    /// Restores state captured by [`CellArray::save_state`] onto an array
    /// of the same size and device.
    pub fn restore_state(&mut self, r: &mut Reader<'_>) -> Result<(), CheckpointError> {
        let n = r.u32()? as usize;
        if n != self.cells.len() {
            return Err(CheckpointError::Malformed(format!(
                "cell count mismatch: snapshot {n}, array {}",
                self.cells.len()
            )));
        }
        let num_levels = self.dev.stack().num_levels();
        let mut cells = Vec::with_capacity(n);
        for _ in 0..n {
            cells.push(Cell::restore_state(r, num_levels)?);
        }
        self.cells = cells;
        Ok(())
    }

    /// Programs every cell to `level` at time `now_s`.
    pub fn program_all<R: Rng + ?Sized>(&mut self, level: usize, now_s: f64, rng: &mut R) {
        for c in &mut self.cells {
            c.write(level, now_s, &self.dev, rng);
        }
    }

    /// Programs every cell to an independently uniform random level
    /// (the random-data assumption used by the analytic model).
    pub fn program_uniform<R: Rng + ?Sized>(&mut self, now_s: f64, rng: &mut R) {
        let n_levels = self.dev.stack().num_levels();
        for c in &mut self.cells {
            let lv = rng.gen_range(0..n_levels);
            c.write(lv, now_s, &self.dev, rng);
        }
    }

    /// Senses every cell at `now_s` and tallies misreads against the
    /// programmed levels.
    pub fn read_all<R: Rng + ?Sized>(&self, now_s: f64, rng: &mut R) -> ArrayReadReport {
        let stack = self.dev.stack();
        let mut report = ArrayReadReport {
            cells_read: self.cells.len(),
            ..ArrayReadReport::default()
        };
        for c in &self.cells {
            let observed = c.read(now_s, &self.dev, &self.thresholds, rng);
            let actual = c.programmed_level();
            if observed != actual {
                report.cell_misreads += 1;
                report.bit_errors += u64::from(stack.bit_errors(actual, observed));
            }
            if c.stuck_at().is_some() {
                report.stuck_cells += 1;
            }
        }
        report
    }

    /// Measured misread fraction for cells programmed to `level` when read
    /// at `now_s` (Monte-Carlo estimate of `DriftModel::p_misread`).
    pub fn misread_fraction_for_level<R: Rng + ?Sized>(
        &self,
        level: usize,
        now_s: f64,
        rng: &mut R,
    ) -> f64 {
        let mut total = 0usize;
        let mut miss = 0usize;
        for c in &self.cells {
            if c.programmed_level() != level {
                continue;
            }
            total += 1;
            if c.read(now_s, &self.dev, &self.thresholds, rng) != level {
                miss += 1;
            }
        }
        if total == 0 {
            0.0
        } else {
            miss as f64 / total as f64
        }
    }

    /// Access to the raw cells (for tests and custom experiments).
    pub fn cells(&self) -> &[Cell] {
        &self.cells
    }

    /// Mutable access to the raw cells.
    pub fn cells_mut(&mut self) -> &mut [Cell] {
        &mut self.cells
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn monte_carlo_matches_analytic_model() {
        // The keystone validation: MC misread rates track DriftModel.
        let dev = DeviceConfig::default();
        let model = dev.drift_model();
        let mut rng = StdRng::seed_from_u64(77);
        let n = 40_000;
        for (level, t) in [(2usize, 3600.0f64), (1, 86_400.0), (2, 86_400.0)] {
            let mut arr = CellArray::new(dev.clone(), n);
            arr.program_all(level, 0.0, &mut rng);
            let mc = arr.misread_fraction_for_level(level, t, &mut rng);
            let analytic = model.p_misread(level, t);
            // Binomial noise: tolerate 5 sigma plus small model residue.
            let sd = (analytic * (1.0 - analytic) / n as f64).sqrt();
            let tol = 5.0 * sd + 0.1 * analytic + 2e-4;
            assert!(
                (mc - analytic).abs() < tol,
                "level {level} t {t}: MC {mc} vs analytic {analytic} (tol {tol})"
            );
        }
    }

    #[test]
    fn uniform_programming_covers_levels() {
        let dev = DeviceConfig::default();
        let mut rng = StdRng::seed_from_u64(78);
        let mut arr = CellArray::new(dev, 4000);
        arr.program_uniform(0.0, &mut rng);
        let mut counts = [0usize; 4];
        for c in arr.cells() {
            counts[c.programmed_level()] += 1;
        }
        for (lv, &k) in counts.iter().enumerate() {
            assert!(k > 800, "level {lv} only {k}/4000");
        }
    }

    #[test]
    fn errors_grow_with_age() {
        let dev = DeviceConfig::default();
        let mut rng = StdRng::seed_from_u64(79);
        let mut arr = CellArray::new(dev, 20_000);
        arr.program_uniform(0.0, &mut rng);
        let early = arr.read_all(1.0, &mut rng);
        let late = arr.read_all(604_800.0, &mut rng); // one week
        assert!(
            late.cell_misreads > early.cell_misreads * 5,
            "early {} late {}",
            early.cell_misreads,
            late.cell_misreads
        );
    }

    #[test]
    fn stuck_cells_accounting_matches_cell_state() {
        // Hammer a low-endurance array until a meaningful fraction of
        // cells wear out, then check the report's stuck_cells tally
        // against the ground truth visible through `Cell::stuck_at`.
        let dev = DeviceConfig::builder()
            .endurance(crate::EnduranceSpec::new(40.0, 0.3))
            .build();
        let mut rng = StdRng::seed_from_u64(81);
        let n = 2000;
        let mut arr = CellArray::new(dev, n);
        let mut prev_stuck = 0usize;
        for round in 0..120u32 {
            arr.program_uniform(round as f64, &mut rng);
            let report = arr.read_all(round as f64 + 0.5, &mut rng);
            let truth = arr
                .cells()
                .iter()
                .filter(|c| c.stuck_at().is_some())
                .count();
            assert_eq!(report.stuck_cells, truth, "round {round}");
            // Stuck cells never recover: the tally is monotone.
            assert!(report.stuck_cells >= prev_stuck, "round {round}");
            prev_stuck = report.stuck_cells;
        }
        // Median endurance 40 with 120 writes: nearly everything is dead.
        assert!(
            prev_stuck > n * 9 / 10,
            "only {prev_stuck}/{n} stuck after 120 writes at median-40 endurance"
        );
    }

    #[test]
    fn extreme_endurance_kills_everything_immediately() {
        // median_writes near 1 with a tight sigma: the second write already
        // exceeds almost every cell's sampled limit, and the report must
        // count every such cell exactly once (no double counting).
        let dev = DeviceConfig::builder()
            .endurance(crate::EnduranceSpec::new(1.01, 0.01))
            .build();
        let mut rng = StdRng::seed_from_u64(82);
        let n = 500;
        let mut arr = CellArray::new(dev, n);
        arr.program_all(2, 0.0, &mut rng);
        arr.program_all(1, 1.0, &mut rng);
        arr.program_all(3, 2.0, &mut rng);
        let report = arr.read_all(2.5, &mut rng);
        assert_eq!(report.cells_read, n);
        assert!(
            report.stuck_cells > n * 9 / 10,
            "only {}/{n} stuck under near-unit endurance",
            report.stuck_cells
        );
        // A dead cell froze at its level of death and ignores later writes,
        // so its recorded programmed level must equal its stuck level and
        // its wear must still count every attempted write.
        for c in arr.cells() {
            if let Some(lv) = c.stuck_at() {
                assert_eq!(lv, c.programmed_level());
            }
            assert_eq!(c.wear(), 3);
        }
    }

    #[test]
    fn checkpoint_round_trip_preserves_drift_state() {
        let mut rng = StdRng::seed_from_u64(81);
        let mut arr = CellArray::new(DeviceConfig::default(), 64);
        arr.program_uniform(5.0, &mut rng);
        let mut w = Writer::new();
        arr.save_state(&mut w);
        let bytes = w.into_bytes();

        let mut restored = CellArray::new(DeviceConfig::default(), 64);
        let mut r = Reader::new(&bytes);
        restored.restore_state(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(arr.cells(), restored.cells());

        // Re-snapshot is byte-identical.
        let mut w2 = Writer::new();
        restored.save_state(&mut w2);
        assert_eq!(bytes, w2.into_bytes());

        // Size mismatch is a typed error, not a panic.
        let mut wrong = CellArray::new(DeviceConfig::default(), 32);
        assert!(wrong.restore_state(&mut Reader::new(&bytes)).is_err());
    }

    #[test]
    fn empty_array() {
        let arr = CellArray::new(DeviceConfig::default(), 0);
        assert!(arr.is_empty());
        let mut rng = StdRng::seed_from_u64(80);
        let r = arr.read_all(10.0, &mut rng);
        assert_eq!(r.cells_read, 0);
        assert_eq!(r.cell_misreads, 0);
    }
}
