//! Multi-level cell geometry: resistance levels, bit mapping, and the
//! Gray-code guarantee that adjacent-level misreads corrupt exactly one bit.

/// One programmable resistance level of an MLC cell.
///
/// Resistances are carried in `log₁₀(Ω)` ("decades") because programming
/// noise, sensing noise and drift are all (log-)additive in that domain.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LevelSpec {
    /// Target programmed resistance, `log₁₀(Ω)`.
    pub log_r: f64,
    /// Median drift exponent ν for cells programmed to this level.
    /// Crystalline (low-resistance) levels barely drift; amorphous levels
    /// drift hardest.
    pub nu_median: f64,
}

impl LevelSpec {
    /// Creates a level with the given target `log₁₀` resistance and median
    /// drift exponent.
    ///
    /// # Panics
    ///
    /// Panics if `log_r` is not finite or `nu_median` is negative.
    pub fn new(log_r: f64, nu_median: f64) -> Self {
        assert!(log_r.is_finite(), "level log_r must be finite");
        assert!(
            nu_median >= 0.0 && nu_median.is_finite(),
            "drift exponent median must be finite and >= 0"
        );
        Self { log_r, nu_median }
    }
}

/// The level stack of an MLC (or SLC) cell, lowest resistance first.
///
/// # Examples
///
/// ```
/// use pcm_model::LevelStack;
/// let stack = LevelStack::standard_mlc2();
/// assert_eq!(stack.num_levels(), 4);
/// assert_eq!(stack.bits_per_cell(), 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LevelStack {
    levels: Vec<LevelSpec>,
}

impl LevelStack {
    /// Builds a stack from explicit levels (must be ≥2, strictly increasing
    /// in resistance, and a power of two in count).
    ///
    /// # Panics
    ///
    /// Panics if fewer than two levels are given, the count is not a power
    /// of two, or resistances are not strictly increasing.
    pub fn new(levels: Vec<LevelSpec>) -> Self {
        assert!(levels.len() >= 2, "need at least two levels");
        assert!(
            levels.len().is_power_of_two(),
            "level count must be a power of two, got {}",
            levels.len()
        );
        for w in levels.windows(2) {
            assert!(
                w[0].log_r < w[1].log_r,
                "levels must be strictly increasing in resistance"
            );
        }
        Self { levels }
    }

    /// The standard 2-bit MLC stack used throughout the reproduction:
    /// levels at 10³..10⁶ Ω with literature drift exponents
    /// (ν̄ = 0.001, 0.02, 0.06, 0.10 from crystalline to amorphous).
    pub fn standard_mlc2() -> Self {
        Self::new(vec![
            LevelSpec::new(3.0, 0.001),
            LevelSpec::new(4.0, 0.02),
            LevelSpec::new(5.0, 0.06),
            LevelSpec::new(6.0, 0.10),
        ])
    }

    /// A single-level-cell stack (1 bit/cell): SET at 10³ Ω, RESET at 10⁶ Ω.
    /// The wide separation makes SLC effectively drift-immune, matching the
    /// paper's use of SLC as a drift-free refuge.
    pub fn standard_slc() -> Self {
        Self::new(vec![LevelSpec::new(3.0, 0.001), LevelSpec::new(6.0, 0.10)])
    }

    /// Number of levels.
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// Bits stored per cell (`log₂` of the level count).
    pub fn bits_per_cell(&self) -> u32 {
        self.levels.len().trailing_zeros()
    }

    /// The level specs, lowest resistance first.
    pub fn levels(&self) -> &[LevelSpec] {
        &self.levels
    }

    /// Spec for one level.
    ///
    /// # Panics
    ///
    /// Panics if `level` is out of range.
    pub fn level(&self, level: usize) -> LevelSpec {
        self.levels[level]
    }

    /// Gray codeword stored by a cell programmed to `level`, so that
    /// adjacent-level misreads corrupt exactly one bit.
    pub fn gray_code(&self, level: usize) -> u32 {
        assert!(level < self.levels.len(), "level {level} out of range");
        (level ^ (level >> 1)) as u32
    }

    /// Level that stores a given Gray codeword (inverse of
    /// [`LevelStack::gray_code`]).
    ///
    /// # Panics
    ///
    /// Panics if `code` is not a valid codeword for this stack.
    pub fn level_for_gray(&self, code: u32) -> usize {
        let mut level = code as usize;
        let mut shift = 1;
        while (level >> shift) != 0 {
            level ^= level >> shift;
            shift <<= 1;
        }
        assert!(level < self.levels.len(), "gray code {code} out of range");
        level
    }

    /// Number of data bits that differ when a cell written at `actual` is
    /// read back as `observed`.
    pub fn bit_errors(&self, actual: usize, observed: usize) -> u32 {
        (self.gray_code(actual) ^ self.gray_code(observed)).count_ones()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_mlc2_shape() {
        let s = LevelStack::standard_mlc2();
        assert_eq!(s.num_levels(), 4);
        assert_eq!(s.bits_per_cell(), 2);
        assert!(s.level(0).nu_median < s.level(3).nu_median);
    }

    #[test]
    fn slc_shape() {
        let s = LevelStack::standard_slc();
        assert_eq!(s.num_levels(), 2);
        assert_eq!(s.bits_per_cell(), 1);
    }

    #[test]
    fn gray_adjacent_levels_differ_by_one_bit() {
        let s = LevelStack::standard_mlc2();
        for l in 0..3 {
            assert_eq!(s.bit_errors(l, l + 1), 1, "levels {l}->{}", l + 1);
        }
    }

    #[test]
    fn gray_roundtrip() {
        let s = LevelStack::standard_mlc2();
        for l in 0..4 {
            assert_eq!(s.level_for_gray(s.gray_code(l)), l);
        }
    }

    #[test]
    fn gray_double_jump_costs_two_bits_at_most() {
        let s = LevelStack::standard_mlc2();
        assert!(s.bit_errors(0, 2) <= 2);
        assert_eq!(s.bit_errors(1, 3), 2); // 01 -> 10
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn rejects_unsorted_levels() {
        LevelStack::new(vec![LevelSpec::new(4.0, 0.1), LevelSpec::new(3.0, 0.1)]);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_three_levels() {
        LevelStack::new(vec![
            LevelSpec::new(3.0, 0.0),
            LevelSpec::new(4.0, 0.0),
            LevelSpec::new(5.0, 0.0),
        ]);
    }
}
