//! Monte-Carlo model of a single PCM cell.
//!
//! Used for ground-truth validation of the analytic [`crate::DriftModel`]
//! (experiment E1) and for the small cell-exact array simulations; the
//! million-line memory simulator uses the analytic model instead.

use rand::Rng;
use scrub_checkpoint::{CheckpointError, Reader, Writer};

use crate::device::DeviceConfig;
use crate::math::{sample_lognormal, sample_normal, sample_truncated_normal};
use crate::threshold::Thresholds;

/// One PCM cell with explicit programmed state, drift exponent, wear, and
/// (possibly) a permanent stuck-at failure.
///
/// # Examples
///
/// ```
/// use pcm_model::{Cell, DeviceConfig};
/// use rand::SeedableRng;
/// let dev = DeviceConfig::default();
/// let th = dev.thresholds();
/// let mut rng = rand::rngs::StdRng::seed_from_u64(3);
/// let mut cell = Cell::new();
/// cell.write(2, 0.0, &dev, &mut rng);
/// // Immediately after write the cell almost surely reads back correctly.
/// assert_eq!(cell.read(0.5, &dev, &th, &mut rng), 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Cell {
    level: usize,
    /// Programmed `log₁₀R` at write time.
    x0: f64,
    /// This cell's drift exponent for the current programmed state.
    nu: f64,
    /// Simulation time of the last write (seconds).
    written_at_s: f64,
    /// Lifetime program-cycle count.
    wear: u64,
    /// Sampled writes-to-failure for this cell.
    endurance_limit: u64,
    /// Permanent stuck-at level once the cell wears out.
    stuck_at: Option<usize>,
}

impl Cell {
    /// A fresh, unprogrammed cell (reads as level 0 until written). The
    /// endurance limit is sampled on first write.
    pub fn new() -> Self {
        Self {
            level: 0,
            x0: 0.0,
            nu: 0.0,
            written_at_s: 0.0,
            wear: 0,
            endurance_limit: u64::MAX,
            stuck_at: None,
        }
    }

    /// Programs the cell to `level` at simulation time `now_s`.
    ///
    /// Samples fresh programming noise and a fresh drift exponent (each
    /// SET/RESET re-randomizes the amorphous phase), increments wear, and —
    /// if the sampled endurance limit is exceeded — freezes the cell
    /// stuck-at its current level.
    ///
    /// # Panics
    ///
    /// Panics if `level` is out of range for the device's stack.
    pub fn write<R: Rng + ?Sized>(
        &mut self,
        level: usize,
        now_s: f64,
        dev: &DeviceConfig,
        rng: &mut R,
    ) {
        let stack = dev.stack();
        assert!(level < stack.num_levels(), "level {level} out of range");
        if self.wear == 0 {
            // First write: sample this cell's lifetime.
            let e = dev.endurance();
            let lt = sample_lognormal(rng, e.median_writes.ln(), e.sigma_ln);
            self.endurance_limit = lt.min(u64::MAX as f64 / 2.0) as u64;
        }
        self.wear += 1;
        if self.stuck_at.is_some() {
            return; // writes to a dead cell do not take
        }
        if self.wear > self.endurance_limit {
            self.stuck_at = Some(self.level);
            return;
        }
        let spec = stack.level(level);
        let noise = dev.noise();
        self.level = level;
        self.x0 = match noise.verify_half_band {
            Some(h) => sample_truncated_normal(rng, spec.log_r, noise.sigma_write, h),
            None => sample_normal(rng, spec.log_r, noise.sigma_write),
        };
        let nu_med = spec.nu_median * dev.drift().nu_scale;
        self.nu = if nu_med <= 0.0 {
            0.0
        } else if dev.drift().sigma_ln_nu == 0.0 {
            nu_med
        } else {
            sample_lognormal(rng, nu_med.ln(), dev.drift().sigma_ln_nu)
        };
        self.written_at_s = now_s;
    }

    /// Serializes the cell's complete drift state — programmed level,
    /// write-time `log₁₀R`, drift exponent, write epoch, wear, endurance
    /// draw, stuck-at freeze — for checkpointing.
    pub fn save_state(&self, w: &mut Writer) {
        w.put_u32(self.level as u32);
        w.put_f64(self.x0);
        w.put_f64(self.nu);
        w.put_f64(self.written_at_s);
        w.put_u64(self.wear);
        w.put_u64(self.endurance_limit);
        match self.stuck_at {
            Some(lv) => {
                w.put_u8(1);
                w.put_u32(lv as u32);
            }
            None => w.put_u8(0),
        }
    }

    /// Reconstructs a cell saved by [`Cell::save_state`]. `num_levels` is
    /// the device's level count, used to reject out-of-range levels.
    pub fn restore_state(r: &mut Reader<'_>, num_levels: usize) -> Result<Self, CheckpointError> {
        let level = r.u32()? as usize;
        let x0 = r.finite_f64("cell x0")?;
        let nu = r.finite_f64("cell nu")?;
        let written_at_s = r.time_f64("cell write epoch")?;
        let wear = r.u64()?;
        let endurance_limit = r.u64()?;
        let stuck_at = if r.bool()? {
            Some(r.u32()? as usize)
        } else {
            None
        };
        for (what, lv) in [("level", Some(level)), ("stuck-at level", stuck_at)] {
            if let Some(lv) = lv {
                if lv >= num_levels {
                    return Err(CheckpointError::Malformed(format!(
                        "cell {what} {lv} out of range ({num_levels} levels)"
                    )));
                }
            }
        }
        Ok(Self {
            level,
            x0,
            nu,
            written_at_s,
            wear,
            endurance_limit,
            stuck_at,
        })
    }

    /// Noiseless drifted `log₁₀R` at simulation time `now_s`.
    pub fn log_r_at(&self, now_s: f64, dev: &DeviceConfig) -> f64 {
        let age = (now_s - self.written_at_s).max(0.0);
        self.x0 + self.nu * dev.drift().log_time_factor(age)
    }

    /// Senses the cell at `now_s`: drifted resistance plus fresh read noise,
    /// classified against `thresholds`. Stuck cells return their frozen
    /// level.
    pub fn read<R: Rng + ?Sized>(
        &self,
        now_s: f64,
        dev: &DeviceConfig,
        thresholds: &Thresholds,
        rng: &mut R,
    ) -> usize {
        if let Some(lv) = self.stuck_at {
            return lv;
        }
        let sr = dev.noise().sigma_read;
        let eps = if sr > 0.0 {
            sample_normal(rng, 0.0, sr)
        } else {
            0.0
        };
        let y = self.log_r_at(now_s, dev) + eps;
        match dev.sensing() {
            crate::drift::SensingMode::Fixed => thresholds.classify(y),
            crate::drift::SensingMode::AgeCompensated => {
                let age = (now_s - self.written_at_s).max(0.0);
                let shifts: Vec<f64> = (0..dev.stack().num_levels() - 1)
                    .map(|lv| {
                        crate::drift::raw_boundary_shift(
                            dev.stack(),
                            dev.noise(),
                            dev.drift(),
                            thresholds,
                            dev.sensing(),
                            lv,
                            age,
                        )
                    })
                    .collect();
                thresholds.classify_shifted(y, &shifts)
            }
        }
    }

    /// The level this cell was last programmed to.
    pub fn programmed_level(&self) -> usize {
        self.level
    }

    /// Lifetime write count.
    pub fn wear(&self) -> u64 {
        self.wear
    }

    /// Whether the cell has permanently failed, and at which level it froze.
    pub fn stuck_at(&self) -> Option<usize> {
        self.stuck_at
    }

    /// Simulation time of the last successful write.
    pub fn written_at_s(&self) -> f64 {
        self.written_at_s
    }
}

impl Default for Cell {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn fresh_write_reads_back() {
        let dev = DeviceConfig::default();
        let th = dev.thresholds();
        let mut rng = StdRng::seed_from_u64(11);
        let mut misreads = 0;
        for lv in 0..4 {
            for _ in 0..500 {
                let mut c = Cell::new();
                c.write(lv, 100.0, &dev, &mut rng);
                if c.read(100.5, &dev, &th, &mut rng) != lv {
                    misreads += 1;
                }
            }
        }
        assert!(misreads <= 2, "{misreads} fresh misreads out of 2000");
    }

    #[test]
    fn drift_moves_resistance_up() {
        let dev = DeviceConfig::default();
        let mut rng = StdRng::seed_from_u64(12);
        let mut c = Cell::new();
        c.write(2, 0.0, &dev, &mut rng);
        let r_early = c.log_r_at(1.0, &dev);
        let r_late = c.log_r_at(1e6, &dev);
        assert!(r_late > r_early);
    }

    #[test]
    fn rewrite_resets_drift_clock() {
        let dev = DeviceConfig::default();
        let mut rng = StdRng::seed_from_u64(13);
        let mut c = Cell::new();
        c.write(2, 0.0, &dev, &mut rng);
        let drifted = c.log_r_at(1e7, &dev);
        c.write(2, 1e7, &dev, &mut rng);
        let fresh = c.log_r_at(1e7 + 1.0, &dev);
        // Fresh write sits near the target again (within 6σ_w),
        // while the drifted value had wandered far above.
        assert!((fresh - 5.0).abs() < 0.6);
        assert!(drifted > fresh);
    }

    #[test]
    fn age_compensated_sensing_fixes_drifted_reads() {
        use crate::drift::SensingMode;
        let fixed_dev = DeviceConfig::default();
        let comp_dev = DeviceConfig::builder()
            .sensing(SensingMode::AgeCompensated)
            .build();
        let th = fixed_dev.thresholds();
        let mut rng = StdRng::seed_from_u64(16);
        let day = 86_400.0;
        let (mut fixed_miss, mut comp_miss) = (0, 0);
        for _ in 0..4000 {
            let mut c = Cell::new();
            c.write(2, 0.0, &fixed_dev, &mut rng);
            if c.read(day, &fixed_dev, &th, &mut rng) != 2 {
                fixed_miss += 1;
            }
            // Same physical cell state, read through compensated sensing.
            if c.read(day, &comp_dev, &th, &mut rng) != 2 {
                comp_miss += 1;
            }
        }
        assert!(
            comp_miss * 3 < fixed_miss.max(3),
            "compensated {comp_miss} vs fixed {fixed_miss} misreads"
        );
    }

    #[test]
    fn wear_accumulates_and_kills() {
        let dev = DeviceConfig::builder()
            .endurance(crate::EnduranceSpec::new(50.0, 0.1))
            .build();
        let mut rng = StdRng::seed_from_u64(14);
        let mut c = Cell::new();
        for i in 0..200 {
            c.write(i % 4, i as f64, &dev, &mut rng);
        }
        assert_eq!(c.wear(), 200);
        assert!(c.stuck_at().is_some(), "cell should have worn out");
    }

    #[test]
    fn stuck_cell_ignores_writes() {
        let dev = DeviceConfig::builder()
            .endurance(crate::EnduranceSpec::new(10.0, 0.01))
            .build();
        let th = dev.thresholds();
        let mut rng = StdRng::seed_from_u64(15);
        let mut c = Cell::new();
        for i in 0..100 {
            c.write(1, i as f64, &dev, &mut rng);
        }
        let frozen = c.stuck_at().expect("worn out");
        c.write(3, 1000.0, &dev, &mut rng);
        assert_eq!(c.read(1001.0, &dev, &th, &mut rng), frozen);
    }
}
