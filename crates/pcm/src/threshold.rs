//! Read-threshold placement between resistance levels.
//!
//! Where the sense thresholds sit determines how much drift a level can
//! absorb before misreading. The paper-relevant options are the naive
//! midpoint placement and a drift-aware placement that skews each boundary
//! upward toward the expected drifted position of the level below it.

use crate::level::LevelStack;
use crate::noise::NoiseParams;

/// Strategy for placing the `num_levels − 1` sense thresholds.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum ThresholdPlacement {
    /// Each boundary at the midpoint (in decades) between adjacent level
    /// targets. What a drift-oblivious DRAM-heritage controller would do.
    #[default]
    Midpoint,
    /// Each boundary shifted up by the median drift the *lower* level will
    /// have accumulated at `reference_age_s` seconds, clamped so freshly
    /// written upper-level cells keep a `margin_sigmas`·σ_w guard band.
    DriftAware {
        /// Cell age (seconds since write) the placement is optimized for.
        reference_age_s: f64,
        /// Guard band, in multiples of σ_w, below the upper level's target.
        margin_sigmas: f64,
    },
    /// Fully custom boundaries (decades), strictly increasing, one fewer
    /// than the number of levels.
    Custom(Vec<f64>),
}

impl ThresholdPlacement {
    /// Drift-aware placement with the defaults used in the evaluation:
    /// optimized for a 1-hour scrub window with a 4σ guard band.
    pub fn drift_aware_default() -> Self {
        ThresholdPlacement::DriftAware {
            reference_age_s: 3600.0,
            margin_sigmas: 4.0,
        }
    }

    /// Materializes concrete thresholds for a level stack.
    ///
    /// # Panics
    ///
    /// Panics if a `Custom` placement has the wrong arity or is not strictly
    /// increasing, or if a `DriftAware` placement has a non-positive
    /// reference age.
    pub fn build(&self, stack: &LevelStack, noise: &NoiseParams, t0_s: f64) -> Thresholds {
        let levels = stack.levels();
        let bounds: Vec<f64> = match self {
            ThresholdPlacement::Midpoint => levels
                .windows(2)
                .map(|w| 0.5 * (w[0].log_r + w[1].log_r))
                .collect(),
            ThresholdPlacement::DriftAware {
                reference_age_s,
                margin_sigmas,
            } => {
                assert!(
                    *reference_age_s > 0.0,
                    "drift-aware reference age must be positive"
                );
                assert!(*margin_sigmas >= 0.0, "margin must be nonnegative");
                let l_ref = (reference_age_s / t0_s).max(1.0).log10();
                levels
                    .windows(2)
                    .map(|w| {
                        let mid = 0.5 * (w[0].log_r + w[1].log_r);
                        let ceiling = w[1].log_r - margin_sigmas * noise.sigma_write;
                        (mid + w[0].nu_median * l_ref).clamp(mid, ceiling.max(mid))
                    })
                    .collect()
            }
            ThresholdPlacement::Custom(bounds) => {
                assert_eq!(
                    bounds.len(),
                    levels.len() - 1,
                    "custom thresholds need exactly num_levels-1 boundaries"
                );
                for w in bounds.windows(2) {
                    assert!(w[0] < w[1], "custom thresholds must be strictly increasing");
                }
                bounds.clone()
            }
        };
        Thresholds { bounds }
    }
}

/// Concrete sense thresholds (decades), one between each adjacent level
/// pair.
///
/// # Examples
///
/// ```
/// use pcm_model::{LevelStack, NoiseParams, ThresholdPlacement};
/// let stack = LevelStack::standard_mlc2();
/// let th = ThresholdPlacement::Midpoint.build(&stack, &NoiseParams::default(), 1.0);
/// assert_eq!(th.classify(3.2), 0);
/// assert_eq!(th.classify(4.7), 2);
/// assert_eq!(th.classify(9.9), 3);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Thresholds {
    bounds: Vec<f64>,
}

impl Thresholds {
    /// The boundary values (decades), ascending.
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Upper sense boundary of `level`, or `None` for the top level.
    pub fn upper(&self, level: usize) -> Option<f64> {
        self.bounds.get(level).copied()
    }

    /// Lower sense boundary of `level`, or `None` for the bottom level.
    pub fn lower(&self, level: usize) -> Option<f64> {
        if level == 0 {
            None
        } else {
            self.bounds.get(level - 1).copied()
        }
    }

    /// Classifies an observed `log₁₀` resistance into a level index.
    pub fn classify(&self, log_r: f64) -> usize {
        self.bounds.partition_point(|&b| b <= log_r)
    }

    /// Classifies against per-boundary upward shifts (time-aware sensing):
    /// boundary `i` is compared at `bounds[i] + shifts[i]`.
    ///
    /// # Panics
    ///
    /// Panics if `shifts` has the wrong arity or the shifted boundaries
    /// are not nondecreasing.
    pub fn classify_shifted(&self, log_r: f64, shifts: &[f64]) -> usize {
        assert_eq!(shifts.len(), self.bounds.len(), "shift arity mismatch");
        let mut level = 0;
        let mut prev = f64::NEG_INFINITY;
        for (b, s) in self.bounds.iter().zip(shifts) {
            let edge = b + s;
            assert!(edge >= prev, "shifted boundaries out of order");
            prev = edge;
            if log_r >= edge {
                level += 1;
            }
        }
        level
    }

    /// Number of levels these thresholds separate.
    pub fn num_levels(&self) -> usize {
        self.bounds.len() + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mlc() -> LevelStack {
        LevelStack::standard_mlc2()
    }

    #[test]
    fn midpoint_bounds() {
        let th = ThresholdPlacement::Midpoint.build(&mlc(), &NoiseParams::default(), 1.0);
        assert_eq!(th.bounds(), &[3.5, 4.5, 5.5]);
        assert_eq!(th.num_levels(), 4);
    }

    #[test]
    fn classify_edges() {
        let th = ThresholdPlacement::Midpoint.build(&mlc(), &NoiseParams::default(), 1.0);
        assert_eq!(th.classify(3.5), 1); // boundary belongs to the level above
        assert_eq!(th.classify(3.499_999), 0);
        assert_eq!(th.classify(-10.0), 0);
        assert_eq!(th.classify(100.0), 3);
    }

    #[test]
    fn drift_aware_raises_bounds() {
        let mid = ThresholdPlacement::Midpoint.build(&mlc(), &NoiseParams::default(), 1.0);
        let da =
            ThresholdPlacement::drift_aware_default().build(&mlc(), &NoiseParams::default(), 1.0);
        for (m, d) in mid.bounds().iter().zip(da.bounds()) {
            assert!(d >= m, "drift-aware bound {d} below midpoint {m}");
        }
        // Level-1 boundary moves noticeably (nu_median = 0.02 over ~3.56
        // decades); the level-2 boundary wants to move 0.21 but clamps at
        // the 4 sigma guard band below level 3 (6.0 - 0.4 = 5.6).
        assert!(da.bounds()[1] > mid.bounds()[1] + 0.05);
        assert!((da.bounds()[2] - 5.6).abs() < 1e-12);
    }

    #[test]
    fn drift_aware_respects_guard_band() {
        let stack = mlc();
        let noise = NoiseParams::default();
        let da = ThresholdPlacement::DriftAware {
            reference_age_s: 1e9, // absurdly long: clamp must kick in
            margin_sigmas: 4.0,
        }
        .build(&stack, &noise, 1.0);
        for (i, b) in da.bounds().iter().enumerate() {
            let ceiling = stack.level(i + 1).log_r - 4.0 * noise.sigma_write;
            assert!(*b <= ceiling + 1e-12, "bound {i} exceeds guard band");
        }
    }

    #[test]
    fn upper_lower_navigation() {
        let th = ThresholdPlacement::Midpoint.build(&mlc(), &NoiseParams::default(), 1.0);
        assert_eq!(th.lower(0), None);
        assert_eq!(th.upper(3), None);
        assert_eq!(th.upper(0), Some(3.5));
        assert_eq!(th.lower(3), Some(5.5));
    }

    #[test]
    #[should_panic(expected = "custom thresholds need exactly")]
    fn custom_arity_checked() {
        ThresholdPlacement::Custom(vec![3.5, 4.5]).build(&mlc(), &NoiseParams::default(), 1.0);
    }

    #[test]
    fn custom_roundtrip() {
        let th = ThresholdPlacement::Custom(vec![3.6, 4.6, 5.6]).build(
            &mlc(),
            &NoiseParams::default(),
            1.0,
        );
        assert_eq!(th.bounds(), &[3.6, 4.6, 5.6]);
    }
}
