//! Device-level energy parameters.
//!
//! Values are representative numbers from the MLC-PCM literature; every
//! experiment treats them as configuration, and only energy *ratios*
//! between policies are claimed by the reproduction.

/// Per-operation energy costs, in picojoules.
///
/// # Examples
///
/// ```
/// use pcm_model::EnergyParams;
/// let e = EnergyParams::default();
/// // An MLC line write costs far more than a read: that asymmetry is why
/// // avoiding scrub write-backs saves so much energy.
/// assert!(e.line_write_pj(512, true) > 5.0 * e.line_read_pj(512));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyParams {
    /// Array read energy per bit (pJ).
    pub read_pj_per_bit: f64,
    /// MLC write energy per bit (pJ), averaged over the iterative
    /// program-and-verify loop.
    pub write_mlc_pj_per_bit: f64,
    /// SLC write energy per bit (pJ) — single-shot programming.
    pub write_slc_pj_per_bit: f64,
    /// Fixed per-line ECC syndrome-computation energy (pJ).
    pub decode_base_pj: f64,
    /// Additional decode energy per unit of correction capability `t` (pJ),
    /// modelling the Berlekamp–Massey/Chien hardware activity.
    pub decode_per_t_pj: f64,
    /// Per-line ECC encode energy (pJ).
    pub encode_pj: f64,
    /// Per-line CRC check energy (pJ) — the cheapest detection probe.
    pub crc_check_pj: f64,
}

impl EnergyParams {
    /// Energy to read a line of `bits` data bits (pJ), excluding decode.
    pub fn line_read_pj(&self, bits: u32) -> f64 {
        self.read_pj_per_bit * bits as f64
    }

    /// Energy to write a line of `bits` data bits (pJ); `mlc` selects the
    /// iterative MLC path vs. the single-shot SLC path.
    pub fn line_write_pj(&self, bits: u32, mlc: bool) -> f64 {
        let per_bit = if mlc {
            self.write_mlc_pj_per_bit
        } else {
            self.write_slc_pj_per_bit
        };
        per_bit * bits as f64
    }

    /// ECC decode energy for a code correcting up to `t` errors (pJ).
    pub fn decode_pj(&self, t: u32) -> f64 {
        self.decode_base_pj + self.decode_per_t_pj * t as f64
    }
}

impl Default for EnergyParams {
    fn default() -> Self {
        Self {
            read_pj_per_bit: 2.0,
            write_mlc_pj_per_bit: 30.0,
            write_slc_pj_per_bit: 12.0,
            decode_base_pj: 50.0,
            decode_per_t_pj: 25.0,
            encode_pj: 60.0,
            crc_check_pj: 15.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_have_write_read_asymmetry() {
        let e = EnergyParams::default();
        assert!(e.write_mlc_pj_per_bit / e.read_pj_per_bit >= 10.0);
        assert!(e.write_slc_pj_per_bit < e.write_mlc_pj_per_bit);
    }

    #[test]
    fn decode_scales_with_t() {
        let e = EnergyParams::default();
        assert!(e.decode_pj(6) > e.decode_pj(1));
        assert_eq!(e.decode_pj(0), e.decode_base_pj);
        // CRC must be cheaper than any full decode for the two-phase
        // probe to make sense.
        assert!(e.crc_check_pj < e.decode_base_pj);
    }

    #[test]
    fn line_energies_scale_with_bits() {
        let e = EnergyParams::default();
        assert_eq!(e.line_read_pj(1024), 2.0 * e.line_read_pj(512));
        assert_eq!(e.line_write_pj(512, true), 512.0 * 30.0);
        assert_eq!(e.line_write_pj(512, false), 512.0 * 12.0);
    }
}
