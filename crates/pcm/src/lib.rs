//! # pcm-model — MLC/SLC phase-change-memory device model
//!
//! The error-source substrate for the HPCA 2012 scrub-mechanisms
//! reproduction: multi-level-cell geometry, programming/sensing noise,
//! **resistance drift** (the dominant MLC-PCM soft-error mechanism),
//! write-endurance wear-out (the hard-error mechanism scrub writes
//! aggravate), and device energy parameters.
//!
//! Two complementary views of the same physics are provided:
//!
//! * [`DriftModel`] — analytic per-level misread probabilities `p(t)` as a
//!   function of cell age, fast enough to drive a multi-gigabyte
//!   line-granularity memory simulation.
//! * [`CellArray`] — cell-exact Monte-Carlo arrays used as ground truth to
//!   validate the analytic model (experiment E1).
//!
//! # Quick start
//!
//! ```
//! use pcm_model::DeviceConfig;
//!
//! let dev = DeviceConfig::default(); // nominal 2-bit MLC PCM
//! let model = dev.drift_model();
//!
//! // Probability that a cell programmed to level 2 has persistently
//! // drifted across its sense boundary one hour after being written:
//! let p = model.p_up(2, 3600.0);
//! assert!(p > 0.0 && p < 1.0);
//! ```

pub mod math;

mod array;
mod cell;
mod device;
mod drift;
mod endurance;
mod energy;
mod level;
mod noise;
mod threshold;

pub use array::{ArrayReadReport, CellArray};
pub use cell::Cell;
pub use device::{DeviceConfig, DeviceConfigBuilder};
pub use drift::{DriftModel, DriftParams, SensingMode};
pub use endurance::EnduranceSpec;
pub use energy::EnergyParams;
pub use level::{LevelSpec, LevelStack};
pub use noise::NoiseParams;
pub use threshold::{ThresholdPlacement, Thresholds};
