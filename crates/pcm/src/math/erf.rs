//! Special functions: error function family and normal distribution tails.
//!
//! Implemented in-tree (no external math crate) with relative accuracy good
//! enough for the deep tails that drift-error modelling needs (misread
//! probabilities down to ~1e-300 keep meaningful relative error).

/// Complementary error function `erfc(x)` with fractional error below
/// `1.2e-7` everywhere (Chebyshev-fitted rational approximation).
///
/// Relative (not absolute) accuracy is what matters here: drift soft-error
/// probabilities live deep in the normal tail.
///
/// # Examples
///
/// ```
/// let e = pcm_model::math::erfc(0.0);
/// assert!((e - 1.0).abs() < 1e-6);
/// ```
pub fn erfc(x: f64) -> f64 {
    let z = x.abs();
    let t = 1.0 / (1.0 + 0.5 * z);
    let ans = t
        * (-z * z - 1.265_512_23
            + t * (1.000_023_68
                + t * (0.374_091_96
                    + t * (0.096_784_18
                        + t * (-0.186_288_06
                            + t * (0.278_868_07
                                + t * (-1.135_203_98
                                    + t * (1.488_515_87
                                        + t * (-0.822_152_23 + t * 0.170_872_77)))))))))
            .exp();
    if x >= 0.0 {
        ans
    } else {
        2.0 - ans
    }
}

/// Error function `erf(x)`.
///
/// # Examples
///
/// ```
/// assert!(pcm_model::math::erf(10.0) > 0.999_999);
/// assert!((pcm_model::math::erf(0.0)).abs() < 1e-6);
/// ```
pub fn erf(x: f64) -> f64 {
    1.0 - erfc(x)
}

const FRAC_1_SQRT_2: f64 = std::f64::consts::FRAC_1_SQRT_2;

/// Standard normal cumulative distribution function `Φ(x)`.
///
/// # Examples
///
/// ```
/// let half = pcm_model::math::norm_cdf(0.0);
/// assert!((half - 0.5).abs() < 1e-7);
/// ```
pub fn norm_cdf(x: f64) -> f64 {
    0.5 * erfc(-x * FRAC_1_SQRT_2)
}

/// Standard normal upper-tail probability `Q(x) = 1 − Φ(x)`.
///
/// Computed via `erfc` so it keeps relative accuracy for large `x`
/// (e.g. `Q(8) ≈ 6.2e-16` rather than rounding to zero).
///
/// # Examples
///
/// ```
/// let q = pcm_model::math::norm_sf(3.0);
/// assert!((q - 1.349_898e-3).abs() / q < 1e-4);
/// ```
pub fn norm_sf(x: f64) -> f64 {
    0.5 * erfc(x * FRAC_1_SQRT_2)
}

/// Standard normal probability density function `φ(x)`.
pub fn norm_pdf(x: f64) -> f64 {
    const INV_SQRT_2PI: f64 = 0.398_942_280_401_432_7;
    INV_SQRT_2PI * (-0.5 * x * x).exp()
}

/// Inverse of the standard normal CDF (the probit function).
///
/// Acklam's rational approximation with one Halley refinement step;
/// absolute error below 1e-9 over `p ∈ (0, 1)`.
///
/// # Panics
///
/// Panics if `p` is outside the open interval `(0, 1)`.
///
/// # Examples
///
/// ```
/// let x = pcm_model::math::norm_ppf(0.975);
/// assert!((x - 1.959_964).abs() < 1e-4);
/// ```
pub fn norm_ppf(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "norm_ppf requires p in (0,1), got {p}");
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.024_25;
    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };
    // One Halley refinement step.
    let e = norm_cdf(x) - p;
    let u = e * (2.0 * std::f64::consts::PI).sqrt() * (0.5 * x * x).exp();
    x - u / (1.0 + 0.5 * x * u)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erfc_reference_values() {
        // Reference values from tabulated erfc.
        let cases = [
            (0.0, 1.0),
            (0.5, 0.479_500_122_186_953_5),
            (1.0, 0.157_299_207_050_285_13),
            (2.0, 4.677_734_981_063_127e-3),
            (3.0, 2.209_049_699_858_544e-5),
        ];
        for (x, want) in cases {
            let got = erfc(x);
            assert!(
                (got - want).abs() / want < 1e-6,
                "erfc({x}) = {got}, want {want}"
            );
        }
    }

    #[test]
    fn erfc_symmetry() {
        for i in 0..100 {
            let x = -3.0 + 0.06 * i as f64;
            let s = erfc(x) + erfc(-x);
            assert!((s - 2.0).abs() < 1e-7, "erfc symmetry at {x}: {s}");
        }
    }

    #[test]
    fn norm_tail_relative_accuracy() {
        // Q(6) = 9.8659e-10: deep tail keeps relative accuracy.
        let q6 = norm_sf(6.0);
        assert!((q6 - 9.865_9e-10).abs() / q6 < 1e-3, "Q(6) = {q6}");
        let q8 = norm_sf(8.0);
        assert!((q8 - 6.22e-16).abs() / q8 < 1e-2, "Q(8) = {q8}");
    }

    #[test]
    fn cdf_sf_complement() {
        for i in 0..200 {
            let x = -5.0 + 0.05 * i as f64;
            let s = norm_cdf(x) + norm_sf(x);
            // Exactly 1 by the erfc symmetry branch except at x == 0,
            // where the raw approximation's ~3e-8 bias shows.
            assert!((s - 1.0).abs() < 1e-7);
        }
    }

    #[test]
    fn ppf_roundtrip() {
        for i in 1..100 {
            let p = i as f64 / 100.0;
            let x = norm_ppf(p);
            assert!((norm_cdf(x) - p).abs() < 1e-7, "roundtrip at p={p}");
        }
    }

    #[test]
    fn ppf_tails() {
        let x = norm_ppf(1e-9);
        assert!((norm_cdf(x) - 1e-9).abs() / 1e-9 < 1e-3);
        assert!(x < -5.9 && x > -6.1);
    }

    #[test]
    #[should_panic(expected = "norm_ppf requires p in (0,1)")]
    fn ppf_rejects_zero() {
        norm_ppf(0.0);
    }

    #[test]
    fn pdf_peak_and_symmetry() {
        assert!((norm_pdf(0.0) - 0.398_942_280_401_432_7).abs() < 1e-12);
        assert!((norm_pdf(1.3) - norm_pdf(-1.3)).abs() < 1e-15);
    }
}
