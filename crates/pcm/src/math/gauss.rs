//! Gauss–Hermite quadrature for integrating smooth functions against a
//! Gaussian weight, used to marginalize the stochastic drift exponent.
//!
//! Nodes and weights are computed at construction by Newton iteration on the
//! (physicists') Hermite polynomial recurrence, so no tables are baked in and
//! any order can be requested.

/// A Gauss–Hermite quadrature rule of a given order.
///
/// Integrates `∫ f(x) e^{-x²} dx` as `Σ wᵢ f(xᵢ)`. The helper
/// [`GaussHermite::expect_normal`] rescales this to an expectation under a
/// `N(μ, σ²)` distribution.
///
/// # Examples
///
/// ```
/// use pcm_model::math::GaussHermite;
/// let gh = GaussHermite::new(32);
/// // E[z²] under the standard normal is 1.
/// let m2 = gh.expect_normal(0.0, 1.0, |z| z * z);
/// assert!((m2 - 1.0).abs() < 1e-10);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct GaussHermite {
    nodes: Vec<f64>,
    weights: Vec<f64>,
}

impl GaussHermite {
    /// Builds a rule with `order` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `order == 0` or `order > 512` (higher orders lose accuracy
    /// to floating-point cancellation in the recurrence).
    pub fn new(order: usize) -> Self {
        assert!(
            (1..=512).contains(&order),
            "Gauss-Hermite order must be in 1..=512, got {order}"
        );
        let n = order;
        let mut nodes = vec![0.0f64; n];
        let mut weights = vec![0.0f64; n];
        let m = n.div_ceil(2);
        // Initial guesses follow the classical asymptotic formulas
        // (Numerical Recipes §4.6), refined by Newton iteration.
        let mut z = 0.0f64;
        for i in 0..m {
            z = match i {
                0 => {
                    (2.0 * n as f64 + 1.0).sqrt()
                        - 1.855_75 * (2.0 * n as f64 + 1.0).powf(-1.0 / 6.0)
                }
                1 => z - 1.14 * (n as f64).powf(0.426) / z,
                2 => 1.86 * z - 0.86 * nodes[0],
                3 => 1.91 * z - 0.91 * nodes[1],
                _ => 2.0 * z - nodes[i - 2],
            };
            let mut pp = 0.0;
            for _ in 0..200 {
                // Evaluate H_n via the orthonormal recurrence.
                let mut p1 = std::f64::consts::PI.powf(-0.25);
                let mut p2 = 0.0;
                for j in 0..n {
                    let p3 = p2;
                    p2 = p1;
                    p1 = z * (2.0 / (j as f64 + 1.0)).sqrt() * p2
                        - (j as f64 / (j as f64 + 1.0)).sqrt() * p3;
                }
                pp = (2.0 * n as f64).sqrt() * p2;
                let z1 = z;
                z = z1 - p1 / pp;
                if (z - z1).abs() < 1e-14 {
                    break;
                }
            }
            nodes[i] = z;
            nodes[n - 1 - i] = -z;
            let w = 2.0 / (pp * pp);
            weights[i] = w;
            weights[n - 1 - i] = w;
        }
        // Store in ascending node order for cache-friendly iteration.
        let mut idx: Vec<usize> = (0..n).collect();
        idx.sort_by(|&a, &b| nodes[a].partial_cmp(&nodes[b]).expect("finite nodes"));
        let nodes_sorted: Vec<f64> = idx.iter().map(|&i| nodes[i]).collect();
        let weights_sorted: Vec<f64> = idx.iter().map(|&i| weights[i]).collect();
        Self {
            nodes: nodes_sorted,
            weights: weights_sorted,
        }
    }

    /// Number of nodes in the rule.
    pub fn order(&self) -> usize {
        self.nodes.len()
    }

    /// Raw nodes `xᵢ` (ascending).
    pub fn nodes(&self) -> &[f64] {
        &self.nodes
    }

    /// Raw weights `wᵢ` matching [`GaussHermite::nodes`].
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// `∫ f(x) e^{-x²} dx ≈ Σ wᵢ f(xᵢ)`.
    pub fn integrate<F: FnMut(f64) -> f64>(&self, mut f: F) -> f64 {
        self.nodes
            .iter()
            .zip(&self.weights)
            .map(|(&x, &w)| w * f(x))
            .sum()
    }

    /// Expectation `E[f(Z)]` for `Z ~ N(mu, sigma²)`.
    ///
    /// Uses the substitution `z = mu + sigma·√2·x`.
    pub fn expect_normal<F: FnMut(f64) -> f64>(&self, mu: f64, sigma: f64, mut f: F) -> f64 {
        const INV_SQRT_PI: f64 = 0.564_189_583_547_756_3;
        let s = sigma * std::f64::consts::SQRT_2;
        INV_SQRT_PI * self.integrate(|x| f(mu + s * x))
    }

    /// Expectation `E[f(V)]` for `ln V ~ N(ln_median, sigma_ln²)`,
    /// i.e. `V` lognormal with the given log-domain parameters.
    pub fn expect_lognormal<F: FnMut(f64) -> f64>(
        &self,
        ln_median: f64,
        sigma_ln: f64,
        mut f: F,
    ) -> f64 {
        self.expect_normal(ln_median, sigma_ln, |z| f(z.exp()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weights_sum_to_sqrt_pi() {
        for order in [4, 16, 32, 64, 128] {
            let gh = GaussHermite::new(order);
            let s: f64 = gh.weights().iter().sum();
            assert!(
                (s - std::f64::consts::PI.sqrt()).abs() < 1e-10,
                "order {order}: weight sum {s}"
            );
        }
    }

    #[test]
    fn nodes_are_symmetric_and_sorted() {
        let gh = GaussHermite::new(33);
        let n = gh.nodes();
        for w in n.windows(2) {
            assert!(w[0] < w[1]);
        }
        for i in 0..n.len() {
            assert!((n[i] + n[n.len() - 1 - i]).abs() < 1e-12);
        }
    }

    #[test]
    fn normal_moments() {
        let gh = GaussHermite::new(40);
        assert!((gh.expect_normal(2.0, 3.0, |z| z) - 2.0).abs() < 1e-10);
        assert!((gh.expect_normal(2.0, 3.0, |z| (z - 2.0).powi(2)) - 9.0).abs() < 1e-9);
        // 4th central moment of N(0,σ²) is 3σ⁴.
        assert!((gh.expect_normal(0.0, 2.0, |z| z.powi(4)) - 48.0).abs() < 1e-7);
    }

    #[test]
    fn lognormal_mean() {
        // E[V] = exp(μ + σ²/2) for lognormal.
        let gh = GaussHermite::new(64);
        let (mu, sigma) = (-2.3f64, 0.4f64);
        let want = (mu + sigma * sigma / 2.0).exp();
        let got = gh.expect_lognormal(mu, sigma, |v| v);
        assert!((got - want).abs() / want < 1e-10, "got {got}, want {want}");
    }

    #[test]
    fn polynomial_exactness() {
        // An order-n rule integrates polynomials up to degree 2n-1 exactly.
        let gh = GaussHermite::new(6);
        // ∫ x^10 e^{-x²} dx = Γ(11/2) = 945/32·√π... degree 10 < 2·6 = 12.
        let want = 945.0 / 32.0 * std::f64::consts::PI.sqrt();
        let got = gh.integrate(|x| x.powi(10));
        assert!((got - want).abs() / want < 1e-12);
    }

    #[test]
    #[should_panic(expected = "Gauss-Hermite order")]
    fn rejects_zero_order() {
        GaussHermite::new(0);
    }
}
