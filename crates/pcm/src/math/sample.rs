//! Random sampling primitives used throughout the simulator.
//!
//! All samplers take a caller-provided [`rand::Rng`] so every stochastic
//! component of the system is reproducible from a seed (the workspace-wide
//! determinism invariant).

use rand::Rng;

use super::erf::norm_ppf;

/// Samples a standard normal deviate via the polar Box–Muller method.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let z = pcm_model::math::sample_std_normal(&mut rng);
/// assert!(z.is_finite());
/// ```
pub fn sample_std_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u: f64 = rng.gen_range(-1.0..1.0);
        let v: f64 = rng.gen_range(-1.0..1.0);
        let s = u * u + v * v;
        if s > 0.0 && s < 1.0 {
            return u * (-2.0 * s.ln() / s).sqrt();
        }
    }
}

/// Samples `N(mu, sigma²)`.
pub fn sample_normal<R: Rng + ?Sized>(rng: &mut R, mu: f64, sigma: f64) -> f64 {
    mu + sigma * sample_std_normal(rng)
}

/// Samples a normal truncated to `[mu - half_width, mu + half_width]` by
/// rejection; models program-and-verify loops that retry until the cell
/// lands inside the verify band.
///
/// # Panics
///
/// Panics if `half_width <= 0` or acceptance would be hopeless
/// (`half_width < 0.05·sigma`).
pub fn sample_truncated_normal<R: Rng + ?Sized>(
    rng: &mut R,
    mu: f64,
    sigma: f64,
    half_width: f64,
) -> f64 {
    assert!(half_width > 0.0, "truncation half-width must be positive");
    assert!(
        half_width >= 0.05 * sigma,
        "truncation band too narrow for rejection sampling"
    );
    loop {
        let x = sample_normal(rng, mu, sigma);
        if (x - mu).abs() <= half_width {
            return x;
        }
    }
}

/// Samples a lognormal with median `exp(ln_median)` — i.e.
/// `ln X ~ N(ln_median, sigma_ln²)`.
pub fn sample_lognormal<R: Rng + ?Sized>(rng: &mut R, ln_median: f64, sigma_ln: f64) -> f64 {
    sample_normal(rng, ln_median, sigma_ln).exp()
}

/// Mean above which the mode-centred inversion beats the bottom-up walk.
const BINOMIAL_MODE_CUTOFF: f64 = 10.0;

/// Largest `n` the ln-factorial table covers (every `n` the simulator
/// draws is far below this; larger `n` falls back to the bottom-up walk).
const LN_FACT_MAX_N: usize = 4096;

/// `ln(k!)` for `k ≤ LN_FACT_MAX_N`, built once on first use.
fn ln_fact_table() -> &'static [f64] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<Vec<f64>> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = Vec::with_capacity(LN_FACT_MAX_N + 1);
        let mut acc = 0.0f64;
        t.push(0.0);
        for k in 1..=LN_FACT_MAX_N {
            acc += (k as f64).ln();
            t.push(acc);
        }
        t
    })
}

/// Samples `Binomial(n, p)` exactly, in expected `O(√(npq) + 1)` time.
///
/// Strategy: sequential inversion of the CDF from a single uniform.
/// Small means walk the CDF up from zero (expected `O(np + 1)` — the
/// common case for rare drift failures, with the zero outcome resolved by
/// one compare); larger means walk outward from the distribution's mode,
/// visiting an expected `O(√(npq))` terms. Both walks use the exact PMF
/// ratio recurrence, so the sampled law is the true binomial up to f64
/// rounding of the PMF terms (relative error ≲ 1e-13; see the
/// `matches_closed_form_pmf` test). Exactly one uniform is consumed per
/// sample, which also makes the draw count deterministic.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let k = pcm_model::math::sample_binomial(&mut rng, 100, 0.0);
/// assert_eq!(k, 0);
/// let k = pcm_model::math::sample_binomial(&mut rng, 100, 1.0);
/// assert_eq!(k, 100);
/// ```
pub fn sample_binomial<R: Rng + ?Sized>(rng: &mut R, n: u32, p: f64) -> u32 {
    assert!((0.0..=1.0).contains(&p), "binomial p out of [0,1]: {p}");
    if n == 0 || p <= 0.0 {
        return 0;
    }
    if p >= 1.0 {
        return n;
    }
    // Work with the smaller tail so the walks stay short.
    let (ps, flip) = if p <= 0.5 {
        (p, false)
    } else {
        (1.0 - p, true)
    };
    let k = if n as f64 * ps < BINOMIAL_MODE_CUTOFF || n as usize > LN_FACT_MAX_N {
        binomial_inv_bottom(rng, n, ps)
    } else {
        binomial_inv_mode(rng, n, ps)
    };
    if flip {
        n - k
    } else {
        k
    }
}

/// `x^n` by binary exponentiation, bit-identical to compiler-rt's
/// `__powidf2` (same multiply order) but inlined into the sampling loop —
/// the libcall showed up at ~15% of E6's profile.
#[inline]
fn powi_u32(mut x: f64, mut n: u32) -> f64 {
    let mut r = 1.0;
    loop {
        if n & 1 == 1 {
            r *= x;
        }
        n /= 2;
        if n == 0 {
            break;
        }
        x *= x;
    }
    r
}

/// Bottom-up CDF inversion for small means: start at `P(X=0) = qⁿ` and
/// walk up with the PMF ratio recurrence. One uniform, expected
/// `O(np + 1)` iterations, and the dominant zero outcome costs a single
/// compare after `powi`.
fn binomial_inv_bottom<R: Rng + ?Sized>(rng: &mut R, n: u32, p: f64) -> u32 {
    debug_assert!(p > 0.0 && p <= 0.5);
    let q = 1.0 - p;
    if q == 1.0 {
        // p below ~2^-53: `1 - p` rounded to 1. The success probability of
        // the whole experiment is n·p < 1e-13 — sample that single event
        // instead of walking a degenerate recurrence.
        return u32::from(rng.gen::<f64>() < n as f64 * p);
    }
    binomial_inv_bottom_with(rng, n, p, powi_u32(q, n))
}

/// The bottom-up walk with the `qⁿ` prefactor supplied by the caller
/// (who may have batched several prefactor computations; see
/// [`sample_binomial4`]).
fn binomial_inv_bottom_with<R: Rng + ?Sized>(rng: &mut R, n: u32, p: f64, pmf0: f64) -> u32 {
    let q = 1.0 - p;
    let mut pmf = pmf0;
    let r = p / q;
    let mut u: f64 = rng.gen();
    let mut k = 0u32;
    loop {
        // The `k >= n` clamp absorbs the ~1e-15 rounding residue a full
        // walk can leave past the last bucket.
        if u < pmf || k >= n {
            return k;
        }
        u -= pmf;
        k += 1;
        pmf *= r * (n - k + 1) as f64 / k as f64;
    }
}

/// Four `xᵅ` binary exponentiations at once. Each lane's multiply order
/// matches [`powi_u32`] exactly (squarings past a lane's final bit never
/// feed its accumulator), so results are bit-identical to four scalar
/// calls — but the lanes' multiplies are data-independent, letting the
/// per-line drift/transient draws pay one exponentiation latency instead
/// of four.
fn powi4(mut x: [f64; 4], n: [u32; 4]) -> [f64; 4] {
    let mut r = [1.0f64; 4];
    let mut bits = n;
    // Branchless select (multiplying by 1.0 is exact for the finite
    // probabilities in play) keeps the four lanes vectorizable.
    while bits.iter().any(|&b| b > 0) {
        for l in 0..4 {
            let m = if bits[l] & 1 == 1 { x[l] } else { 1.0 };
            r[l] *= m;
            x[l] *= x[l];
            bits[l] /= 2;
        }
    }
    r
}

/// Draws up to four independent binomials — one read's per-level error
/// draws — consuming uniforms lane by lane in index order. Outcome- and
/// draw-identical to four sequential [`sample_binomial`] calls; the only
/// difference is that the `qⁿ` prefactors of the small-mean lanes are
/// computed as one batched exponentiation before any uniform is drawn.
/// Lanes with `n = 0` or `p ≤ 0` consume nothing and yield 0, exactly as
/// the scalar sampler does.
pub fn sample_binomial4<R: Rng + ?Sized>(rng: &mut R, ns: [u32; 4], ps: [f64; 4]) -> [u32; 4] {
    let mut qs = [1.0f64; 4];
    let mut es = [0u32; 4];
    let mut bottom = [false; 4];
    for l in 0..4 {
        let (n, p) = (ns[l], ps[l]);
        if n == 0 || p <= 0.0 || p >= 1.0 {
            continue;
        }
        let ps_small = if p <= 0.5 { p } else { 1.0 - p };
        let q = 1.0 - ps_small;
        if q != 1.0 && (n as f64 * ps_small < BINOMIAL_MODE_CUTOFF || n as usize > LN_FACT_MAX_N) {
            bottom[l] = true;
            qs[l] = q;
            es[l] = n;
        }
    }
    let pmf0s = powi4(qs, es);
    let mut out = [0u32; 4];
    for l in 0..4 {
        out[l] = if bottom[l] {
            let p = ps[l];
            let (ps_small, flip) = if p <= 0.5 {
                (p, false)
            } else {
                (1.0 - p, true)
            };
            let k = binomial_inv_bottom_with(rng, ns[l], ps_small, pmf0s[l]);
            if flip {
                ns[l] - k
            } else {
                k
            }
        } else {
            sample_binomial(rng, ns[l], ps[l])
        };
    }
    out
}

/// Mode-centred CDF inversion: evaluate the PMF at the mode via the
/// ln-factorial table, then walk outward (m, m+1, m−1, m+2, …) until the
/// uniform's mass is located. Any fixed ordering of the support is a valid
/// inversion; this one visits an expected `O(√(npq))` terms.
fn binomial_inv_mode<R: Rng + ?Sized>(rng: &mut R, n: u32, p: f64) -> u32 {
    binomial_inv_mode_with_logs(rng, n, p, p.ln(), (1.0 - p).ln())
}

/// [`binomial_inv_mode`] with `ln p` / `ln q` supplied by the caller.
/// Callers that draw many binomials at a fixed `p` (the occupancy
/// multinomial's conditionals) hoist the two `ln` calls out of the loop;
/// passing the logs of the same `p` yields bit-identical samples.
fn binomial_inv_mode_with_logs<R: Rng + ?Sized>(
    rng: &mut R,
    n: u32,
    p: f64,
    ln_p: f64,
    ln_q: f64,
) -> u32 {
    debug_assert!(p > 0.0 && p <= 0.5);
    let q = 1.0 - p;
    let lf = ln_fact_table();
    let m = (((n + 1) as f64) * p).floor().min(n as f64) as u32;
    let ln_pmf_m = lf[n as usize] - lf[m as usize] - lf[(n - m) as usize]
        + m as f64 * ln_p
        + (n - m) as f64 * ln_q;
    let pmf_m = ln_pmf_m.exp();
    let mut u: f64 = rng.gen();
    if u < pmf_m {
        return m;
    }
    u -= pmf_m;
    let r = p / q;
    let (mut up_k, mut up_pmf) = (m, pmf_m);
    let (mut dn_k, mut dn_pmf) = (m, pmf_m);
    loop {
        let mut progressed = false;
        if up_k < n {
            up_pmf *= r * (n - up_k) as f64 / (up_k + 1) as f64;
            up_k += 1;
            if u < up_pmf {
                return up_k;
            }
            u -= up_pmf;
            progressed = true;
        }
        if dn_k > 0 {
            dn_pmf *= dn_k as f64 / (r * (n - dn_k + 1) as f64);
            dn_k -= 1;
            if u < dn_pmf {
                return dn_k;
            }
            u -= dn_pmf;
            progressed = true;
        }
        if !progressed {
            // Support exhausted with a rounding residue left: return the
            // mode (any in-support value is within the rounding tolerance).
            return m;
        }
    }
}

/// Samples a multinomial allocation of `n` trials over `probs` categories by
/// sequential conditional binomials. `probs` must sum to ≈1.
///
/// # Panics
///
/// Panics if `probs` is empty, contains negatives, or sums far from 1.
pub fn sample_multinomial<R: Rng + ?Sized>(rng: &mut R, n: u32, probs: &[f64]) -> Vec<u32> {
    let mut out = vec![0u32; probs.len()];
    sample_multinomial_into(rng, n, probs, &mut out);
    out
}

/// [`sample_multinomial`] writing into a caller-provided buffer, for hot
/// paths that cannot afford a per-call allocation (`out.len()` must equal
/// `probs.len()`).
///
/// # Panics
///
/// Panics on the same invalid `probs` as [`sample_multinomial`], or if the
/// buffer length does not match.
pub fn sample_multinomial_into<R: Rng + ?Sized>(
    rng: &mut R,
    n: u32,
    probs: &[f64],
    out: &mut [u32],
) {
    assert!(!probs.is_empty(), "multinomial needs at least one category");
    assert_eq!(out.len(), probs.len(), "multinomial buffer length mismatch");
    let total: f64 = probs.iter().sum();
    assert!(
        (total - 1.0).abs() < 1e-6,
        "multinomial probabilities sum to {total}, want 1"
    );
    assert!(
        probs.iter().all(|&p| p >= 0.0),
        "multinomial probabilities must be nonnegative"
    );
    let mut remaining_n = n;
    let mut remaining_p = 1.0f64;
    for (i, &p) in probs.iter().enumerate() {
        if i == probs.len() - 1 {
            out[i] = remaining_n;
            break;
        }
        let cond = if remaining_p <= 0.0 {
            0.0
        } else {
            (p / remaining_p).clamp(0.0, 1.0)
        };
        let k = sample_binomial(rng, remaining_n, cond);
        out[i] = k;
        remaining_n -= k;
        remaining_p -= p;
    }
}

/// One category of a [`PrecomputedMultinomial`]: the conditional binomial
/// probability in the orientation [`sample_binomial`] would pick, with its
/// logarithms taken once at construction.
#[derive(Debug, Clone)]
struct PrecomputedCategory {
    /// Conditional success probability `p_i / (p_i + p_{i+1} + …)`.
    cond: f64,
    /// `min(cond, 1 − cond)` — the smaller tail the walks operate on.
    ps: f64,
    /// Whether `cond > 0.5` (sampled count must be reflected).
    flip: bool,
    ln_ps: f64,
    ln_qs: f64,
}

/// A multinomial distribution with its sequential-conditional decomposition
/// precomputed. Sampling draws the identical uniforms and returns the
/// identical counts as [`sample_multinomial_into`] over the same `probs`,
/// but hoists the per-category divisions, clamps, and — on the
/// mode-inversion path — the two `ln` evaluations out of the per-call work.
/// Built once per fault engine for the cell-occupancy re-roll, which is the
/// single hottest multinomial in the simulator.
#[derive(Debug, Clone)]
pub struct PrecomputedMultinomial {
    categories: Vec<PrecomputedCategory>,
}

impl PrecomputedMultinomial {
    /// Validates `probs` exactly as [`sample_multinomial_into`] does and
    /// precomputes each conditional with the same arithmetic (so the f64
    /// conditionals — and therefore every downstream draw — are
    /// bit-identical).
    ///
    /// # Panics
    ///
    /// Panics on the same invalid `probs` as [`sample_multinomial`].
    pub fn new(probs: &[f64]) -> Self {
        assert!(!probs.is_empty(), "multinomial needs at least one category");
        let total: f64 = probs.iter().sum();
        assert!(
            (total - 1.0).abs() < 1e-6,
            "multinomial probabilities sum to {total}, want 1"
        );
        assert!(
            probs.iter().all(|&p| p >= 0.0),
            "multinomial probabilities must be nonnegative"
        );
        let mut categories = Vec::with_capacity(probs.len() - 1);
        let mut remaining_p = 1.0f64;
        for &p in &probs[..probs.len() - 1] {
            let cond = if remaining_p <= 0.0 {
                0.0
            } else {
                (p / remaining_p).clamp(0.0, 1.0)
            };
            let (ps, flip) = if cond <= 0.5 {
                (cond, false)
            } else {
                (1.0 - cond, true)
            };
            categories.push(PrecomputedCategory {
                cond,
                ps,
                flip,
                ln_ps: ps.ln(),
                ln_qs: (1.0 - ps).ln(),
            });
            remaining_p -= p;
        }
        Self { categories }
    }

    /// Number of categories (length `sample_into` expects of its buffer).
    pub fn len(&self) -> usize {
        self.categories.len() + 1
    }

    /// Whether the distribution has a single category.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Samples an allocation of `n` trials into `out`, identically to
    /// [`sample_multinomial_into`] with the constructor's `probs`.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != self.len()`.
    pub fn sample_into<R: Rng + ?Sized>(&self, rng: &mut R, n: u32, out: &mut [u32]) {
        assert_eq!(out.len(), self.len(), "multinomial buffer length mismatch");
        let mut remaining_n = n;
        for (slot, cat) in out.iter_mut().zip(&self.categories) {
            let k = cat.sample(rng, remaining_n);
            *slot = k;
            remaining_n -= k;
        }
        out[self.categories.len()] = remaining_n;
    }
}

impl PrecomputedCategory {
    /// `sample_binomial(rng, n, self.cond)`, with the orientation and logs
    /// reused rather than recomputed.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R, n: u32) -> u32 {
        if n == 0 || self.cond <= 0.0 {
            return 0;
        }
        if self.cond >= 1.0 {
            return n;
        }
        let k = if n as f64 * self.ps < BINOMIAL_MODE_CUTOFF || n as usize > LN_FACT_MAX_N {
            binomial_inv_bottom(rng, n, self.ps)
        } else {
            binomial_inv_mode_with_logs(rng, n, self.ps, self.ln_ps, self.ln_qs)
        };
        if self.flip {
            n - k
        } else {
            k
        }
    }
}

/// Samples without replacement: picks `k` distinct indices from `0..n`
/// (Floyd's algorithm), returned in unspecified order.
///
/// # Panics
///
/// Panics if `k > n`.
pub fn sample_distinct_indices<R: Rng + ?Sized>(rng: &mut R, n: usize, k: usize) -> Vec<usize> {
    assert!(k <= n, "cannot sample {k} distinct from {n}");
    let mut out = Vec::with_capacity(k);
    if k <= 32 {
        // Small draws (the ECC error-spreading hot path): membership via a
        // linear scan of the output beats a hash set by a wide margin.
        for j in (n - k)..n {
            let t = rng.gen_range(0..=j);
            let pick = if out.contains(&t) { j } else { t };
            out.push(pick);
        }
        return out;
    }
    let mut chosen = std::collections::HashSet::with_capacity(k);
    for j in (n - k)..n {
        let t = rng.gen_range(0..=j);
        let pick = if chosen.contains(&t) { j } else { t };
        chosen.insert(pick);
        out.push(pick);
    }
    out
}

/// Deviate from `N(mu, sigma²)` computed by inversion from a single uniform —
/// useful when exactly one RNG draw per sample is required for
/// counter-based reproducibility.
pub fn sample_normal_inv<R: Rng + ?Sized>(rng: &mut R, mu: f64, sigma: f64) -> f64 {
    let u: f64 = loop {
        let u = rng.gen::<f64>();
        if u > 0.0 && u < 1.0 {
            break u;
        }
    };
    mu + sigma * norm_ppf(u)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn binomial_mean_and_variance() {
        let mut rng = StdRng::seed_from_u64(42);
        let (n, p, reps) = (200u32, 0.07, 20_000);
        let mut sum = 0.0;
        let mut sumsq = 0.0;
        for _ in 0..reps {
            let k = sample_binomial(&mut rng, n, p) as f64;
            sum += k;
            sumsq += k * k;
        }
        let mean = sum / reps as f64;
        let var = sumsq / reps as f64 - mean * mean;
        let want_mean = n as f64 * p;
        let want_var = n as f64 * p * (1.0 - p);
        assert!(
            (mean - want_mean).abs() < 0.15,
            "mean {mean} want {want_mean}"
        );
        assert!((var - want_var).abs() < 0.6, "var {var} want {want_var}");
    }

    #[test]
    fn binomial_high_p_symmetry() {
        let mut rng = StdRng::seed_from_u64(43);
        let mut sum = 0u64;
        for _ in 0..10_000 {
            sum += sample_binomial(&mut rng, 50, 0.9) as u64;
        }
        let mean = sum as f64 / 10_000.0;
        assert!((mean - 45.0).abs() < 0.2, "mean {mean}");
    }

    #[test]
    fn binomial_subnormal_p_returns_zero() {
        // Regression: p so small that ln(1-p) == 0 used to return n.
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..1000 {
            assert_eq!(sample_binomial(&mut rng, 288, 1e-323), 0);
            assert_eq!(sample_binomial(&mut rng, 288, 1e-17), 0);
        }
    }

    /// Closed-form binomial PMF via the ln-factorial table (independent of
    /// the sampling recurrences under test).
    fn pmf(n: u32, p: f64, k: u32) -> f64 {
        let lf = ln_fact_table();
        (lf[n as usize] - lf[k as usize] - lf[(n - k) as usize]
            + k as f64 * p.ln()
            + (n - k) as f64 * (1.0 - p).ln())
        .exp()
    }

    /// Both inversion paths must realize the true binomial law: empirical
    /// frequencies of every outcome near the mode match the closed-form
    /// PMF within Monte-Carlo tolerance.
    #[test]
    fn matches_closed_form_pmf() {
        // (n, p) pairs straddling the mode-inversion cutoff, including the
        // fault engine's occupancy re-roll shape (288, 0.25).
        for &(n, p) in &[(288u32, 0.25f64), (288, 0.02), (40, 0.4), (576, 0.6)] {
            let mut rng = StdRng::seed_from_u64(1000 + n as u64);
            let reps = 40_000usize;
            let mut counts = vec![0u32; n as usize + 1];
            for _ in 0..reps {
                counts[sample_binomial(&mut rng, n, p) as usize] += 1;
            }
            for k in 0..=n {
                let want = pmf(n, p.min(0.999_999), k);
                if want < 5.0 / reps as f64 {
                    continue; // too rare to test empirically
                }
                let got = counts[k as usize] as f64 / reps as f64;
                let sigma = (want * (1.0 - want) / reps as f64).sqrt();
                assert!(
                    (got - want).abs() < 5.0 * sigma + 1e-4,
                    "n={n} p={p} k={k}: got {got:.5} want {want:.5}"
                );
            }
        }
    }

    #[test]
    fn one_uniform_per_sample() {
        // The inversion samplers consume exactly one RNG draw per call, so
        // two identically seeded streams stay aligned regardless of the
        // outcomes drawn between checks.
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for &(n, p) in &[(288u32, 0.25f64), (288, 1e-6), (100, 0.5), (10, 0.9)] {
            sample_binomial(&mut a, n, p);
            let _: f64 = b.gen();
            assert_eq!(a.gen::<u64>(), b.gen::<u64>(), "n={n} p={p}");
        }
    }

    #[test]
    fn binomial_bounds() {
        let mut rng = StdRng::seed_from_u64(44);
        for _ in 0..1000 {
            let k = sample_binomial(&mut rng, 17, 0.3);
            assert!(k <= 17);
        }
    }

    #[test]
    fn multinomial_totals_and_means() {
        let mut rng = StdRng::seed_from_u64(45);
        let probs = [0.1, 0.2, 0.3, 0.4];
        let mut sums = [0u64; 4];
        for _ in 0..5_000 {
            let ks = sample_multinomial(&mut rng, 100, &probs);
            assert_eq!(ks.iter().sum::<u32>(), 100);
            for (s, k) in sums.iter_mut().zip(&ks) {
                *s += *k as u64;
            }
        }
        for (i, s) in sums.iter().enumerate() {
            let mean = *s as f64 / 5_000.0;
            let want = 100.0 * probs[i];
            assert!(
                (mean - want).abs() < 0.5,
                "cat {i}: mean {mean} want {want}"
            );
        }
    }

    #[test]
    fn binomial4_matches_sequential_scalar_calls() {
        // The batched sampler must be draw-identical to four sequential
        // scalar calls: same outcomes AND the same RNG stream position
        // afterwards, across every lane-classification mix (inactive,
        // bottom-path, mode-path, degenerate-q, p>0.5 flips).
        let cases: &[([u32; 4], [f64; 4])] = &[
            ([288, 288, 288, 288], [0.001, 0.02, 0.25, 0.9]),
            ([0, 288, 0, 5], [0.0, 1e-6, 0.3, 0.5]),
            ([288, 288, 288, 288], [1e-323, 1e-17, 0.999999, 1.0]),
            ([10, 8192, 40, 0], [0.5, 0.4, 0.997, 0.25]),
            ([1, 2, 3, 4], [0.9999, 0.0001, 0.7, 0.3]),
        ];
        for (i, &(ns, ps)) in cases.iter().enumerate() {
            let mut a = StdRng::seed_from_u64(9000 + i as u64);
            let mut b = StdRng::seed_from_u64(9000 + i as u64);
            let batched = sample_binomial4(&mut a, ns, ps);
            let mut scalar = [0u32; 4];
            for l in 0..4 {
                scalar[l] = sample_binomial(&mut b, ns[l], ps[l]);
            }
            assert_eq!(batched, scalar, "case {i}: outcomes diverge");
            assert_eq!(a.gen::<u64>(), b.gen::<u64>(), "case {i}: stream skew");
        }
    }

    #[test]
    fn precomputed_multinomial_matches_ad_hoc() {
        // Cached conditionals + logs must reproduce sample_multinomial_into
        // bit-for-bit, including the RNG stream position.
        let prob_sets: &[&[f64]] = &[
            &[0.25, 0.25, 0.25, 0.25],
            &[0.1, 0.2, 0.3, 0.4],
            &[0.7, 0.2, 0.1],
            &[1.0],
            &[0.0, 0.5, 0.5],
        ];
        for (i, probs) in prob_sets.iter().enumerate() {
            let pre = PrecomputedMultinomial::new(probs);
            assert_eq!(pre.len(), probs.len());
            let mut a = StdRng::seed_from_u64(7000 + i as u64);
            let mut b = StdRng::seed_from_u64(7000 + i as u64);
            let mut got = vec![0u32; probs.len()];
            let mut want = vec![0u32; probs.len()];
            for n in [0u32, 1, 7, 288, 2000] {
                pre.sample_into(&mut a, n, &mut got);
                sample_multinomial_into(&mut b, n, probs, &mut want);
                assert_eq!(got, want, "probs {probs:?} n={n}");
            }
            assert_eq!(a.gen::<u64>(), b.gen::<u64>(), "case {i}: stream skew");
        }
    }

    #[test]
    fn truncated_normal_respects_band() {
        let mut rng = StdRng::seed_from_u64(46);
        for _ in 0..2000 {
            let x = sample_truncated_normal(&mut rng, 5.0, 0.2, 0.3);
            assert!((x - 5.0).abs() <= 0.3);
        }
    }

    #[test]
    fn distinct_indices_are_distinct() {
        let mut rng = StdRng::seed_from_u64(47);
        for _ in 0..100 {
            let v = sample_distinct_indices(&mut rng, 50, 20);
            let set: std::collections::HashSet<_> = v.iter().collect();
            assert_eq!(set.len(), 20);
            assert!(v.iter().all(|&i| i < 50));
        }
    }

    #[test]
    fn lognormal_median() {
        let mut rng = StdRng::seed_from_u64(48);
        let mut vals: Vec<f64> = (0..9_999)
            .map(|_| sample_lognormal(&mut rng, (0.04f64).ln(), 0.4))
            .collect();
        vals.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let median = vals[vals.len() / 2];
        assert!((median - 0.04).abs() / 0.04 < 0.05, "median {median}");
    }

    #[test]
    fn normal_inv_matches_moments() {
        let mut rng = StdRng::seed_from_u64(49);
        let mut sum = 0.0;
        for _ in 0..20_000 {
            sum += sample_normal_inv(&mut rng, 1.5, 0.5);
        }
        assert!((sum / 20_000.0 - 1.5).abs() < 0.02);
    }
}
