//! Random sampling primitives used throughout the simulator.
//!
//! All samplers take a caller-provided [`rand::Rng`] so every stochastic
//! component of the system is reproducible from a seed (the workspace-wide
//! determinism invariant).

use rand::Rng;

use super::erf::norm_ppf;

/// Samples a standard normal deviate via the polar Box–Muller method.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let z = pcm_model::math::sample_std_normal(&mut rng);
/// assert!(z.is_finite());
/// ```
pub fn sample_std_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u: f64 = rng.gen_range(-1.0..1.0);
        let v: f64 = rng.gen_range(-1.0..1.0);
        let s = u * u + v * v;
        if s > 0.0 && s < 1.0 {
            return u * (-2.0 * s.ln() / s).sqrt();
        }
    }
}

/// Samples `N(mu, sigma²)`.
pub fn sample_normal<R: Rng + ?Sized>(rng: &mut R, mu: f64, sigma: f64) -> f64 {
    mu + sigma * sample_std_normal(rng)
}

/// Samples a normal truncated to `[mu - half_width, mu + half_width]` by
/// rejection; models program-and-verify loops that retry until the cell
/// lands inside the verify band.
///
/// # Panics
///
/// Panics if `half_width <= 0` or acceptance would be hopeless
/// (`half_width < 0.05·sigma`).
pub fn sample_truncated_normal<R: Rng + ?Sized>(
    rng: &mut R,
    mu: f64,
    sigma: f64,
    half_width: f64,
) -> f64 {
    assert!(half_width > 0.0, "truncation half-width must be positive");
    assert!(
        half_width >= 0.05 * sigma,
        "truncation band too narrow for rejection sampling"
    );
    loop {
        let x = sample_normal(rng, mu, sigma);
        if (x - mu).abs() <= half_width {
            return x;
        }
    }
}

/// Samples a lognormal with median `exp(ln_median)` — i.e.
/// `ln X ~ N(ln_median, sigma_ln²)`.
pub fn sample_lognormal<R: Rng + ?Sized>(rng: &mut R, ln_median: f64, sigma_ln: f64) -> f64 {
    sample_normal(rng, ln_median, sigma_ln).exp()
}

/// Samples `Binomial(n, p)` exactly.
///
/// Strategy: for small expected counts, geometric waiting-time skipping
/// (expected `O(np + 1)` work — the common case for rare drift failures);
/// otherwise a normal cut-off inversion is avoided in favour of the
/// waiting-time method seeded from whichever of `p`/`1−p` is smaller, which
/// keeps worst-case work `O(n·min(p,1−p) + 1)`.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let k = pcm_model::math::sample_binomial(&mut rng, 100, 0.0);
/// assert_eq!(k, 0);
/// let k = pcm_model::math::sample_binomial(&mut rng, 100, 1.0);
/// assert_eq!(k, 100);
/// ```
pub fn sample_binomial<R: Rng + ?Sized>(rng: &mut R, n: u32, p: f64) -> u32 {
    assert!((0.0..=1.0).contains(&p), "binomial p out of [0,1]: {p}");
    if n == 0 || p <= 0.0 {
        return 0;
    }
    if p >= 1.0 {
        return n;
    }
    if p <= 0.5 {
        binomial_waiting(rng, n, p)
    } else {
        n - binomial_waiting(rng, n, 1.0 - p)
    }
}

/// Waiting-time binomial sampler for `p ≤ 0.5`: draws geometric gaps between
/// successes. Exact, expected cost `O(np + 1)`.
fn binomial_waiting<R: Rng + ?Sized>(rng: &mut R, n: u32, p: f64) -> u32 {
    debug_assert!(p > 0.0 && p <= 0.5);
    let log_q = (1.0 - p).ln();
    if log_q == 0.0 {
        // p below ~2^-53: `1 - p` rounded to 1. The success probability of
        // the whole experiment is n·p < 1e-13 — sample that single event
        // instead of dividing by zero (which would yield n successes).
        return u32::from(rng.gen::<f64>() < n as f64 * p);
    }
    let mut successes = 0u32;
    let mut trials_used = 0u64;
    let n64 = n as u64;
    loop {
        // Geometric(p) gap: number of failures before the next success.
        let u: f64 = loop {
            let u = rng.gen::<f64>();
            if u > 0.0 {
                break u;
            }
        };
        let gap = (u.ln() / log_q).floor() as u64 + 1;
        trials_used += gap;
        if trials_used > n64 {
            return successes;
        }
        successes += 1;
    }
}

/// Samples a multinomial allocation of `n` trials over `probs` categories by
/// sequential conditional binomials. `probs` must sum to ≈1.
///
/// # Panics
///
/// Panics if `probs` is empty, contains negatives, or sums far from 1.
pub fn sample_multinomial<R: Rng + ?Sized>(rng: &mut R, n: u32, probs: &[f64]) -> Vec<u32> {
    assert!(!probs.is_empty(), "multinomial needs at least one category");
    let total: f64 = probs.iter().sum();
    assert!(
        (total - 1.0).abs() < 1e-6,
        "multinomial probabilities sum to {total}, want 1"
    );
    assert!(
        probs.iter().all(|&p| p >= 0.0),
        "multinomial probabilities must be nonnegative"
    );
    let mut out = Vec::with_capacity(probs.len());
    let mut remaining_n = n;
    let mut remaining_p = 1.0f64;
    for (i, &p) in probs.iter().enumerate() {
        if i == probs.len() - 1 {
            out.push(remaining_n);
            break;
        }
        let cond = if remaining_p <= 0.0 {
            0.0
        } else {
            (p / remaining_p).clamp(0.0, 1.0)
        };
        let k = sample_binomial(rng, remaining_n, cond);
        out.push(k);
        remaining_n -= k;
        remaining_p -= p;
    }
    out
}

/// Samples without replacement: picks `k` distinct indices from `0..n`
/// (Floyd's algorithm), returned in unspecified order.
///
/// # Panics
///
/// Panics if `k > n`.
pub fn sample_distinct_indices<R: Rng + ?Sized>(rng: &mut R, n: usize, k: usize) -> Vec<usize> {
    assert!(k <= n, "cannot sample {k} distinct from {n}");
    let mut chosen = std::collections::HashSet::with_capacity(k);
    let mut out = Vec::with_capacity(k);
    for j in (n - k)..n {
        let t = rng.gen_range(0..=j);
        let pick = if chosen.contains(&t) { j } else { t };
        chosen.insert(pick);
        out.push(pick);
    }
    out
}

/// Deviate from `N(mu, sigma²)` computed by inversion from a single uniform —
/// useful when exactly one RNG draw per sample is required for
/// counter-based reproducibility.
pub fn sample_normal_inv<R: Rng + ?Sized>(rng: &mut R, mu: f64, sigma: f64) -> f64 {
    let u: f64 = loop {
        let u = rng.gen::<f64>();
        if u > 0.0 && u < 1.0 {
            break u;
        }
    };
    mu + sigma * norm_ppf(u)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn binomial_mean_and_variance() {
        let mut rng = StdRng::seed_from_u64(42);
        let (n, p, reps) = (200u32, 0.07, 20_000);
        let mut sum = 0.0;
        let mut sumsq = 0.0;
        for _ in 0..reps {
            let k = sample_binomial(&mut rng, n, p) as f64;
            sum += k;
            sumsq += k * k;
        }
        let mean = sum / reps as f64;
        let var = sumsq / reps as f64 - mean * mean;
        let want_mean = n as f64 * p;
        let want_var = n as f64 * p * (1.0 - p);
        assert!(
            (mean - want_mean).abs() < 0.15,
            "mean {mean} want {want_mean}"
        );
        assert!((var - want_var).abs() < 0.6, "var {var} want {want_var}");
    }

    #[test]
    fn binomial_high_p_symmetry() {
        let mut rng = StdRng::seed_from_u64(43);
        let mut sum = 0u64;
        for _ in 0..10_000 {
            sum += sample_binomial(&mut rng, 50, 0.9) as u64;
        }
        let mean = sum as f64 / 10_000.0;
        assert!((mean - 45.0).abs() < 0.2, "mean {mean}");
    }

    #[test]
    fn binomial_subnormal_p_returns_zero() {
        // Regression: p so small that ln(1-p) == 0 used to return n.
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..1000 {
            assert_eq!(sample_binomial(&mut rng, 288, 1e-323), 0);
            assert_eq!(sample_binomial(&mut rng, 288, 1e-17), 0);
        }
    }

    #[test]
    fn binomial_bounds() {
        let mut rng = StdRng::seed_from_u64(44);
        for _ in 0..1000 {
            let k = sample_binomial(&mut rng, 17, 0.3);
            assert!(k <= 17);
        }
    }

    #[test]
    fn multinomial_totals_and_means() {
        let mut rng = StdRng::seed_from_u64(45);
        let probs = [0.1, 0.2, 0.3, 0.4];
        let mut sums = [0u64; 4];
        for _ in 0..5_000 {
            let ks = sample_multinomial(&mut rng, 100, &probs);
            assert_eq!(ks.iter().sum::<u32>(), 100);
            for (s, k) in sums.iter_mut().zip(&ks) {
                *s += *k as u64;
            }
        }
        for (i, s) in sums.iter().enumerate() {
            let mean = *s as f64 / 5_000.0;
            let want = 100.0 * probs[i];
            assert!(
                (mean - want).abs() < 0.5,
                "cat {i}: mean {mean} want {want}"
            );
        }
    }

    #[test]
    fn truncated_normal_respects_band() {
        let mut rng = StdRng::seed_from_u64(46);
        for _ in 0..2000 {
            let x = sample_truncated_normal(&mut rng, 5.0, 0.2, 0.3);
            assert!((x - 5.0).abs() <= 0.3);
        }
    }

    #[test]
    fn distinct_indices_are_distinct() {
        let mut rng = StdRng::seed_from_u64(47);
        for _ in 0..100 {
            let v = sample_distinct_indices(&mut rng, 50, 20);
            let set: std::collections::HashSet<_> = v.iter().collect();
            assert_eq!(set.len(), 20);
            assert!(v.iter().all(|&i| i < 50));
        }
    }

    #[test]
    fn lognormal_median() {
        let mut rng = StdRng::seed_from_u64(48);
        let mut vals: Vec<f64> = (0..9_999)
            .map(|_| sample_lognormal(&mut rng, (0.04f64).ln(), 0.4))
            .collect();
        vals.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let median = vals[vals.len() / 2];
        assert!((median - 0.04).abs() / 0.04 < 0.05, "median {median}");
    }

    #[test]
    fn normal_inv_matches_moments() {
        let mut rng = StdRng::seed_from_u64(49);
        let mut sum = 0.0;
        for _ in 0..20_000 {
            sum += sample_normal_inv(&mut rng, 1.5, 0.5);
        }
        assert!((sum / 20_000.0 - 1.5).abs() < 0.02);
    }
}
