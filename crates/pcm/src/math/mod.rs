//! In-tree numerical substrate: special functions, quadrature, and samplers.
//!
//! Everything the drift/error math needs is implemented here so the device
//! model has no external math dependencies and stays reproducible.

mod erf;
mod gauss;
mod sample;

pub use erf::{erf, erfc, norm_cdf, norm_pdf, norm_ppf, norm_sf};
pub use gauss::GaussHermite;
pub use sample::{
    sample_binomial, sample_binomial4, sample_distinct_indices, sample_lognormal,
    sample_multinomial, sample_multinomial_into, sample_normal, sample_normal_inv,
    sample_std_normal, sample_truncated_normal, PrecomputedMultinomial,
};
