//! Whole-device configuration: levels + noise + drift + thresholds +
//! energy + endurance, assembled through a builder.

use std::sync::{Arc, Mutex};

use crate::drift::{DriftModel, DriftParams, SensingMode};
use crate::endurance::EnduranceSpec;
use crate::energy::EnergyParams;
use crate::level::LevelStack;
use crate::noise::NoiseParams;
use crate::threshold::{ThresholdPlacement, Thresholds};

/// Complete PCM device description.
///
/// Construct via [`DeviceConfig::builder`]; the default configuration is the
/// evaluation's nominal 2-bit MLC device with midpoint thresholds.
///
/// # Examples
///
/// ```
/// use pcm_model::{DeviceConfig, ThresholdPlacement};
/// let dev = DeviceConfig::builder()
///     .threshold_placement(ThresholdPlacement::drift_aware_default())
///     .build();
/// assert_eq!(dev.stack().num_levels(), 4);
/// let model = dev.drift_model();
/// assert!(model.p_up(2, 3600.0) < 1.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceConfig {
    stack: LevelStack,
    noise: NoiseParams,
    drift: DriftParams,
    placement: ThresholdPlacement,
    energy: EnergyParams,
    endurance: EnduranceSpec,
    sensing: SensingMode,
}

impl DeviceConfig {
    /// Starts a builder preloaded with the nominal MLC-2 device.
    pub fn builder() -> DeviceConfigBuilder {
        DeviceConfigBuilder::default()
    }

    /// The level stack.
    pub fn stack(&self) -> &LevelStack {
        &self.stack
    }

    /// Noise parameters.
    pub fn noise(&self) -> &NoiseParams {
        &self.noise
    }

    /// Drift-exponent distribution parameters.
    pub fn drift(&self) -> &DriftParams {
        &self.drift
    }

    /// Threshold placement strategy.
    pub fn placement(&self) -> &ThresholdPlacement {
        &self.placement
    }

    /// Energy parameters.
    pub fn energy(&self) -> &EnergyParams {
        &self.energy
    }

    /// Endurance distribution.
    pub fn endurance(&self) -> &EnduranceSpec {
        &self.endurance
    }

    /// Sensing mode (fixed vs. time-aware).
    pub fn sensing(&self) -> SensingMode {
        self.sensing
    }

    /// Materializes the sense thresholds for this configuration.
    pub fn thresholds(&self) -> Thresholds {
        self.placement
            .build(&self.stack, &self.noise, self.drift.t0_s)
    }

    /// Builds the analytic drift model (precomputes LUTs; construction is
    /// the expensive step, evaluation is cheap).
    pub fn drift_model(&self) -> DriftModel {
        DriftModel::with_sensing(
            self.stack.clone(),
            self.noise,
            self.thresholds(),
            self.drift,
            self.sensing,
        )
    }

    /// Shared drift model from a process-wide cache keyed on the device
    /// configuration. LUT construction integrates Gauss–Hermite quadrature
    /// over hundreds of grid points, so experiments that instantiate many
    /// simulations of the same device (seed sweeps, policy rosters,
    /// parallel fan-out) would otherwise rebuild identical tables dozens
    /// of times; with the cache they build each distinct device's tables
    /// exactly once and share them across threads.
    pub fn drift_model_shared(&self) -> Arc<DriftModel> {
        static CACHE: Mutex<Vec<(DeviceConfig, Arc<DriftModel>)>> = Mutex::new(Vec::new());
        let mut cache = CACHE.lock().unwrap();
        if let Some((_, model)) = cache.iter().find(|(cfg, _)| cfg == self) {
            return Arc::clone(model);
        }
        let model = Arc::new(self.drift_model());
        // Distinct device configs per process number in the tens at most
        // (sensitivity sweeps); an unbounded linear-scan list is fine.
        cache.push((self.clone(), Arc::clone(&model)));
        model
    }
}

impl Default for DeviceConfig {
    fn default() -> Self {
        DeviceConfig::builder().build()
    }
}

/// Builder for [`DeviceConfig`].
#[derive(Debug, Clone)]
pub struct DeviceConfigBuilder {
    stack: LevelStack,
    noise: NoiseParams,
    drift: DriftParams,
    placement: ThresholdPlacement,
    energy: EnergyParams,
    endurance: EnduranceSpec,
    sensing: SensingMode,
}

impl Default for DeviceConfigBuilder {
    fn default() -> Self {
        Self {
            stack: LevelStack::standard_mlc2(),
            noise: NoiseParams::default(),
            drift: DriftParams::default(),
            placement: ThresholdPlacement::Midpoint,
            energy: EnergyParams::default(),
            endurance: EnduranceSpec::default(),
            sensing: SensingMode::Fixed,
        }
    }
}

impl DeviceConfigBuilder {
    /// Sets the level stack.
    pub fn stack(&mut self, stack: LevelStack) -> &mut Self {
        self.stack = stack;
        self
    }

    /// Sets noise parameters.
    pub fn noise(&mut self, noise: NoiseParams) -> &mut Self {
        self.noise = noise;
        self
    }

    /// Sets drift parameters.
    pub fn drift(&mut self, drift: DriftParams) -> &mut Self {
        self.drift = drift;
        self
    }

    /// Sets the threshold placement strategy.
    pub fn threshold_placement(&mut self, placement: ThresholdPlacement) -> &mut Self {
        self.placement = placement;
        self
    }

    /// Sets energy parameters.
    pub fn energy(&mut self, energy: EnergyParams) -> &mut Self {
        self.energy = energy;
        self
    }

    /// Sets the endurance distribution.
    pub fn endurance(&mut self, endurance: EnduranceSpec) -> &mut Self {
        self.endurance = endurance;
        self
    }

    /// Sets the sensing mode (fixed vs. time-aware).
    pub fn sensing(&mut self, sensing: SensingMode) -> &mut Self {
        self.sensing = sensing;
        self
    }

    /// Finalizes the configuration.
    pub fn build(&self) -> DeviceConfig {
        DeviceConfig {
            stack: self.stack.clone(),
            noise: self.noise,
            drift: self.drift,
            placement: self.placement.clone(),
            energy: self.energy,
            endurance: self.endurance,
            sensing: self.sensing,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_device_is_mlc2_midpoint() {
        let dev = DeviceConfig::default();
        assert_eq!(dev.stack().num_levels(), 4);
        assert_eq!(dev.thresholds().bounds(), &[3.5, 4.5, 5.5]);
    }

    #[test]
    fn builder_overrides_stick() {
        let dev = DeviceConfig::builder()
            .stack(LevelStack::standard_slc())
            .endurance(EnduranceSpec::nominal())
            .build();
        assert_eq!(dev.stack().num_levels(), 2);
        assert_eq!(dev.endurance().median_writes, 1e8);
    }

    #[test]
    fn drift_model_roundtrip() {
        let dev = DeviceConfig::default();
        let m = dev.drift_model();
        assert_eq!(m.stack().num_levels(), 4);
    }

    #[test]
    fn shared_drift_model_is_cached_and_thread_safe() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DriftModel>();
        let dev = DeviceConfig::default();
        let a = dev.drift_model_shared();
        let b = dev.drift_model_shared();
        assert!(Arc::ptr_eq(&a, &b), "same config must share one model");
        let other = DeviceConfig::builder()
            .threshold_placement(ThresholdPlacement::drift_aware_default())
            .build();
        let c = other.drift_model_shared();
        assert!(!Arc::ptr_eq(&a, &c), "distinct configs get distinct models");
    }
}
