//! `scrubctl` — client CLI for the `scrubd` fleet service.
//!
//! ```text
//! scrubctl --control DIR status                      # fleet + shard table
//! scrubctl --control DIR slo                         # per-tenant service levels
//! scrubctl --control DIR rollup                      # merged fleet telemetry (JSON)
//! scrubctl --control DIR migrate --shard N [--worker M]
//! scrubctl --control DIR snapshot                    # checkpoint every shard
//! scrubctl --control DIR stop                        # end the run early
//! ```
//!
//! Reads the daemon's atomically-published `status.json` / `rollup.json`
//! and drops numbered command files the daemon consumes at cadence
//! boundaries. Commands that name fleet objects (a shard id) are
//! validated against the latest status document *before* submission, so
//! typos fail here — one line on stderr, exit 2 — instead of being
//! silently ignored by the daemon.

use scrubd::status::{self, FleetStatus};
use scrubd::{Command, ControlDir};

fn fail(msg: &str) -> ! {
    eprintln!("scrubctl: {msg}");
    std::process::exit(2);
}

fn usage() -> ! {
    eprintln!(
        "usage: scrubctl --control DIR (status | slo | rollup | migrate --shard N \
         [--worker M] | snapshot | stop)"
    );
    std::process::exit(2);
}

fn load_status(ctl: &ControlDir) -> FleetStatus {
    let path = ctl.status_path();
    let text = std::fs::read_to_string(&path).unwrap_or_else(|_| {
        fail(&format!(
            "no fleet status at {} (is scrubd running with this --control dir?)",
            path.display()
        ))
    });
    status::parse(&text).unwrap_or_else(|e| fail(&format!("malformed status document: {e}")))
}

fn print_status(s: &FleetStatus) {
    let quarantine_note = if s.quarantined > 0 {
        format!(" | {} QUARANTINED", s.quarantined)
    } else {
        String::new()
    };
    println!(
        "fleet: {} | round {} | t={:.0}s / {:.0}s | {} banks in {} shards | policy {}{}",
        s.state.name(),
        s.round,
        s.clock_s,
        s.horizon_s,
        s.banks,
        s.shards.len(),
        s.policy,
        quarantine_note
    );
    println!(
        "{:>5} {:>6} {:>10} {:>10} {:>12} {:>6} {:>12}",
        "shard", "worker", "clock_s", "migrations", "demand_ops", "ue", "health"
    );
    for sh in &s.shards {
        println!(
            "{:>5} {:>6} {:>10.0} {:>10} {:>12} {:>6} {:>12}",
            sh.id, sh.worker, sh.clock_s, sh.migrations, sh.demand_ops, sh.ue, sh.health
        );
    }
}

fn print_slo(s: &FleetStatus) {
    println!(
        "{:<16} {:>14} {:>12} {:>12} {:>10}",
        "tenant", "expected_ops", "reads", "writes", "attainment"
    );
    for t in &s.slo {
        println!(
            "{:<16} {:>14.0} {:>12} {:>12} {:>10.3}",
            t.name, t.expected_ops, t.reads, t.writes, t.attainment
        );
    }
}

fn main() {
    let mut control: Option<String> = None;
    let mut verb: Option<String> = None;
    let mut shard: Option<u32> = None;
    let mut worker: Option<u32> = None;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = || {
            it.next()
                .unwrap_or_else(|| fail(&format!("{arg} requires a value")))
        };
        let int_value = |raw: String, what: &str| -> u32 {
            raw.parse().unwrap_or_else(|_| {
                fail(&format!(
                    "{what} must be a non-negative integer, got {raw:?}"
                ))
            })
        };
        match arg.as_str() {
            "--control" => control = Some(value()),
            "--shard" => shard = Some(int_value(value(), "--shard")),
            "--worker" => worker = Some(int_value(value(), "--worker")),
            "status" | "slo" | "rollup" | "migrate" | "snapshot" | "stop" => {
                if verb.is_some() {
                    usage();
                }
                verb = Some(arg);
            }
            _ => usage(),
        }
    }
    let control = control.unwrap_or_else(|| fail("--control is required"));
    let verb = verb.unwrap_or_else(|| usage());
    let ctl = ControlDir::new(&control);
    if shard.is_some() && verb != "migrate" {
        fail("--shard only applies to migrate");
    }
    if worker.is_some() && verb != "migrate" {
        fail("--worker only applies to migrate");
    }
    match verb.as_str() {
        "status" => print_status(&load_status(&ctl)),
        "slo" => print_slo(&load_status(&ctl)),
        "rollup" => {
            let path = ctl.rollup_path();
            let text = std::fs::read_to_string(&path)
                .unwrap_or_else(|_| fail(&format!("no fleet rollup at {}", path.display())));
            print!("{text}");
        }
        "migrate" => {
            let shard = shard.unwrap_or_else(|| fail("migrate requires --shard N"));
            let status = load_status(&ctl);
            match status.shards.iter().find(|s| s.id == shard) {
                None => fail(&format!(
                    "unknown shard id {shard} (fleet has {})",
                    status.shards.len()
                )),
                Some(row) if row.health != "healthy" => fail(&format!(
                    "shard {shard} is {}; only healthy shards can migrate",
                    row.health
                )),
                Some(_) => {}
            }
            // Chain after the daemon's published watermark: consumed
            // command files are deleted, so the watermark is the only
            // way to avoid reusing an already-consumed sequence number.
            let path = ctl
                .submit(&Command::Migrate { shard, worker }, status.cmd_seq)
                .unwrap_or_else(|e| fail(&e));
            println!("submitted {}", path.display());
        }
        "snapshot" | "stop" => {
            let status = load_status(&ctl); // a control dir nobody serves is an error
            let cmd = if verb == "snapshot" {
                Command::Snapshot
            } else {
                Command::Stop
            };
            let path = ctl
                .submit(&cmd, status.cmd_seq)
                .unwrap_or_else(|e| fail(&e));
            println!("submitted {}", path.display());
        }
        _ => usage(),
    }
}
