//! CLI contract for `scrubctl`.
//!
//! Negative paths exit 2 with one stderr line (missing flags, a control
//! dir nobody serves, unknown shard ids on migrate, misplaced flags).
//! Positive paths run against a fabricated control dir populated with a
//! real fleet's status/rollup via the `scrubd` library — no daemon
//! process needed, so these are deterministic.

use std::path::PathBuf;
use std::process::{Command as Proc, Output};

use scrubd::status::{self, FleetState};
use scrubd::{ControlDir, Fleet, FleetConfig};

fn scrubctl(args: &[&str]) -> Output {
    Proc::new(env!("CARGO_BIN_EXE_scrubctl"))
        .args(args)
        .output()
        .expect("spawn scrubctl")
}

fn assert_rejected(args: &[&str], needle: &str) {
    let out = scrubctl(args);
    assert_eq!(
        out.status.code(),
        Some(2),
        "{args:?} should exit 2\nstderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(
        stderr.trim_end().lines().count(),
        1,
        "{args:?} should print one line, got:\n{stderr}"
    );
    assert!(
        stderr.contains(needle),
        "{args:?} stderr should mention {needle:?}:\n{stderr}"
    );
}

/// Builds a served control dir: a real 4-shard fleet advanced one round,
/// status + rollup published the way `scrubd` publishes them.
fn served_control(tag: &str) -> (ControlDir, PathBuf) {
    let dir = std::env::temp_dir().join(format!("scrubctl-cli-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let config: FleetConfig = "[fleet]\n\
         banks = 8\n\
         lines-per-bank = 32\n\
         shards = 4\n\
         seed = 3\n\
         horizon-s = 600\n\
         cadence-s = 300\n\
         policy = basic@300\n\
         engine = event\n\
         threads = 2\n\
         [tenants]\n\
         mix = alpha:rate=40;beta:rate=10,read=0.5\n"
        .parse()
        .expect("valid config");
    let mut fleet = Fleet::new(config);
    fleet.advance_round();
    let ctl = ControlDir::new(&dir);
    ctl.ensure_layout().expect("layout");
    ctl.write_atomic(
        &ctl.status_path(),
        status::render(&fleet, FleetState::Running, None).as_bytes(),
    )
    .expect("publish status");
    ctl.write_atomic(&ctl.rollup_path(), fleet.rollup().to_json().as_bytes())
        .expect("publish rollup");
    (ctl, dir)
}

#[test]
fn rejects_missing_and_misplaced_flags() {
    assert_rejected(&[], "--control is required");
    assert_rejected(&["status"], "--control is required");
    assert_rejected(&["--control"], "--control requires a value");
    let (_, dir) = served_control("flags");
    let ctl = dir.to_str().unwrap();
    assert_rejected(&["--control", ctl], "usage");
    assert_rejected(&["--control", ctl, "reboot"], "usage");
    assert_rejected(&["--control", ctl, "status", "slo"], "usage");
    assert_rejected(
        &["--control", ctl, "status", "--shard", "1"],
        "--shard only applies to migrate",
    );
    assert_rejected(
        &["--control", ctl, "stop", "--worker", "1"],
        "--worker only applies to migrate",
    );
    assert_rejected(
        &["--control", ctl, "migrate", "--shard", "x"],
        "--shard must be a non-negative integer",
    );
    assert_rejected(&["--control", ctl, "migrate"], "migrate requires --shard");
}

#[test]
fn rejects_a_control_dir_nobody_serves() {
    let empty = std::env::temp_dir().join(format!("scrubctl-unserved-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&empty);
    std::fs::create_dir_all(&empty).expect("mkdir");
    let ctl = empty.to_str().unwrap().to_owned();
    assert_rejected(&["--control", &ctl, "status"], "no fleet status");
    assert_rejected(&["--control", &ctl, "stop"], "no fleet status");
    assert_rejected(
        &["--control", &ctl, "migrate", "--shard", "0"],
        "no fleet status",
    );
}

#[test]
fn migrate_validates_the_shard_id_before_submitting() {
    let (ctl, dir) = served_control("badshard");
    assert_rejected(
        &[
            "--control",
            dir.to_str().unwrap(),
            "migrate",
            "--shard",
            "9",
        ],
        "unknown shard id 9",
    );
    assert!(
        ctl.pending().expect("listable").is_empty(),
        "a rejected migrate must not enqueue a command"
    );
}

#[test]
fn status_slo_and_rollup_render_the_published_fleet() {
    let (ctl, dir) = served_control("render");
    let dir = dir.to_str().unwrap();

    let out = scrubctl(&["--control", dir, "status"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("running"), "{text}");
    assert!(text.contains("8 banks in 4 shards"), "{text}");

    let out = scrubctl(&["--control", dir, "slo"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("alpha") && text.contains("beta"), "{text}");

    // rollup passes the published JSON through untouched.
    let out = scrubctl(&["--control", dir, "rollup"]);
    assert!(out.status.success());
    let published = std::fs::read(ctl.rollup_path()).expect("rollup.json");
    assert_eq!(out.stdout, published, "rollup must be verbatim");
}

#[test]
fn control_verbs_enqueue_commands_in_order() {
    let (ctl, dir) = served_control("enqueue");
    let dir = dir.to_str().unwrap();
    for args in [
        vec!["--control", dir, "migrate", "--shard", "2", "--worker", "1"],
        vec!["--control", dir, "snapshot"],
        vec!["--control", dir, "stop"],
    ] {
        let out = scrubctl(&args);
        assert!(
            out.status.success(),
            "{args:?} failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        assert!(String::from_utf8_lossy(&out.stdout).contains("submitted"));
    }
    let intake = ctl.take_pending(None).expect("consumable");
    let pending: Vec<_> = intake
        .commands
        .into_iter()
        .map(|c| c.expect("well-formed").to_string())
        .collect();
    assert_eq!(
        pending,
        ["migrate shard=2 worker=1", "snapshot", "stop"],
        "commands must drain in submission order"
    );
}
