//! Crash-resilience tests for the pool: a panicking job must surface as a
//! structured per-job error while every other job completes with results
//! byte-identical to a clean run, bounded retry must recover flaky jobs,
//! and `par_map`'s panic path must propagate instead of hanging.

use std::panic;
use std::sync::atomic::{AtomicU32, Ordering};

use scrub_exec::{env_threads, par_map, par_try_map, JobError};

/// Runs `f` with the default panic hook silenced, so deliberately
/// panicking jobs don't spray backtraces over the test output.
fn quietly<R>(f: impl FnOnce() -> R) -> R {
    let hook = panic::take_hook();
    panic::set_hook(Box::new(|_| {}));
    let r = f();
    panic::set_hook(hook);
    r
}

fn job(i: usize, x: &u64) -> String {
    format!("job {i} -> {}", x * x + 17)
}

#[test]
fn panicking_job_is_isolated_and_others_are_byte_identical() {
    let items: Vec<u64> = (0..48).collect();
    let clean: Vec<Result<String, JobError>> = par_try_map(1, items.clone(), 0, job);
    for threads in [1, 4, 8] {
        let got = quietly(|| {
            par_try_map(threads, items.clone(), 0, |i, x| {
                if i == 13 {
                    panic!("poisoned rep {i}");
                }
                job(i, x)
            })
        });
        assert_eq!(got.len(), items.len());
        match &got[13] {
            Err(JobError::Panicked { attempts, message }) => {
                assert_eq!(*attempts, 1);
                assert!(message.contains("poisoned rep 13"), "message={message}");
            }
            other => panic!("expected panic error at index 13, got {other:?}"),
        }
        for (i, r) in got.iter().enumerate() {
            if i != 13 {
                assert_eq!(r, &clean[i], "threads={threads} index={i}");
            }
        }
    }
}

#[test]
fn bounded_retry_recovers_a_flaky_job() {
    let fails_left = AtomicU32::new(2);
    let got = quietly(|| {
        par_try_map(4, (0..16u64).collect(), 2, |i, x| {
            if i == 5
                && fails_left
                    .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
                    .is_ok()
            {
                panic!("transient failure");
            }
            job(i, x)
        })
    });
    assert!(
        got.iter().all(Result::is_ok),
        "retries should recover: {got:?}"
    );
    assert_eq!(got[5].as_ref().unwrap(), &job(5, &5));
}

#[test]
fn retry_exhaustion_reports_attempt_count() {
    let got = quietly(|| {
        par_try_map(2, vec![0u64, 1], 2, |i, x| {
            if i == 0 {
                panic!("always fails");
            }
            job(i, x)
        })
    });
    match &got[0] {
        Err(JobError::Panicked { attempts, message }) => {
            assert_eq!(*attempts, 3, "1 initial + 2 retries");
            assert!(message.contains("always fails"));
        }
        other => panic!("expected exhausted retries, got {other:?}"),
    }
    assert!(got[1].is_ok());
}

#[test]
fn par_map_panic_propagates_instead_of_hanging() {
    let r = quietly(|| {
        panic::catch_unwind(panic::AssertUnwindSafe(|| {
            par_map(4, (0..32u64).collect(), |i, x| {
                if i == 7 {
                    panic!("worker died");
                }
                x + 1
            })
        }))
    });
    assert!(r.is_err(), "panic must propagate out of par_map");
}

#[test]
fn job_error_display_is_actionable() {
    let e = JobError::Panicked {
        attempts: 3,
        message: "boom".into(),
    };
    assert_eq!(e.to_string(), "job panicked after 3 attempt(s): boom");
    assert_eq!(
        JobError::Lost.to_string(),
        "job lost: worker died before producing a result"
    );
}

#[test]
fn env_threads_is_strict() {
    // All SCRUBSIM_THREADS manipulation lives in this one test: the
    // variable is process-global and integration tests share a process.
    std::env::remove_var("SCRUBSIM_THREADS");
    assert_eq!(env_threads(), Ok(None));
    std::env::set_var("SCRUBSIM_THREADS", "6");
    assert_eq!(env_threads(), Ok(Some(6)));
    std::env::set_var("SCRUBSIM_THREADS", " 2 ");
    assert_eq!(env_threads(), Ok(Some(2)));
    for bad in ["0", "-3", "eight", "4.5", ""] {
        std::env::set_var("SCRUBSIM_THREADS", bad);
        let err = env_threads().expect_err(bad);
        assert!(err.contains("positive integer"), "{bad:?} -> {err}");
    }
    std::env::remove_var("SCRUBSIM_THREADS");
}
