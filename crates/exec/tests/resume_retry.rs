//! Regression test for retrying *resumed* jobs: when a `par_try_map` job
//! resumes a simulation from checkpoint bytes and panics mid-segment, the
//! retry resumes from the same immutable bytes and must land exactly
//! where a never-failing job lands.
//!
//! The hazard: `Simulation::new` re-runs the fault-campaign injection
//! (drawing from the campaign seed and mutating line state) before
//! `resume` overlays the snapshot. If restore missed any campaign-touched
//! state, the first attempt's partial execution wouldn't matter — but a
//! *re*-resume after a panic would inherit freshly re-drawn randomness
//! and silently diverge. Retries must be idempotent: same bytes in, same
//! trajectory out.

use std::panic;
use std::sync::atomic::{AtomicBool, Ordering};

use scrub_core::{DemandTraffic, PolicyKind, SimConfig, SimReport, Simulation};
use scrub_exec::{par_try_map, JobError};

/// Runs `f` with the default panic hook silenced, so deliberately
/// panicking jobs don't spray backtraces over the test output.
fn quietly<R>(f: impl FnOnce() -> R) -> R {
    let hook = panic::take_hook();
    panic::set_hook(Box::new(|_| {}));
    let r = f();
    panic::set_hook(hook);
    r
}

/// A run whose trajectory depends on every state family a snapshot
/// carries: an active fault campaign (stuck cells + timed SEUs), the
/// repair hierarchy, and scrub randomness.
fn config(seed: u64) -> SimConfig {
    let mut b = SimConfig::builder();
    b.num_lines(512)
        .policy(PolicyKind::combined_default(900.0))
        .traffic(DemandTraffic::Idle)
        .horizon_s(2.0 * 3600.0)
        .seed(seed)
        .threads(1)
        .fault_campaign(
            "seed=41;stuck=lines:16,cells:3;seu=lines:64,count:2,window:1800"
                .parse::<pcm_memsim::CampaignSpec>()
                .expect("valid campaign spec"),
        )
        .repair(pcm_memsim::RepairConfig::default());
    b.build()
}

#[test]
fn retried_resume_job_replays_identical_randomness() {
    // Ground truth: each seed's continuous run.
    let seeds = [3u64, 4, 5];
    let continuous: Vec<SimReport> = seeds
        .iter()
        .map(|&s| Simulation::new(config(s)).run())
        .collect();

    // Mid-run snapshots, one per seed — taken once, then treated as the
    // immutable artifact a resumed job would read from disk.
    let snapshots: Vec<Vec<u8>> = seeds
        .iter()
        .map(|&s| {
            let mut sim = Simulation::new(config(s));
            sim.run_to(3600.0);
            sim.checkpoint().expect("checkpoint")
        })
        .collect();

    // Job 1 panics on its first attempt, *after* resuming and advancing
    // partway — the worst case, since the doomed attempt has already
    // consumed randomness when it dies.
    let poisoned = AtomicBool::new(true);
    let results = quietly(|| {
        par_try_map(2, seeds.to_vec(), 1, |i, &seed| {
            let mut sim =
                Simulation::resume(config(seed), &snapshots[i]).expect("resume from snapshot");
            sim.run_to(5400.0);
            if i == 1 && poisoned.swap(false, Ordering::SeqCst) {
                panic!("worker died mid-segment");
            }
            sim.finish()
        })
    });

    for (i, (result, want)) in results.iter().zip(&continuous).enumerate() {
        let report = result.as_ref().unwrap_or_else(|e| {
            panic!("job {i} failed: {e}");
        });
        assert_eq!(
            report, want,
            "job {i}: resumed (and retried) run diverged from continuous"
        );
    }
    assert!(
        !poisoned.load(Ordering::SeqCst),
        "the poisoned attempt never ran"
    );
}

#[test]
fn exhausted_retries_still_isolate_the_resumed_job() {
    let bytes = {
        let mut sim = Simulation::new(config(9));
        sim.run_to(3600.0);
        sim.checkpoint().expect("checkpoint")
    };
    let results = quietly(|| {
        par_try_map(2, vec![0u32, 1], 0, |i, _| {
            let sim = Simulation::resume(config(9), &bytes).expect("resume");
            if i == 0 {
                panic!("always fails");
            }
            sim.finish()
        })
    });
    assert!(
        matches!(&results[0], Err(JobError::Panicked { attempts: 1, .. })),
        "{:?}",
        results[0]
    );
    // The healthy job still equals the continuous run.
    let want = Simulation::new(config(9)).run();
    assert_eq!(results[1].as_ref().unwrap(), &want);
}
