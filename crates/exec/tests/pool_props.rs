//! Property tests for the execution pool's determinism contract: results
//! are identical for any worker count (the inline path, a couple of
//! workers, heavy oversubscription), and empty/degenerate job lists never
//! panic.

use proptest::prelude::*;
use std::sync::atomic::{AtomicU32, Ordering};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// par_map output equals the serial map for 1/2/8 workers over
    /// randomized job counts and contents, including sizes around the
    /// partition boundaries (0, 1, threads, threads ± 1, …).
    #[test]
    fn par_map_matches_serial_for_any_worker_count(
        items in proptest::collection::vec(0u64..1_000_000, 0..80),
        salt in 0u64..1_000,
    ) {
        let serial: Vec<u64> = items
            .iter()
            .enumerate()
            .map(|(i, &x)| x.wrapping_mul(31).wrapping_add(i as u64 ^ salt))
            .collect();
        for threads in [1usize, 2, 8] {
            let got = scrub_exec::par_map(threads, items.clone(), |i, x| {
                x.wrapping_mul(31).wrapping_add(i as u64 ^ salt)
            });
            prop_assert_eq!(&got, &serial, "threads = {}", threads);
        }
    }

    /// run_indices visits every index exactly once for any worker count,
    /// including worker counts exceeding the job count.
    #[test]
    fn run_indices_is_exactly_once_for_any_worker_count(
        n in 0usize..200,
        threads in 1usize..12,
    ) {
        let counts: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
        scrub_exec::run_indices(threads, n, |i| {
            counts[i].fetch_add(1, Ordering::Relaxed);
        });
        for (i, c) in counts.iter().enumerate() {
            prop_assert_eq!(c.load(Ordering::Relaxed), 1, "index {} missed or repeated", i);
        }
    }

    /// par_for_each_mut writes every slot exactly once regardless of
    /// scheduling, so its effect equals the serial loop.
    #[test]
    fn par_for_each_mut_matches_serial(
        data in proptest::collection::vec(0u64..1_000, 0..120),
        threads in 1usize..9,
    ) {
        let mut data = data;
        let mut expect = data.clone();
        for (i, x) in expect.iter_mut().enumerate() {
            *x = x.wrapping_add(i as u64 * 7 + 1);
        }
        scrub_exec::par_for_each_mut(threads, &mut data, |i, x| {
            *x = x.wrapping_add(i as u64 * 7 + 1);
        });
        prop_assert_eq!(data, expect);
    }
}

/// Empty job lists are a hard edge case (the scoped-spawn path divides the
/// index space by the worker count): must be panic-free at every arity.
#[test]
fn empty_job_lists_are_panic_free() {
    for threads in 0..=8 {
        scrub_exec::run_indices(threads, 0, |_| panic!("no index should fire"));
        let out: Vec<u64> = scrub_exec::par_map(threads, Vec::<u64>::new(), |_, x| x);
        assert!(out.is_empty());
        let mut empty: [u64; 0] = [];
        scrub_exec::par_for_each_mut(threads, &mut empty, |_, _| panic!("no element"));
    }
}

/// Zero workers degrade to the inline path rather than hanging or
/// panicking.
#[test]
fn zero_threads_runs_inline() {
    let got = scrub_exec::par_map(0, vec![1u64, 2, 3], |_, x| x * 2);
    assert_eq!(got, vec![2, 4, 6]);
}
