//! # scrub-exec — deterministic scoped parallel execution
//!
//! A minimal work-stealing job pool built on `std::thread::scope`, with no
//! external dependencies. It exists to fan out *independent, deterministic*
//! jobs — whole simulations in the bench harness (Tier A) and per-bank
//! sweep shards inside one simulation (Tier B) — without changing any
//! result bit.
//!
//! Determinism contract: jobs must not communicate, and every result is
//! keyed by its input index. [`par_map`] returns results in input order and
//! [`par_for_each_mut`] mutates disjoint elements, so output is identical
//! for any thread count, including the inline `threads <= 1` path (which
//! spawns nothing).
//!
//! Scheduling: the index space is split into one contiguous range per
//! worker, each packed into a single `AtomicU64` (start in the low half,
//! end in the high half). A worker pops from the *front* of its own range
//! and, when empty, steals from the *back* of the longest remaining
//! victim — classic work-stealing without per-task queues.
//!
//! # Examples
//!
//! ```
//! let squares = scrub_exec::par_map(4, (0..100u64).collect(), |_, x| x * x);
//! assert_eq!(squares[7], 49);
//! ```

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

use scrub_telemetry as tel;

/// Global default thread count; 0 means "not resolved yet".
static DEFAULT_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Resolves the default worker count: an explicit [`set_default_threads`]
/// wins, then the `SCRUBSIM_THREADS` environment variable, then the
/// machine's available parallelism.
pub fn default_threads() -> usize {
    let cached = DEFAULT_THREADS.load(Ordering::Relaxed);
    if cached != 0 {
        return cached;
    }
    let resolved = std::env::var("SCRUBSIM_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        });
    DEFAULT_THREADS.store(resolved, Ordering::Relaxed);
    resolved
}

/// Overrides the default worker count (e.g. from a `--threads` flag).
/// Passing 0 resets to auto-detection.
pub fn set_default_threads(n: usize) {
    DEFAULT_THREADS.store(n, Ordering::Relaxed);
}

/// Strictly parses the `SCRUBSIM_THREADS` environment variable: `Ok(None)`
/// when unset, `Ok(Some(n))` for a positive integer, and an actionable
/// error for anything else. [`default_threads`] stays lenient (a malformed
/// value falls back to auto-detection); binaries call this up front so a
/// typo fails loudly instead of being silently ignored.
pub fn env_threads() -> Result<Option<usize>, String> {
    match std::env::var("SCRUBSIM_THREADS") {
        Err(std::env::VarError::NotPresent) => Ok(None),
        Err(std::env::VarError::NotUnicode(_)) => {
            Err("SCRUBSIM_THREADS is not valid UTF-8".to_string())
        }
        Ok(raw) => {
            let v = raw.trim();
            match v.parse::<usize>() {
                Ok(n) if n > 0 => Ok(Some(n)),
                _ => Err(format!(
                    "SCRUBSIM_THREADS must be a positive integer, got {v:?}"
                )),
            }
        }
    }
}

/// Why one job in a [`par_try_map`] batch failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobError {
    /// The job panicked on every attempt (initial run plus retries).
    Panicked {
        /// Attempts made before giving up.
        attempts: u32,
        /// The final panic payload, stringified.
        message: String,
    },
    /// The job never produced a result — its worker died mid-job. The
    /// completion watchdog converts this into an error instead of letting
    /// the batch hang or abort on a bare unwrap.
    Lost,
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobError::Panicked { attempts, message } => {
                write!(f, "job panicked after {attempts} attempt(s): {message}")
            }
            JobError::Lost => write!(f, "job lost: worker died before producing a result"),
        }
    }
}

impl std::error::Error for JobError {}

/// Stringifies a caught panic payload (the common `&str` / `String` cases;
/// anything else gets a placeholder).
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// One worker's index range, packed start|end into an `AtomicU64` so both
/// the owner (front) and thieves (back) can claim indices lock-free.
struct PackedRange(AtomicU64);

impl PackedRange {
    fn new(start: usize, end: usize) -> Self {
        debug_assert!(end <= u32::MAX as usize);
        Self(AtomicU64::new(Self::pack(start as u64, end as u64)))
    }

    fn pack(start: u64, end: u64) -> u64 {
        (end << 32) | start
    }

    fn unpack(v: u64) -> (u64, u64) {
        (v & 0xFFFF_FFFF, v >> 32)
    }

    /// Claims the lowest remaining index (owner side).
    fn pop_front(&self) -> Option<usize> {
        let mut cur = self.0.load(Ordering::Acquire);
        loop {
            let (start, end) = Self::unpack(cur);
            if start >= end {
                return None;
            }
            match self.0.compare_exchange_weak(
                cur,
                Self::pack(start + 1, end),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return Some(start as usize),
                Err(v) => cur = v,
            }
        }
    }

    /// Claims the highest remaining index (thief side).
    fn steal_back(&self) -> Option<usize> {
        let mut cur = self.0.load(Ordering::Acquire);
        loop {
            let (start, end) = Self::unpack(cur);
            if start >= end {
                return None;
            }
            match self.0.compare_exchange_weak(
                cur,
                Self::pack(start, end - 1),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return Some((end - 1) as usize),
                Err(v) => cur = v,
            }
        }
    }

    fn remaining(&self) -> usize {
        let (start, end) = Self::unpack(self.0.load(Ordering::Relaxed));
        end.saturating_sub(start) as usize
    }
}

/// Runs `f(i)` exactly once for every `i in 0..n` across `threads`
/// workers with work stealing. `threads <= 1` (or `n <= 1`) runs inline
/// in index order without spawning.
pub fn run_indices<F>(threads: usize, n: usize, f: F)
where
    F: Fn(usize) + Sync,
{
    // Sample the flag once per pool invocation: recording toggling
    // mid-pool is not a supported use, and one load keeps the disabled
    // path down to a single branch.
    let tel_on = tel::enabled();
    if threads <= 1 || n <= 1 {
        for i in 0..n {
            f(i);
        }
        if tel_on {
            tel::counter_add(tel::Counter::ExecPools, 1);
            tel::counter_add(tel::Counter::ExecTasks, n as u64);
            tel::gauge_max(tel::Gauge::ExecJobsHighWater, n as u64);
            tel::gauge_max(tel::Gauge::ExecWorkersHighWater, 1);
            tel::event(
                0.0,
                tel::EventKind::ExecWorker {
                    worker: 0,
                    tasks: n as u64,
                    steals: 0,
                },
            );
        }
        return;
    }
    assert!(n <= u32::MAX as usize, "job count exceeds u32 index space");
    let workers = threads.min(n);
    if tel_on {
        tel::counter_add(tel::Counter::ExecPools, 1);
        tel::gauge_max(tel::Gauge::ExecJobsHighWater, n as u64);
        tel::gauge_max(tel::Gauge::ExecWorkersHighWater, workers as u64);
    }
    // Contiguous initial partition: worker w owns [w*n/W, (w+1)*n/W).
    let ranges: Vec<PackedRange> = (0..workers)
        .map(|w| PackedRange::new(w * n / workers, (w + 1) * n / workers))
        .collect();
    let ranges = &ranges;
    let f = &f;
    std::thread::scope(|scope| {
        for w in 0..workers {
            scope.spawn(move || {
                let mut tasks = 0u64;
                let mut steals = 0u64;
                // Drain own range front-to-back.
                while let Some(i) = ranges[w].pop_front() {
                    f(i);
                    tasks += 1;
                }
                // Then steal from the victim with the most work left,
                // re-scanning until every range is dry.
                loop {
                    let victim = (0..workers)
                        .filter(|&v| v != w)
                        .max_by_key(|&v| ranges[v].remaining());
                    let Some(v) = victim else { break };
                    if tel_on {
                        tel::gauge_max(
                            tel::Gauge::ExecQueueDepthHighWater,
                            ranges[v].remaining() as u64,
                        );
                    }
                    match ranges[v].steal_back() {
                        Some(i) => {
                            f(i);
                            tasks += 1;
                            steals += 1;
                        }
                        None => {
                            if ranges.iter().all(|r| r.remaining() == 0) {
                                break;
                            }
                        }
                    }
                }
                if tel_on {
                    tel::counter_add(tel::Counter::ExecTasks, tasks);
                    tel::counter_add(tel::Counter::ExecSteals, steals);
                    tel::event(
                        0.0,
                        tel::EventKind::ExecWorker {
                            worker: w as u32,
                            tasks,
                            steals,
                        },
                    );
                }
            });
        }
    });
}

/// Maps `f` over `items` on `threads` workers, returning results in input
/// order regardless of scheduling. `f` receives `(index, item)`.
pub fn par_map<T, R, F>(threads: usize, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let n = items.len();
    if threads <= 1 || n <= 1 {
        return items
            .into_iter()
            .enumerate()
            .map(|(i, x)| f(i, x))
            .collect();
    }
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|x| Mutex::new(Some(x))).collect();
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    run_indices(threads, n, |i| {
        let item = slots[i].lock().unwrap().take().expect("item claimed twice");
        let r = f(i, item);
        *results[i].lock().unwrap() = Some(r);
    });
    // Completion watchdog: every slot must have been filled. A worker that
    // died mid-job leaves a hole; report which jobs were lost instead of
    // unwrapping into a context-free panic.
    let mut out = Vec::with_capacity(n);
    let mut lost = Vec::new();
    for (i, m) in results.into_iter().enumerate() {
        match m.into_inner().unwrap() {
            Some(r) => out.push(r),
            None => lost.push(i),
        }
    }
    if !lost.is_empty() {
        tel::counter_add(tel::Counter::ExecLostJobs, lost.len() as u64);
        panic!(
            "{} of {n} pool job(s) lost (workers died mid-job): indices {lost:?}; \
             use par_try_map to isolate failing jobs",
            lost.len()
        );
    }
    out
}

/// Like [`par_map`], but each job is panic-isolated with `catch_unwind`
/// and retried up to `retries` extra times; the result vector carries one
/// `Result` per input in input order, so a single poisoned job surfaces as
/// a structured [`JobError`] instead of aborting the whole batch.
///
/// `f` borrows its item (it may run more than once). A job that never
/// completes — its worker died without filling the slot — is reported as
/// [`JobError::Lost`] by the completion watchdog rather than hanging or
/// unwinding the pool.
pub fn par_try_map<T, R, F>(
    threads: usize,
    items: Vec<T>,
    retries: u32,
    f: F,
) -> Vec<Result<R, JobError>>
where
    T: Send + Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let n = items.len();
    let tel_on = tel::enabled();
    let attempt_job = |i: usize, item: &T| -> Result<R, JobError> {
        let mut attempts = 0u32;
        loop {
            attempts += 1;
            match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(i, item))) {
                Ok(r) => return Ok(r),
                Err(payload) => {
                    if tel_on {
                        tel::counter_add(tel::Counter::ExecPanics, 1);
                    }
                    if attempts > retries {
                        return Err(JobError::Panicked {
                            attempts,
                            message: panic_message(payload),
                        });
                    }
                    if tel_on {
                        tel::counter_add(tel::Counter::ExecRetries, 1);
                    }
                }
            }
        }
    };
    if threads <= 1 || n <= 1 {
        return items
            .iter()
            .enumerate()
            .map(|(i, item)| attempt_job(i, item))
            .collect();
    }
    let results: Vec<Mutex<Option<Result<R, JobError>>>> =
        (0..n).map(|_| Mutex::new(None)).collect();
    let items = &items;
    run_indices(threads, n, |i| {
        let r = attempt_job(i, &items[i]);
        *results[i].lock().unwrap() = Some(r);
    });
    results
        .into_iter()
        .map(|m| {
            m.into_inner().unwrap().unwrap_or_else(|| {
                if tel_on {
                    tel::counter_add(tel::Counter::ExecLostJobs, 1);
                }
                Err(JobError::Lost)
            })
        })
        .collect()
}

/// Like [`par_for_each_mut`], but each job is panic-isolated with
/// `catch_unwind` and returns a value: the result vector carries one
/// `Result` per element in input order, so a single panicking job
/// surfaces as a structured [`JobError`] instead of unwinding the pool.
///
/// There is deliberately **no retry**: `f` takes `&mut T`, so a panic may
/// leave the element partially mutated, and silently re-running `f` on
/// that wreckage would launder corrupted state into a success. Callers
/// that can recover (e.g. the fleet supervisor restoring a shard from its
/// last good checkpoint) own the retry decision and the state repair.
pub fn par_try_map_mut<T, R, F>(threads: usize, items: &mut [T], f: F) -> Vec<Result<R, JobError>>
where
    T: Send,
    R: Send,
    F: Fn(usize, &mut T) -> R + Sync,
{
    let n = items.len();
    let tel_on = tel::enabled();
    let attempt = |i: usize, item: &mut T| -> Result<R, JobError> {
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(i, item))) {
            Ok(r) => Ok(r),
            Err(payload) => {
                if tel_on {
                    tel::counter_add(tel::Counter::ExecPanics, 1);
                }
                Err(JobError::Panicked {
                    attempts: 1,
                    message: panic_message(payload),
                })
            }
        }
    };
    if threads <= 1 || n <= 1 {
        return items
            .iter_mut()
            .enumerate()
            .map(|(i, item)| attempt(i, item))
            .collect();
    }
    let results: Vec<Mutex<Option<Result<R, JobError>>>> =
        (0..n).map(|_| Mutex::new(None)).collect();
    let cells: Vec<Mutex<&mut T>> = items.iter_mut().map(Mutex::new).collect();
    run_indices(threads, n, |i| {
        // Each cell is locked exactly once, by the worker that owns index
        // i, so a poisoned mutex (panic inside `f`) is never re-locked.
        let r = {
            let mut guard = cells[i].lock().unwrap();
            attempt(i, &mut guard)
        };
        *results[i].lock().unwrap() = Some(r);
    });
    results
        .into_iter()
        .map(|m| {
            let inner = match m.into_inner() {
                Ok(v) => v,
                Err(poisoned) => poisoned.into_inner(),
            };
            inner.unwrap_or_else(|| {
                if tel_on {
                    tel::counter_add(tel::Counter::ExecLostJobs, 1);
                }
                Err(JobError::Lost)
            })
        })
        .collect()
}

/// Applies `f` to every element of `items` in parallel; elements are
/// disjoint, so each is mutated by exactly one worker. `f` receives
/// `(index, &mut item)`.
pub fn par_for_each_mut<T, F>(threads: usize, items: &mut [T], f: F)
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    let n = items.len();
    if threads <= 1 || n <= 1 {
        for (i, item) in items.iter_mut().enumerate() {
            f(i, item);
        }
        return;
    }
    let cells: Vec<Mutex<&mut T>> = items.iter_mut().map(Mutex::new).collect();
    run_indices(threads, n, |i| {
        let mut guard = cells[i].lock().unwrap();
        f(i, &mut guard);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn packed_range_pop_and_steal_disjoint() {
        let r = PackedRange::new(0, 10);
        let mut seen = HashSet::new();
        for _ in 0..5 {
            seen.insert(r.pop_front().unwrap());
        }
        for _ in 0..5 {
            seen.insert(r.steal_back().unwrap());
        }
        assert_eq!(seen, (0..10).collect());
        assert!(r.pop_front().is_none());
        assert!(r.steal_back().is_none());
    }

    #[test]
    fn run_indices_visits_each_exactly_once() {
        for threads in [1, 2, 4, 8] {
            let n = 1000;
            let counts: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
            run_indices(threads, n, |i| {
                counts[i].fetch_add(1, Ordering::Relaxed);
            });
            assert!(
                counts.iter().all(|c| c.load(Ordering::Relaxed) == 1),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn par_map_preserves_input_order() {
        let items: Vec<u64> = (0..500).collect();
        let serial: Vec<u64> = items.iter().map(|&x| x * 3 + 1).collect();
        for threads in [1, 2, 8] {
            let got = par_map(threads, items.clone(), |_, x| x * 3 + 1);
            assert_eq!(got, serial, "threads={threads}");
        }
    }

    #[test]
    fn par_map_with_uneven_job_sizes_still_ordered() {
        // Make early indices slow so stealing definitely kicks in.
        let got = par_map(4, (0..64u64).collect(), |i, x| {
            if i < 4 {
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
            x + 1
        });
        assert_eq!(got, (1..=64).collect::<Vec<u64>>());
    }

    #[test]
    fn par_try_map_mut_isolates_panics_and_keeps_order() {
        for threads in [1, 2, 4] {
            let mut items: Vec<u64> = (0..64).collect();
            let results = par_try_map_mut(threads, &mut items, |i, x| {
                if i == 13 {
                    panic!("boom at {i}");
                }
                *x += 100;
                *x
            });
            assert_eq!(results.len(), 64, "threads={threads}");
            for (i, r) in results.iter().enumerate() {
                if i == 13 {
                    match r {
                        Err(JobError::Panicked {
                            attempts: 1,
                            message,
                        }) => {
                            assert!(message.contains("boom"), "{message}")
                        }
                        other => panic!("index 13 should panic, got {other:?}"),
                    }
                } else {
                    assert_eq!(*r, Ok(i as u64 + 100), "threads={threads} i={i}");
                }
            }
            // Siblings of the panicking job were still mutated.
            assert_eq!(items[12], 112);
            assert_eq!(items[14], 114);
        }
    }

    #[test]
    fn par_for_each_mut_touches_every_element() {
        let mut data: Vec<u64> = vec![0; 300];
        par_for_each_mut(4, &mut data, |i, x| *x = i as u64 * 2);
        for (i, &x) in data.iter().enumerate() {
            assert_eq!(x, i as u64 * 2);
        }
    }

    #[test]
    fn inline_path_used_for_single_thread() {
        // Runs on the calling thread: thread-local state proves no spawn.
        thread_local! {
            static HITS: std::cell::Cell<u32> = const { std::cell::Cell::new(0) };
        }
        run_indices(1, 10, |_| HITS.with(|h| h.set(h.get() + 1)));
        assert_eq!(HITS.with(|h| h.get()), 10);
    }

    #[test]
    fn default_threads_env_override() {
        set_default_threads(3);
        assert_eq!(default_threads(), 3);
        set_default_threads(0); // reset to auto
        assert!(default_threads() >= 1);
    }
}
