//! Differential chaos campaign for the self-healing fleet daemon.
//!
//! Every test compares a faulted run against the same fleet run with no
//! faults at all. The service contract under test: whatever the chaos
//! schedule does — shard panics, corrupted round checkpoints, rotted
//! generation files, torn status writes, daemon kills at any point in
//! the round pipeline — `scrubd --resume-fleet` converges to a rollup
//! byte-identical to the uninterrupted control run, or reports a typed
//! quarantine in `status.json`. It never crashes the fleet and never
//! silently loses state.
//!
//! The tripwire test proves the harness has teeth: a deliberately broken
//! recovery (`SCRUBD_UNSAFE_SKIP_WAL=1` skips journal replay) resurrects
//! a quarantined shard as healthy, which the quarantine-persistence
//! assertion catches.

use std::path::PathBuf;
use std::process::{Command as Proc, Output};

use scrubd::status::{self, FleetState};
use scrubd::{Command, ControlDir};

/// 8 banks in 4 shards, 4 cadence rounds to the horizon.
const CONFIG: &str = "[fleet]\n\
    banks = 8\n\
    lines-per-bank = 32\n\
    shards = 4\n\
    seed = 11\n\
    horizon-s = 1200\n\
    cadence-s = 300\n\
    policy = basic@300\n\
    engine = event\n\
    threads = 2\n\
    [tenants]\n\
    mix = alpha:rate=40;beta:rate=10,read=0.5\n";

struct Rig {
    conf: PathBuf,
    ctl: ControlDir,
}

fn rig(tag: &str) -> Rig {
    let dir = std::env::temp_dir().join(format!("scrubd-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let conf = dir.join("fleet.conf");
    std::fs::write(&conf, CONFIG).expect("write config");
    let ctl = ControlDir::new(dir.join("ctl"));
    Rig { conf, ctl }
}

impl Rig {
    /// Runs the daemon binary against this rig's config and control dir.
    fn scrubd(&self, extra: &[&str], env: &[(&str, &str)]) -> Output {
        let mut proc = Proc::new(env!("CARGO_BIN_EXE_scrubd"));
        proc.args([
            "--config",
            self.conf.to_str().unwrap(),
            "--control",
            self.ctl.root().to_str().unwrap(),
        ])
        .args(extra);
        for (k, v) in env {
            proc.env(k, v);
        }
        proc.output().expect("spawn scrubd")
    }

    fn status(&self) -> status::FleetStatus {
        let text = std::fs::read_to_string(self.ctl.status_path()).expect("status.json");
        status::parse(&text).expect("status parses")
    }

    fn rollup(&self) -> Vec<u8> {
        std::fs::read(self.ctl.rollup_path()).expect("rollup.json")
    }
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

fn assert_finished(rig: &Rig, out: &Output) {
    assert!(
        out.status.success(),
        "daemon should finish\nstderr: {}",
        stderr(out)
    );
    assert_eq!(rig.status().state, FleetState::Finished);
}

/// The chaos-free control run every differential compares against.
fn control_rollup(tag: &str) -> Vec<u8> {
    let rig = rig(&format!("{tag}-control"));
    let out = rig.scrubd(&["--quiet"], &[]);
    assert_finished(&rig, &out);
    rig.rollup()
}

#[test]
fn kill_and_resume_is_byte_identical_at_every_kill_point() {
    let control = control_rollup("kill");
    for point in ["pre", "mid", "post"] {
        let rig = rig(&format!("kill-{point}"));
        let spec = format!("seed=5;kill_round=2;kill_point={point}");
        let out = rig.scrubd(&["--chaos", &spec], &[]);
        assert_eq!(
            out.status.code(),
            Some(3),
            "chaos kill must exit 3 ({point})\nstderr: {}",
            stderr(&out)
        );
        assert!(
            stderr(&out).contains("chaos: killed at round 2"),
            "kill should be loud ({point}): {}",
            stderr(&out)
        );
        let out = rig.scrubd(&["--resume-fleet"], &[]);
        assert_finished(&rig, &out);
        assert_eq!(
            rig.rollup(),
            control,
            "resumed rollup diverged from the control run (kill_point={point})"
        );
        assert_eq!(
            rig.status().quarantined,
            0,
            "nothing to quarantine ({point})"
        );
    }
}

#[test]
fn injected_panic_retries_and_matches_the_control_rollup() {
    let control = control_rollup("panic");
    let rig = rig("panic-fault");
    let out = rig.scrubd(&["--chaos", "seed=5;panic_shard=1@2"], &[]);
    assert_finished(&rig, &out);
    let log = stderr(&out);
    assert!(
        log.contains("shard 1 failed (panic)"),
        "the failure should be logged: {log}"
    );
    assert!(
        log.contains("shard 1 recovered"),
        "the recovery should be logged: {log}"
    );
    assert_eq!(rig.rollup(), control, "retried run diverged from control");
    let health = std::fs::read_to_string(rig.ctl.health_path()).expect("health.json");
    assert!(
        health.contains("fleet.retries"),
        "supervision counters belong in health.json: {health}"
    );
}

#[test]
fn corrupted_newest_generation_falls_back_to_an_older_one() {
    let control = control_rollup("genrot");
    let rig = rig("genrot-fault");
    let out = rig.scrubd(
        &[
            "--chaos",
            "seed=5;corrupt_gen=0:0@2;kill_round=2;kill_point=post",
        ],
        &[],
    );
    assert_eq!(out.status.code(), Some(3), "stderr: {}", stderr(&out));
    let out = rig.scrubd(&["--resume-fleet"], &[]);
    assert!(
        stderr(&out).contains("recovered from generation"),
        "fallback should be logged: {}",
        stderr(&out)
    );
    assert_finished(&rig, &out);
    assert_eq!(
        rig.rollup(),
        control,
        "generation-fallback replay diverged from control"
    );
}

#[test]
fn exhausting_every_generation_is_a_typed_quarantine_not_a_crash() {
    let rig = rig("exhaust");
    let out = rig.scrubd(
        &[
            "--chaos",
            "seed=5;corrupt_gen=0:0@2;corrupt_gen=0:1@2;corrupt_gen=0:2@2;\
             kill_round=2;kill_point=post",
        ],
        &[],
    );
    assert_eq!(out.status.code(), Some(3), "stderr: {}", stderr(&out));
    let out = rig.scrubd(&["--resume-fleet"], &[]);
    assert!(
        out.status.success(),
        "a double fault must degrade, never crash\nstderr: {}",
        stderr(&out)
    );
    let log = stderr(&out);
    assert!(
        log.contains("checkpoint generation(s) exhausted") && log.contains("quarantining shard 0"),
        "exhaustion should be reported with the typed error: {log}"
    );
    let st = rig.status();
    assert_eq!(st.state, FleetState::Degraded);
    assert_eq!(st.quarantined, 1);
    assert_eq!(st.shards[0].health, "quarantined");
    for sh in &st.shards[1..] {
        assert_eq!(sh.health, "healthy", "shard {} caught friendly fire", sh.id);
    }
}

#[test]
fn torn_status_write_leaves_the_previous_document_intact() {
    let control = control_rollup("torn");
    let rig = rig("torn-fault");
    let out = rig.scrubd(
        &[
            "--chaos",
            "seed=5;torn_status=1;kill_round=1;kill_point=post",
        ],
        &[],
    );
    assert_eq!(out.status.code(), Some(3), "stderr: {}", stderr(&out));
    // The torn publish never renamed over status.json: readers still see
    // the last complete document (the round-0 publish), and the stranded
    // half-written temp file is visible beside it.
    let st = rig.status();
    assert_eq!(st.state, FleetState::Running);
    assert_eq!(st.round, 0);
    assert!(
        rig.ctl.root().join("status.tmp").exists(),
        "the torn write should strand its temp file"
    );
    let out = rig.scrubd(&["--resume-fleet"], &[]);
    assert_finished(&rig, &out);
    assert_eq!(rig.rollup(), control, "torn-status recovery diverged");
}

#[test]
fn command_watermark_survives_the_crash() {
    let rig = rig("watermark");
    rig.ctl.ensure_layout().expect("layout");
    rig.ctl
        .submit(
            &Command::Migrate {
                shard: 1,
                worker: Some(0),
            },
            None,
        )
        .expect("stage migrate");
    let out = rig.scrubd(&["--chaos", "seed=5;kill_round=1;kill_point=post"], &[]);
    assert_eq!(out.status.code(), Some(3), "stderr: {}", stderr(&out));
    let out = rig.scrubd(&["--resume-fleet", "--quiet"], &[]);
    assert_finished(&rig, &out);
    // The consumed migrate was sequence 0; the journal carried that
    // watermark across the crash, so a fresh client chains after it
    // instead of reusing the consumed number.
    let st = rig.status();
    assert_eq!(st.cmd_seq, Some(0), "watermark lost across restart");
    let path = rig
        .ctl
        .submit(&Command::Snapshot, st.cmd_seq)
        .expect("post-restart submit");
    assert!(
        path.ends_with("000001.cmd"),
        "fresh submit must sort after the consumed sequence, got {}",
        path.display()
    );
}

#[test]
fn quarantine_survives_restart_and_the_wal_skip_tripwire_is_caught() {
    // A shard that panics every round exhausts its retry budget and is
    // quarantined; the rest of the fleet finishes.
    let rig = rig("tripwire");
    let out = rig.scrubd(&["--chaos", "seed=5;panic_shard=1@1:1000"], &[]);
    assert!(
        out.status.success(),
        "quarantine must not kill the daemon\nstderr: {}",
        stderr(&out)
    );
    assert!(
        stderr(&out).contains("shard 1 QUARANTINED (panic)"),
        "stderr: {}",
        stderr(&out)
    );
    let st = rig.status();
    assert_eq!(st.state, FleetState::Degraded);
    assert_eq!(st.quarantined, 1);
    assert_eq!(st.shards[1].health, "quarantined");

    // Correct recovery replays the journal, so the quarantine persists
    // across a daemon restart.
    let out = rig.scrubd(&["--resume-fleet"], &[]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let st = rig.status();
    assert_eq!(
        st.quarantined, 1,
        "journal replay must keep the shard quarantined"
    );
    assert_eq!(st.shards[1].health, "quarantined");

    // Tripwire: recovery that trusts snapshots alone and skips journal
    // replay silently resurrects the quarantined shard as healthy. The
    // quarantine-persistence assertion above is exactly what catches
    // this broken variant — prove the divergence is visible.
    let out = rig.scrubd(&["--resume-fleet"], &[("SCRUBD_UNSAFE_SKIP_WAL", "1")]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    assert!(
        stderr(&out).contains("UNSAFE: skipping write-ahead journal replay"),
        "stderr: {}",
        stderr(&out)
    );
    let st = rig.status();
    assert_eq!(
        st.quarantined, 0,
        "the tripwire should visibly lose the quarantine (that is the bug it plants)"
    );
    assert_eq!(st.shards[1].health, "healthy");
}

#[test]
fn resume_without_faults_is_idempotent() {
    // Resuming a cleanly finished fleet replays nothing and republishes
    // the identical rollup — restart is always safe.
    let rig = rig("idempotent");
    let out = rig.scrubd(&["--quiet"], &[]);
    assert_finished(&rig, &out);
    let first = rig.rollup();
    let out = rig.scrubd(&["--resume-fleet", "--quiet"], &[]);
    assert_finished(&rig, &out);
    assert_eq!(rig.rollup(), first, "idempotent resume changed the rollup");
}
