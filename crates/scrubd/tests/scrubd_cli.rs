//! CLI contract for the `scrubd` daemon binary.
//!
//! Negative paths: every malformed invocation or fleet config dies with
//! exit code 2 and a single stderr line naming the problem, before any
//! control-plane files are written. Positive paths: a tiny fleet runs to
//! its horizon, publishes status/rollup/shard documents, and honours
//! pre-staged control commands — including the CI-critical property that
//! a run with a mid-run migration publishes a rollup byte-identical to a
//! run without one.

use std::path::{Path, PathBuf};
use std::process::{Command as Proc, Output};

use scrubd::status::{self, FleetState};
use scrubd::{Command, ControlDir};

fn scrubd(args: &[&str]) -> Output {
    Proc::new(env!("CARGO_BIN_EXE_scrubd"))
        .args(args)
        .output()
        .expect("spawn scrubd")
}

fn tmp(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("scrubd-cli-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

const GOOD_CONFIG: &str = "[fleet]\n\
    banks = 8\n\
    lines-per-bank = 32\n\
    shards = 4\n\
    seed = 9\n\
    horizon-s = 600\n\
    cadence-s = 300\n\
    policy = basic@300\n\
    engine = event\n\
    threads = 2\n\
    [tenants]\n\
    mix = alpha:rate=40;beta:rate=10,read=0.5\n";

fn write_config(dir: &Path, text: &str) -> PathBuf {
    let path = dir.join("fleet.conf");
    std::fs::write(&path, text).expect("write config");
    path
}

/// Asserts the invocation failed with exit 2 and exactly one stderr line
/// mentioning `needle`, without touching the control dir.
fn assert_rejected(args: &[&str], needle: &str, control: &Path) {
    let out = scrubd(args);
    assert_eq!(
        out.status.code(),
        Some(2),
        "{args:?} should exit 2\nstderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(
        stderr.trim_end().lines().count(),
        1,
        "{args:?} should print one line, got:\n{stderr}"
    );
    assert!(
        stderr.contains(needle),
        "{args:?} stderr should mention {needle:?}:\n{stderr}"
    );
    assert!(
        !control.join("status.json").exists(),
        "{args:?} must not publish status before validation"
    );
}

#[test]
fn rejects_missing_and_malformed_flags() {
    let dir = tmp("flags");
    let conf = write_config(&dir, GOOD_CONFIG);
    let conf = conf.to_str().unwrap();
    let ctl = dir.join("ctl");
    let ctl_s = ctl.to_str().unwrap();
    assert_rejected(&["--control", ctl_s], "--config is required", &ctl);
    assert_rejected(&["--config", conf], "--control is required", &ctl);
    assert_rejected(&["--config"], "--config requires a value", &ctl);
    assert_rejected(
        &["--config", conf, "--control", ctl_s, "--round-wall-ms", "x"],
        "--round-wall-ms",
        &ctl,
    );
    assert_rejected(
        &["--config", conf, "--control", ctl_s, "--sharding", "magic"],
        "usage",
        &ctl,
    );
}

#[test]
fn rejects_unreadable_config() {
    let dir = tmp("noent");
    let ctl = dir.join("ctl");
    assert_rejected(
        &[
            "--config",
            dir.join("missing.conf").to_str().unwrap(),
            "--control",
            ctl.to_str().unwrap(),
        ],
        "cannot read config",
        &ctl,
    );
}

#[test]
fn rejects_malformed_fleet_configs() {
    // One spawn per malformed config: structural breakage, impossible
    // topology, and the tenant-rate validations the SLO math relies on
    // (zero and NaN rates must die here, not divide-by-zero later).
    let cases: &[(&str, &str)] = &[
        ("not even ini", "expected key = value"),
        (&GOOD_CONFIG.replace("banks = 8", "banks = 0"), "banks"),
        (
            &GOOD_CONFIG.replace("shards = 4", "shards = 3"),
            "divide evenly",
        ),
        (
            &GOOD_CONFIG.replace("horizon-s = 600", "horizon-s = -1"),
            "horizon-s",
        ),
        (
            &GOOD_CONFIG.replace(
                "mix = alpha:rate=40;beta:rate=10,read=0.5",
                "mix = alpha:rate=0",
            ),
            "finite and positive",
        ),
        (
            &GOOD_CONFIG.replace(
                "mix = alpha:rate=40;beta:rate=10,read=0.5",
                "mix = alpha:rate=NaN",
            ),
            "finite and positive",
        ),
        (
            &GOOD_CONFIG.replace("engine = event", "engine = quantum"),
            "engine",
        ),
    ];
    for (i, (text, needle)) in cases.iter().enumerate() {
        let dir = tmp(&format!("badconf{i}"));
        let conf = write_config(&dir, text);
        let ctl = dir.join("ctl");
        assert_rejected(
            &[
                "--config",
                conf.to_str().unwrap(),
                "--control",
                ctl.to_str().unwrap(),
            ],
            needle,
            &ctl,
        );
    }
}

fn run_fleet(tag: &str, staged: &[Command]) -> (ControlDir, Output) {
    let dir = tmp(tag);
    let conf = write_config(&dir, GOOD_CONFIG);
    let ctl = ControlDir::new(dir.join("ctl"));
    ctl.ensure_layout().expect("layout");
    for cmd in staged {
        ctl.submit(cmd, None).expect("stage command");
    }
    let out = scrubd(&[
        "--config",
        conf.to_str().unwrap(),
        "--control",
        ctl.root().to_str().unwrap(),
        "--quiet",
    ]);
    assert!(
        out.status.success(),
        "scrubd should run the tiny fleet\nstderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    (ctl, out)
}

fn read_status(ctl: &ControlDir) -> status::FleetStatus {
    let text = std::fs::read_to_string(ctl.status_path()).expect("status.json exists");
    status::parse(&text).expect("status parses")
}

#[test]
fn runs_a_tiny_fleet_to_the_horizon() {
    let (ctl, _) = run_fleet("happy", &[]);
    let st = read_status(&ctl);
    assert_eq!(st.state, FleetState::Finished);
    assert_eq!(st.clock_s, st.horizon_s);
    assert_eq!(st.shards.len(), 4);
    for sh in &st.shards {
        assert!(sh.demand_ops > 0, "shard {} saw no demand", sh.id);
    }
    // Per-shard docs and the rollup are published.
    let rollup = std::fs::read_to_string(ctl.rollup_path()).expect("rollup.json");
    assert!(rollup.contains("fleet.demand_reads"));
    for shard in 0..4 {
        assert!(
            ctl.shard_doc_path(shard).exists(),
            "missing shard doc {shard}"
        );
    }
}

#[test]
fn prestaged_commands_drive_migration_snapshot_and_stop() {
    // Migration at the first boundary must not change the published
    // rollup: compare byte-for-byte against an undisturbed run.
    let (plain_ctl, _) = run_fleet("plain", &[]);
    let (ctl, _) = run_fleet(
        "migrate",
        &[
            Command::Migrate {
                shard: 1,
                worker: Some(0),
            },
            Command::Snapshot,
        ],
    );
    let st = read_status(&ctl);
    assert_eq!(st.state, FleetState::Finished);
    assert_eq!(st.shards[1].migrations, 1);
    assert_eq!(st.shards[1].worker, 0);
    for shard in 0..4 {
        assert!(
            ctl.snapshot_path(shard).exists(),
            "snapshot verb should checkpoint shard {shard}"
        );
    }
    let plain = std::fs::read(plain_ctl.rollup_path()).expect("plain rollup");
    let migrated = std::fs::read(ctl.rollup_path()).expect("migrated rollup");
    assert_eq!(
        plain, migrated,
        "mid-run migration changed the published rollup"
    );

    // A pre-staged stop halts the fleet before the horizon.
    let (ctl, _) = run_fleet("stop", &[Command::Stop]);
    let st = read_status(&ctl);
    assert_eq!(st.state, FleetState::Stopped);
    assert!(st.clock_s < st.horizon_s);
}

#[test]
fn malformed_staged_commands_are_skipped_not_fatal() {
    let dir = tmp("badcmd");
    let conf = write_config(&dir, GOOD_CONFIG);
    let ctl = ControlDir::new(dir.join("ctl"));
    ctl.ensure_layout().expect("layout");
    std::fs::write(ctl.root().join("cmd/000001.cmd"), "reboot the moon\n").expect("stage");
    let out = scrubd(&[
        "--config",
        conf.to_str().unwrap(),
        "--control",
        ctl.root().to_str().unwrap(),
        "--quiet",
    ]);
    assert!(
        out.status.success(),
        "bad commands must not kill the daemon"
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("ignoring malformed command"),
        "should log the skip: {stderr}"
    );
    assert_eq!(read_status(&ctl).state, FleetState::Finished);
}
