//! Differential shard-migration suite.
//!
//! The fleet invariant under test: *placement never changes results*. A
//! fleet that drains a shard to a checkpoint mid-run and resumes it on a
//! different worker must produce per-shard telemetry documents and a
//! merged rollup byte-identical to a fleet that never migrated — on both
//! simulation engines. The suite then proves it has teeth: a migration
//! that silently drops one tenant's in-flight demand op (the
//! `migrate_dropping_pending` tripwire) must produce a *different*
//! rollup.

use scrubd::{Fleet, FleetConfig};

fn config(engine: &str) -> FleetConfig {
    format!(
        "[fleet]\n\
         banks = 8\n\
         lines-per-bank = 32\n\
         shards = 4\n\
         seed = 77\n\
         horizon-s = 900\n\
         cadence-s = 300\n\
         policy = combined@300\n\
         engine = {engine}\n\
         threads = 2\n\
         [tenants]\n\
         mix = alpha:rate=60,read=0.7;beta:rate=20,read=0.4,pattern=uniform\n"
    )
    .parse()
    .expect("valid fleet config")
}

fn run_to_horizon(fleet: &mut Fleet) {
    while !fleet.done() {
        fleet.advance_round();
    }
}

#[test]
fn drain_migrate_resume_is_byte_identical_on_both_engines() {
    for engine in ["stepped", "event"] {
        let mut continuous = Fleet::new(config(engine));
        let mut migrated = Fleet::new(config(engine));

        // Advance one cadence round, then drain-and-resume *every* shard
        // onto a different worker mid-run.
        continuous.advance_round();
        migrated.advance_round();
        for shard in 0..4 {
            let m = migrated
                .migrate(shard, Some((shard + 1) % 2))
                .expect("shard exists");
            assert_eq!(m.shard, shard);
            assert!(!m.snapshot.is_empty(), "drained snapshot is sealed bytes");
        }
        assert_eq!(migrated.migrations(), 4);

        run_to_horizon(&mut continuous);
        run_to_horizon(&mut migrated);

        // Per-shard reports byte-identical...
        for shard in 0..4 {
            assert_eq!(
                continuous.shard_document(shard).unwrap().to_json(),
                migrated.shard_document(shard).unwrap().to_json(),
                "shard {shard} document diverged after migration ({engine} engine)"
            );
        }
        // ...and so is the merged rollup.
        assert_eq!(
            continuous.rollup().to_json(),
            migrated.rollup().to_json(),
            "fleet rollup diverged after migration ({engine} engine)"
        );
    }
}

#[test]
fn repeated_migration_of_one_shard_is_still_byte_identical() {
    // A shard bounced between workers at every cadence boundary must
    // still finish byte-identical: resume-of-resume composes.
    let mut continuous = Fleet::new(config("event"));
    let mut migrated = Fleet::new(config("event"));
    while !continuous.done() {
        continuous.advance_round();
        migrated.advance_round();
        if !migrated.done() {
            migrated.migrate(1, None).expect("shard 1 exists");
        }
    }
    assert!(migrated.migrations() >= 2);
    assert_eq!(continuous.rollup().to_json(), migrated.rollup().to_json());
}

#[test]
fn tripwire_lossy_migration_changes_the_rollup() {
    // Same schedule as the clean differential, but the drain silently
    // drops the shard's in-flight demand op. If the final rollups do NOT
    // differ, byte-identity comparisons cannot catch a lossy migration
    // and every green result above is meaningless.
    let mut clean = Fleet::new(config("event"));
    let mut lossy = Fleet::new(config("event"));
    clean.advance_round();
    lossy.advance_round();
    clean.migrate(2, Some(0)).expect("shard 2 exists");
    lossy
        .migrate_dropping_pending(2, Some(0))
        .expect("shard 2 exists");
    run_to_horizon(&mut clean);
    run_to_horizon(&mut lossy);
    assert_ne!(
        clean.rollup().to_json(),
        lossy.rollup().to_json(),
        "a migration that drops a pending op must not survive the differential check"
    );
}

#[test]
fn migration_state_is_bookkeeping_only() {
    // Worker placement and migration counts live in status output, not
    // telemetry: no counter/value/meta key in a shard document or the
    // rollup may mention workers or migrations.
    let mut fleet = Fleet::new(config("event"));
    fleet.advance_round();
    fleet.migrate(0, Some(1)).expect("shard 0 exists");
    let rollup = fleet.rollup();
    for key in rollup
        .counters
        .keys()
        .chain(rollup.values.keys())
        .chain(rollup.meta.keys())
    {
        assert!(
            !key.contains("worker") && !key.contains("migration"),
            "placement bookkeeping leaked into telemetry: {key}"
        );
    }
}
