//! Property tests over the rotated checkpoint-generation store.
//!
//! The contract: however an adversary rots the on-disk generation files
//! — bit-flips at any offset, truncation to any shorter length, a
//! foreign file wearing the wrong magic, an emptied or deleted file —
//! recovery either lands on an older generation whose envelope still
//! validates (returning exactly the payload persisted there), or
//! returns the typed [`RecoveryError::Exhausted`] naming what was wrong
//! with every generation. It never panics and never hands back zeroed
//! or corrupted state, and a fleet resumed over an exhausted store
//! quarantines the shard instead of crashing.

use std::path::PathBuf;

use proptest::collection;
use proptest::prelude::*;
use scrubd::health::RecoveryError;
use scrubd::{FleetConfig, GenStore};

const K: u32 = 3;
const SHARD: u32 = 0;

fn fresh_root(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "scrubd-genprop-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// Persists K distinguishable sealed payloads; after rotation, gen `g`
/// holds payload `K - 1 - g` (gen0 is the newest persist).
fn populated_store(tag: &str) -> (GenStore, Vec<Vec<u8>>) {
    let store = GenStore::new(fresh_root(tag), K);
    let mut payloads = Vec::new();
    for i in 0..K {
        let payload = format!("round-{i} shard-state {}", "x".repeat(40 + i as usize)).into_bytes();
        store
            .persist(SHARD, &scrub_checkpoint::seal(payload.clone()))
            .expect("persist");
        payloads.push(payload);
    }
    (store, payloads)
}

/// One way to rot a generation file. Every variant guarantees the
/// envelope no longer validates: the CRC covers every payload byte and
/// the header fields are length- and magic-checked.
#[derive(Debug, Clone)]
enum Rot {
    /// XOR a non-zero mask into one byte at a seeded offset.
    BitFlip { offset_seed: u64, mask: u8 },
    /// Cut the file to a strict prefix.
    Truncate { len_seed: u64 },
    /// Overwrite the leading bytes with another format's magic.
    ForeignMagic,
    /// Zero-length file (e.g. a crash between create and write).
    Empty,
    /// The file is gone entirely.
    Delete,
}

fn apply(rot: &Rot, store: &GenStore, gen: u32) {
    let path = store.path(SHARD, gen);
    match rot {
        Rot::BitFlip { offset_seed, mask } => {
            let mut bytes = std::fs::read(&path).expect("read gen");
            let off = (*offset_seed as usize) % bytes.len();
            bytes[off] ^= mask;
            std::fs::write(&path, bytes).expect("write gen");
        }
        Rot::Truncate { len_seed } => {
            let bytes = std::fs::read(&path).expect("read gen");
            let keep = (*len_seed as usize) % bytes.len();
            std::fs::write(&path, &bytes[..keep]).expect("write gen");
        }
        Rot::ForeignMagic => {
            let mut bytes = std::fs::read(&path).expect("read gen");
            let n = bytes.len().min(8);
            bytes[..n].copy_from_slice(&b"NOTACKPT"[..n]);
            std::fs::write(&path, bytes).expect("write gen");
        }
        Rot::Empty => std::fs::write(&path, b"").expect("write gen"),
        Rot::Delete => std::fs::remove_file(&path).expect("remove gen"),
    }
}

/// Maps a drawn `(kind, seed, mask)` triple onto a [`Rot`]. The vendored
/// proptest has no `prop_oneof`/`prop_map`, so variants are selected by
/// integer.
fn rot_from(kind: u8, seed: u64, mask: u8) -> Rot {
    match kind {
        0 => Rot::BitFlip {
            offset_seed: seed,
            mask,
        },
        1 => Rot::Truncate { len_seed: seed },
        2 => Rot::ForeignMagic,
        3 => Rot::Empty,
        _ => Rot::Delete,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Rot every generation: the walk must exhaust with one typed reason
    /// per generation — no panic, no silently accepted garbage.
    #[test]
    fn corrupting_all_generations_is_typed_exhaustion(
        kinds in collection::vec(0u8..5, 3..4),
        seeds in collection::vec(0u64..u64::MAX, 3..4),
        masks in collection::vec(1u8..=255, 3..4),
    ) {
        let (store, _) = populated_store("all");
        for gen in 0..K {
            let i = gen as usize;
            apply(&rot_from(kinds[i], seeds[i], masks[i]), &store, gen);
        }
        let err = store.load(SHARD).expect_err("every generation is rotted");
        let RecoveryError::Exhausted { shard, tried } = &err;
        prop_assert_eq!(*shard, SHARD);
        prop_assert_eq!(tried.len(), K as usize, "one reason per generation: {}", err);
        for (gen, why) in tried {
            prop_assert!(*gen < K, "reason names a real generation");
            prop_assert!(!why.is_empty(), "reason must say what was wrong");
        }
    }

    /// Rot only the newest `bad` generations: recovery falls back to the
    /// oldest intact one and returns exactly the payload persisted there.
    #[test]
    fn partial_rot_falls_back_to_the_oldest_intact_generation(
        bad in 0u32..K,
        kinds in collection::vec(0u8..5, 3..4),
        seeds in collection::vec(0u64..u64::MAX, 3..4),
        masks in collection::vec(1u8..=255, 3..4),
    ) {
        let (store, payloads) = populated_store("partial");
        for gen in 0..bad {
            let i = gen as usize;
            apply(&rot_from(kinds[i], seeds[i], masks[i]), &store, gen);
        }
        let (gen, sealed) = store.load(SHARD).expect("an intact generation remains");
        prop_assert_eq!(gen, bad, "must land on the first intact generation");
        let payload = scrub_checkpoint::open(&sealed).expect("load only returns valid envelopes");
        // gen0 holds the newest persist (payload K-1), gen `g` holds K-1-g.
        prop_assert_eq!(payload, &payloads[(K - 1 - bad) as usize][..]);
    }
}

/// A fleet resumed over a fully exhausted store quarantines the shard
/// (typed, visible) instead of crashing or zeroing its state.
#[test]
fn resume_over_an_exhausted_store_quarantines_the_shard() {
    let config: FleetConfig = "[fleet]\n\
         banks = 4\n\
         lines-per-bank = 16\n\
         shards = 2\n\
         seed = 7\n\
         horizon-s = 600\n\
         cadence-s = 300\n\
         policy = basic@300\n\
         engine = event\n\
         [tenants]\n\
         mix = alpha:rate=20\n"
        .parse()
        .expect("valid config");
    let donor = scrubd::Fleet::new(config.clone());
    let restores = vec![
        scrubd::ShardRestore {
            health: scrubd::Health::Healthy,
            snapshot: Err(RecoveryError::Exhausted {
                shard: 0,
                tried: vec![(0, "unreadable".into()), (1, "bad magic".into())],
            }),
        },
        scrubd::ShardRestore {
            health: scrubd::Health::Healthy,
            snapshot: Ok(donor.shards()[1].last_good().0.to_vec()),
        },
    ];
    let fleet = scrubd::Fleet::resume(config, 0, restores).expect("resume degrades, not fails");
    assert_eq!(fleet.quarantined(), 1);
    assert!(fleet.shards()[0].health().is_quarantined());
    assert!(!fleet.shards()[1].health().is_quarantined());
}
