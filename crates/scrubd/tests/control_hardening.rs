//! Daemon-level hardening of the file-based control plane.
//!
//! The command queue is a plain directory any tool can write into, so
//! the daemon must survive a messy one: sequence gaps, files still
//! being written by a slow client, stale duplicates re-appearing after
//! a crash, and junk file names. Each test drives the real `scrubd`
//! binary and asserts the fleet still reaches its horizon with a
//! one-line warning per oddity — the queue never wedges and a consumed
//! command is never executed twice.

use std::path::PathBuf;
use std::process::{Command as Proc, Output};

use scrubd::status::{self, FleetState};
use scrubd::{Command, ControlDir};

const CONFIG: &str = "[fleet]\n\
    banks = 8\n\
    lines-per-bank = 32\n\
    shards = 4\n\
    seed = 13\n\
    horizon-s = 600\n\
    cadence-s = 300\n\
    policy = basic@300\n\
    engine = event\n\
    threads = 2\n\
    [tenants]\n\
    mix = alpha:rate=40;beta:rate=10,read=0.5\n";

struct Rig {
    conf: PathBuf,
    ctl: ControlDir,
}

fn rig(tag: &str) -> Rig {
    let dir = std::env::temp_dir().join(format!("scrubd-ctlhard-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let conf = dir.join("fleet.conf");
    std::fs::write(&conf, CONFIG).expect("write config");
    let ctl = ControlDir::new(dir.join("ctl"));
    ctl.ensure_layout().expect("layout");
    Rig { conf, ctl }
}

impl Rig {
    fn scrubd(&self, extra: &[&str]) -> Output {
        Proc::new(env!("CARGO_BIN_EXE_scrubd"))
            .args([
                "--config",
                self.conf.to_str().unwrap(),
                "--control",
                self.ctl.root().to_str().unwrap(),
            ])
            .args(extra)
            .output()
            .expect("spawn scrubd")
    }

    fn status(&self) -> status::FleetStatus {
        let text = std::fs::read_to_string(self.ctl.status_path()).expect("status.json");
        status::parse(&text).expect("status parses")
    }

    fn stage(&self, name: &str, body: &str) {
        std::fs::write(self.ctl.root().join("cmd").join(name), body).expect("stage file");
    }
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

#[test]
fn gaps_partials_and_junk_names_never_wedge_the_queue() {
    let rig = rig("messy");
    // seq 1 valid, seq 2 missing (gap), seq 3 valid, seq 5 still being
    // written (no trailing newline), plus a junk-named file.
    rig.stage("000001.cmd", "snapshot\n");
    rig.stage("000003.cmd", "snapshot\n");
    rig.stage("000005.cmd", "snapshot");
    rig.stage("notes.cmd", "snapshot\n");
    let out = rig.scrubd(&["--quiet"]);
    assert!(
        out.status.success(),
        "a messy queue must not kill the daemon\nstderr: {}",
        stderr(&out)
    );
    let log = stderr(&out);
    assert!(log.contains("sequence gap"), "gap should warn once: {log}");
    assert!(
        log.contains("still being written"),
        "partial file should warn, not consume: {log}"
    );
    assert!(
        log.contains("non-numeric command file name"),
        "junk name should warn: {log}"
    );
    // The half-written file is left for its writer; everything numbered
    // and complete was consumed, and the watermark tracks the highest.
    assert!(
        rig.ctl.root().join("cmd/000005.cmd").exists(),
        "partial file must survive the run"
    );
    assert!(!rig.ctl.root().join("cmd/000001.cmd").exists());
    assert!(!rig.ctl.root().join("cmd/000003.cmd").exists());
    let st = rig.status();
    assert_eq!(st.state, FleetState::Finished);
    assert_eq!(st.cmd_seq, Some(3), "watermark should track the gap jump");
}

#[test]
fn a_stale_duplicate_after_a_crash_is_dropped_not_replayed() {
    let rig = rig("dup");
    rig.ctl
        .submit(&Command::Snapshot, None)
        .expect("stage snapshot as seq 0");
    let out = rig.scrubd(&["--chaos", "seed=5;kill_round=1;kill_point=post"]);
    assert_eq!(
        out.status.code(),
        Some(3),
        "chaos kill expected\nstderr: {}",
        stderr(&out)
    );
    // A confused client re-drops the already-consumed sequence number,
    // this time carrying a stop. If the daemon replayed it, the resumed
    // fleet would halt early; instead the journal's watermark identifies
    // it as stale and it is deleted unexecuted.
    rig.stage("000000.cmd", "stop\n");
    let out = rig.scrubd(&["--resume-fleet"]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    assert!(
        stderr(&out).contains("stale or duplicate sequence 0"),
        "the drop should be loud: {}",
        stderr(&out)
    );
    let st = rig.status();
    assert_eq!(
        st.state,
        FleetState::Finished,
        "a stale stop must not halt the resumed fleet"
    );
    assert_eq!(st.clock_s, st.horizon_s);
    assert!(!rig.ctl.root().join("cmd/000000.cmd").exists());
}

#[test]
fn torn_publish_never_corrupts_a_read_document() {
    // Direct regression for the fsync-before-rename publish path: a
    // writer that dies mid-publish (modelled by the chaos write hook)
    // leaves the previous complete document in place and its half write
    // stranded in a temp file readers never look at.
    let rig = rig("torn");
    let doc = rig.ctl.status_path();
    rig.ctl
        .write_atomic(&doc, b"{ \"complete\": true }\n")
        .expect("first publish");
    rig.ctl
        .write_torn(&doc, b"{ \"complete\": false, \"half\": ")
        .expect("torn publish");
    assert_eq!(
        std::fs::read(&doc).expect("document still present"),
        b"{ \"complete\": true }\n",
        "torn write must not touch the published document"
    );
    assert!(
        rig.ctl.root().join("status.tmp").exists(),
        "the torn half should be stranded in the temp file"
    );
    // The next atomic publish goes through the same temp name and wins.
    rig.ctl
        .write_atomic(&doc, b"{ \"complete\": true, \"v\": 2 }\n")
        .expect("second publish");
    assert_eq!(
        std::fs::read(&doc).expect("document"),
        b"{ \"complete\": true, \"v\": 2 }\n"
    );
}
