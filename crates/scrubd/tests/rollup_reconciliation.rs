//! Fleet rollup reconciliation: the merged rollup must equal the sum of
//! its parts *exactly* — u64 counter arithmetic, not approximate — at
//! every cadence boundary, including rounds where a shard migrated.

use std::collections::BTreeMap;

use scrubd::{Fleet, FleetConfig};

fn config() -> FleetConfig {
    "[fleet]\n\
     banks = 12\n\
     lines-per-bank = 32\n\
     shards = 6\n\
     seed = 5\n\
     horizon-s = 1500\n\
     cadence-s = 300\n\
     policy = threshold@300\n\
     engine = event\n\
     threads = 3\n\
     [tenants]\n\
     mix = alpha:rate=50,read=0.8;beta:rate=25,read=0.2;gamma:rate=5\n"
        .parse()
        .expect("valid fleet config")
}

/// Sums every counter across all per-shard documents by hand.
fn hand_summed(fleet: &Fleet) -> BTreeMap<String, u64> {
    let mut sums: BTreeMap<String, u64> = BTreeMap::new();
    for shard in fleet.shards() {
        let doc = fleet.shard_document(shard.id).expect("shard exists");
        for (key, v) in &doc.counters {
            *sums.entry(key.clone()).or_insert(0) += v;
        }
    }
    sums
}

fn assert_reconciles(fleet: &Fleet, when: &str) {
    let rollup = fleet.rollup();
    let sums = hand_summed(fleet);
    assert_eq!(
        rollup.counters, sums,
        "rollup counters != sum of per-shard counters ({when})"
    );
    // Every shard contributes a clock value; the rollup keeps them all.
    for shard in fleet.shards() {
        let key = format!("shard.{}.clock_s", shard.id);
        assert_eq!(
            rollup.values.get(&key).copied(),
            Some(shard.clock_s()),
            "missing or stale {key} ({when})"
        );
    }
}

#[test]
fn rollup_equals_shard_sums_at_every_cadence_boundary() {
    let mut fleet = Fleet::new(config());
    assert_reconciles(&fleet, "before the first round");
    let mut round = 0;
    while !fleet.done() {
        fleet.advance_round();
        round += 1;
        assert_reconciles(&fleet, &format!("after round {round}"));
    }
    assert_eq!(round, 5, "1500s horizon at 300s cadence is five rounds");
    // Open-loop tenants actually delivered demand — this is not a
    // vacuous 0 == 0 reconciliation.
    let rollup = fleet.rollup();
    assert!(rollup.counters["fleet.demand_reads"] > 0);
    assert!(rollup.counters["fleet.demand_writes"] > 0);
    assert!(rollup.counters["fleet.scrub_probes"] > 0);
}

#[test]
fn reconciliation_holds_across_migrations() {
    let mut fleet = Fleet::new(config());
    while !fleet.done() {
        fleet.advance_round();
        // Migrate a different shard every round, mid-run.
        let victim = (fleet.round() as u32 - 1) % fleet.config().shards;
        if !fleet.done() {
            fleet.migrate(victim, None).expect("victim shard exists");
        }
        assert_reconciles(&fleet, &format!("round {} + migration", fleet.round()));
    }
    assert!(fleet.migrations() >= 4);
}

#[test]
fn tenant_counters_reconcile_with_slo_rows() {
    // The per-tenant counters that merge into the rollup must agree with
    // the SLO view (which sums shard tenant tables directly).
    let mut fleet = Fleet::new(config());
    while !fleet.done() {
        fleet.advance_round();
    }
    let rollup = fleet.rollup();
    for row in fleet.slo() {
        assert_eq!(
            rollup.counters[&format!("tenant.{}.reads", row.name)],
            row.reads
        );
        assert_eq!(
            rollup.counters[&format!("tenant.{}.writes", row.name)],
            row.writes
        );
        assert!(
            row.reads + row.writes > 0,
            "tenant {} delivered no ops",
            row.name
        );
    }
}
