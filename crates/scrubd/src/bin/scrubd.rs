//! `scrubd` — the fleet daemon.
//!
//! ```text
//! scrubd --config fleet.conf --control /run/scrub-fleet
//!        [--resume-fleet] [--chaos SPEC] [--round-wall-ms N] [--quiet]
//! ```
//!
//! Loads the fleet config, then advances the fleet one cadence round at a
//! time under the self-healing supervisor. After every round it persists
//! each shard's checkpoint into the rotated generation store, appends a
//! record to the write-ahead round journal (`wal.log`), and atomically
//! rewrites `status.json`, `rollup.json`, `health.json`, and the
//! per-shard telemetry under `shards/`; pending `scrubctl` commands
//! (migrate / snapshot / stop) are consumed at round boundaries with
//! duplicate- and gap-hardened sequence tracking.
//!
//! `--resume-fleet` rebuilds the fleet after a crash from the journal
//! plus the newest checkpoint generation that still validates, replaying
//! any lost rounds deterministically — the finished roll-up is
//! byte-identical to an uninterrupted run. `--chaos SPEC` installs a
//! deterministic fault schedule (shard panics, checkpoint corruption,
//! generation rot, torn status writes, and daemon kills) for recovery
//! drills; an injected kill exits with code 3. Exit code 2 flags bad
//! input, with a single-line error on stderr.

use std::process::ExitCode;

use scrubd::status::{self, FleetState};
use scrubd::{
    ChaosSpec, Command, ControlDir, Fleet, FleetConfig, GenStore, Health, KillPoint, RoundEvent,
    RoundRecord, ShardRestore, Wal,
};

fn fail(msg: &str) -> ! {
    eprintln!("scrubd: {msg}");
    std::process::exit(2);
}

fn usage() -> ! {
    eprintln!(
        "usage: scrubd --config FILE --control DIR [--resume-fleet] [--chaos SPEC] \
         [--round-wall-ms N] [--quiet]"
    );
    std::process::exit(2);
}

struct Args {
    config: String,
    control: String,
    resume_fleet: bool,
    chaos: Option<ChaosSpec>,
    round_wall_ms: u64,
    quiet: bool,
}

fn parse_args() -> Args {
    let mut config = None;
    let mut control = None;
    let mut resume_fleet = false;
    let mut chaos = None;
    let mut round_wall_ms = 0;
    let mut quiet = false;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = || {
            it.next()
                .unwrap_or_else(|| fail(&format!("{arg} requires a value")))
        };
        match arg.as_str() {
            "--config" => config = Some(value()),
            "--control" => control = Some(value()),
            "--resume-fleet" => resume_fleet = true,
            "--chaos" => {
                let raw = value();
                chaos = Some(
                    raw.parse::<ChaosSpec>()
                        .unwrap_or_else(|e: String| fail(&e)),
                );
            }
            "--round-wall-ms" => {
                let raw = value();
                round_wall_ms = raw.parse().unwrap_or_else(|_| {
                    fail(&format!(
                        "--round-wall-ms must be a non-negative integer, got {raw:?}"
                    ))
                });
            }
            "--quiet" => quiet = true,
            _ => usage(),
        }
    }
    Args {
        config: config.unwrap_or_else(|| fail("--config is required")),
        control: control.unwrap_or_else(|| fail("--control is required")),
        resume_fleet,
        chaos,
        round_wall_ms,
        quiet,
    }
}

/// An injected daemon death: loud on stderr, exit code 3 so the harness
/// can tell a chaos kill from a real failure.
fn chaos_kill(round: u64, point: KillPoint) -> ! {
    eprintln!("scrubd: chaos: killed at round {round} ({point:?})");
    std::process::exit(3);
}

/// Writes the round's telemetry artifacts; any I/O failure is fatal (the
/// control plane is the daemon's only output). `torn` models a writer
/// dying mid-publish of `status.json`.
fn publish(fleet: &Fleet, ctl: &ControlDir, state: FleetState, cmd_seq: Option<u64>, torn: bool) {
    for shard in fleet.shards() {
        let doc = fleet
            .shard_document(shard.id)
            .expect("every shard documents itself");
        ctl.write_atomic(&ctl.shard_doc_path(shard.id), doc.to_json().as_bytes())
            .unwrap_or_else(|e| fail(&e));
    }
    ctl.write_atomic(&ctl.rollup_path(), fleet.rollup().to_json().as_bytes())
        .unwrap_or_else(|e| fail(&e));
    ctl.write_atomic(
        &ctl.health_path(),
        fleet.health_document().to_json().as_bytes(),
    )
    .unwrap_or_else(|e| fail(&e));
    let rendered = status::render(fleet, state, cmd_seq);
    if torn {
        ctl.write_torn(&ctl.status_path(), rendered.as_bytes())
            .unwrap_or_else(|e| fail(&e));
    } else {
        ctl.write_atomic(&ctl.status_path(), rendered.as_bytes())
            .unwrap_or_else(|e| fail(&e));
    }
}

/// Applies every pending command. Returns `true` if a stop was consumed.
fn apply_commands(
    fleet: &mut Fleet,
    ctl: &ControlDir,
    watermark: &mut Option<u64>,
    quiet: bool,
) -> bool {
    let mut stop = false;
    let intake = ctl.take_pending(*watermark).unwrap_or_else(|e| fail(&e));
    *watermark = intake.watermark;
    for warning in &intake.warnings {
        eprintln!("scrubd: {warning}");
    }
    for cmd in intake.commands {
        match cmd {
            Ok(Command::Migrate { shard, worker }) => match fleet.migrate(shard, worker) {
                Ok(m) => {
                    ctl.write_atomic(&ctl.snapshot_path(m.shard), &m.snapshot)
                        .unwrap_or_else(|e| fail(&e));
                    if !quiet {
                        eprintln!(
                            "scrubd: migrated shard {} worker {} -> {} ({} snapshot bytes)",
                            m.shard,
                            m.from_worker,
                            m.to_worker,
                            m.snapshot.len()
                        );
                    }
                }
                Err(e) => eprintln!("scrubd: migrate failed: {e}"),
            },
            Ok(Command::Snapshot) => {
                let ids: Vec<u32> = fleet.shards().iter().map(|s| s.id).collect();
                for id in ids {
                    match fleet.snapshot_shard(id) {
                        Ok(bytes) => ctl
                            .write_atomic(&ctl.snapshot_path(id), &bytes)
                            .unwrap_or_else(|e| fail(&e)),
                        Err(e) => eprintln!("scrubd: snapshot failed: {e}"),
                    }
                }
                if !quiet {
                    eprintln!("scrubd: snapshotted {} shards", fleet.shards().len());
                }
            }
            Ok(Command::Stop) => stop = true,
            Err(e) => eprintln!("scrubd: ignoring malformed command: {e}"),
        }
    }
    stop
}

/// Rebuilds the fleet from the journal and generation store.
fn resume_fleet(
    config: FleetConfig,
    ctl: &ControlDir,
    gens: &GenStore,
    quiet: bool,
) -> (Fleet, Option<u64>) {
    // Tripwire for the differential harness: a deliberately broken
    // recovery that skips journal replay and trusts snapshots alone. It
    // resurrects quarantined shards as healthy and forgets the command
    // watermark — the chaos campaign proves the harness catches it.
    let skip_wal = std::env::var("SCRUBD_UNSAFE_SKIP_WAL").is_ok_and(|v| v == "1");
    let (round, watermark, wal_health) = if skip_wal {
        eprintln!("scrubd: UNSAFE: skipping write-ahead journal replay (tripwire mode)");
        (u64::MAX, None, Vec::new())
    } else {
        let (records, dropped_tail) =
            Wal::load(ctl.root(), config.fingerprint()).unwrap_or_else(|e| fail(&e));
        if dropped_tail {
            eprintln!("scrubd: journal had a torn final record; dropped it");
        }
        match records.last() {
            Some(last) => {
                let watermark = (last.seq != u64::MAX).then_some(last.seq);
                (last.round, watermark, last.health.clone())
            }
            None => (0, None, Vec::new()),
        }
    };
    let mut restores = Vec::with_capacity(config.shards as usize);
    let mut max_ckpt_round = 0u64;
    for id in 0..config.shards {
        let health = wal_health
            .iter()
            .find(|(s, _)| *s == id)
            .map_or(Health::Healthy, |(_, h)| h.clone());
        let snapshot = gens.load(id);
        match &snapshot {
            Ok((gen, _)) => {
                if *gen > 0 {
                    eprintln!(
                        "scrubd: shard {id}: generation 0 unreadable, recovered from \
                         generation {gen}"
                    );
                }
            }
            Err(e) => eprintln!("scrubd: {e}; quarantining shard {id}"),
        }
        restores.push(ShardRestore {
            health,
            snapshot: snapshot.map(|(_, bytes)| bytes),
        });
    }
    // Without the journal the only clock is the snapshots themselves.
    let round = if round == u64::MAX {
        for (id, r) in restores.iter().enumerate() {
            if let Ok(bytes) = &r.snapshot {
                if let Ok(sim) =
                    scrub_core::Simulation::resume(config.shard_config(id as u32), bytes)
                {
                    max_ckpt_round =
                        max_ckpt_round.max((sim.clock_s() / config.cadence_s).floor() as u64);
                }
            }
        }
        max_ckpt_round
    } else {
        round
    };
    let fleet = Fleet::resume(config, round, restores).unwrap_or_else(|e| fail(&e));
    if !quiet {
        eprintln!(
            "scrubd: resumed fleet at round {} (replayed {} round(s), {} quarantined)",
            fleet.round(),
            fleet.stats().recovery_rounds,
            fleet.quarantined()
        );
    }
    (fleet, watermark)
}

fn main() -> ExitCode {
    let args = parse_args();
    if let Err(e) = scrub_exec::env_threads() {
        fail(&e);
    }
    let text = std::fs::read_to_string(&args.config)
        .unwrap_or_else(|e| fail(&format!("cannot read config {:?}: {e}", args.config)));
    let config: FleetConfig = text.parse().unwrap_or_else(|e: String| fail(&e));
    let ctl = ControlDir::new(&args.control);
    ctl.ensure_layout().unwrap_or_else(|e| fail(&e));
    let gens = GenStore::new(ctl.root().join("snapshots"), config.supervisor.generations);
    let fingerprint = config.fingerprint();

    let (mut fleet, mut watermark, wal) = if args.resume_fleet {
        let (fleet, watermark) = resume_fleet(config, &ctl, &gens, args.quiet);
        (fleet, watermark, Wal::open_existing(ctl.root()))
    } else {
        let fleet = Fleet::new(config);
        let wal = Wal::create(ctl.root(), fingerprint).unwrap_or_else(|e| fail(&e.to_string()));
        // Persist every shard's t=0 checkpoint so a crash inside the very
        // first round still has a recovery point.
        for shard in fleet.shards() {
            let (bytes, _) = shard.last_good();
            gens.persist(shard.id, bytes)
                .unwrap_or_else(|e| fail(&e.to_string()));
        }
        (fleet, None, wal)
    };
    fleet.set_chaos(args.chaos.clone());

    if !args.quiet {
        eprintln!(
            "scrubd: fleet of {} banks in {} shards, horizon {}s, cadence {}s",
            fleet.config().banks,
            fleet.config().shards,
            fleet.config().horizon_s,
            fleet.config().cadence_s
        );
    }
    publish(&fleet, &ctl, FleetState::Running, watermark, false);
    let mut state = FleetState::Running;
    while !fleet.done() {
        if apply_commands(&mut fleet, &ctl, &mut watermark, args.quiet) {
            state = FleetState::Stopped;
            break;
        }
        for event in fleet.advance_round() {
            match event {
                RoundEvent::Failed {
                    shard,
                    kind,
                    attempts,
                    next_retry_round,
                } => eprintln!(
                    "scrubd: shard {shard} failed ({kind}), attempt {attempts}; \
                     retrying at round {next_retry_round}"
                ),
                RoundEvent::Recovered { shard, mttr_rounds } => {
                    eprintln!("scrubd: shard {shard} recovered after {mttr_rounds} round(s)")
                }
                RoundEvent::Quarantined { shard, kind } => {
                    eprintln!("scrubd: shard {shard} QUARANTINED ({kind})")
                }
            }
        }
        let round = fleet.round();
        let kill_here = args
            .chaos
            .as_ref()
            .and_then(|c| (c.kill_round == Some(round)).then_some(c.kill_point));
        if kill_here == Some(KillPoint::Pre) {
            chaos_kill(round, KillPoint::Pre);
        }
        // Persist the generations of every shard that sealed a new
        // checkpoint this round.
        let persisted_this_round: Vec<u32> = fleet
            .shards()
            .iter()
            .filter(|s| s.last_good().1 == round)
            .map(|s| s.id)
            .collect();
        let mid_point = (persisted_this_round.len() / 2).max(1);
        for (i, id) in persisted_this_round.iter().enumerate() {
            if kill_here == Some(KillPoint::Mid) && i == mid_point {
                chaos_kill(round, KillPoint::Mid);
            }
            let shard = fleet.shards().iter().find(|s| s.id == *id).expect("listed");
            gens.persist(*id, shard.last_good().0)
                .unwrap_or_else(|e| fail(&e.to_string()));
        }
        if kill_here == Some(KillPoint::Mid) {
            // Fewer shards than the midpoint: still die before the WAL
            // record so recovery sees generations ahead of the journal.
            chaos_kill(round, KillPoint::Mid);
        }
        // Chaos: rot persisted generations on disk, after the persist.
        if let Some(chaos) = &args.chaos {
            for (shard, gen, mode) in chaos.corrupt_gens_at(round) {
                let path = gens.path(shard, gen);
                if let Ok(mut bytes) = std::fs::read(&path) {
                    chaos.damage(mode, shard, gen, &mut bytes);
                    std::fs::write(&path, &bytes)
                        .unwrap_or_else(|e| fail(&format!("chaos corrupt_gen: {e}")));
                    eprintln!("scrubd: chaos: corrupted {} ({mode:?})", path.display());
                }
            }
        }
        wal.append(&RoundRecord {
            round,
            t_ms: (fleet.clock_s() * 1000.0).round() as u64,
            seq: watermark.unwrap_or(u64::MAX),
            health: fleet
                .shards()
                .iter()
                .map(|s| (s.id, s.health().clone()))
                .collect(),
        })
        .unwrap_or_else(|e| fail(&e.to_string()));
        let torn = args.chaos.as_ref().is_some_and(|c| c.torn_status_at(round));
        publish(
            &fleet,
            &ctl,
            if fleet.done() {
                if fleet.quarantined() > 0 {
                    FleetState::Degraded
                } else {
                    FleetState::Finished
                }
            } else {
                FleetState::Running
            },
            watermark,
            torn,
        );
        if kill_here == Some(KillPoint::Post) {
            chaos_kill(round, KillPoint::Post);
        }
        if args.round_wall_ms > 0 && !fleet.done() {
            std::thread::sleep(std::time::Duration::from_millis(args.round_wall_ms));
        }
    }
    if state == FleetState::Running {
        state = if fleet.quarantined() > 0 {
            FleetState::Degraded
        } else {
            FleetState::Finished
        };
    }
    // A post-horizon stop/snapshot backlog still deserves consumption so
    // `scrubctl stop` against a finished fleet is not an error.
    apply_commands(&mut fleet, &ctl, &mut watermark, args.quiet);
    publish(&fleet, &ctl, state, watermark, false);
    if !args.quiet {
        eprintln!(
            "scrubd: {} after {} rounds at t={}s ({} migrations, {} retries, {} quarantined)",
            state.name(),
            fleet.round(),
            fleet.clock_s(),
            fleet.migrations(),
            fleet.stats().retries,
            fleet.quarantined()
        );
    }
    ExitCode::SUCCESS
}
