//! `scrubd` — the fleet daemon.
//!
//! ```text
//! scrubd --config fleet.conf --control /run/scrub-fleet [--round-wall-ms 0] [--quiet]
//! ```
//!
//! Loads the fleet config, then advances the fleet one cadence round at a
//! time. After every round it atomically rewrites `status.json`,
//! `rollup.json`, and the per-shard telemetry under `shards/`, then
//! consumes any pending `scrubctl` commands (migrate / snapshot / stop).
//! `--round-wall-ms` throttles wall-clock pacing so an interactive
//! `scrubctl` can land commands mid-run; the default of 0 runs the
//! horizon as fast as it simulates. Exit code 2 flags bad input, with a
//! single-line error on stderr.

use std::process::ExitCode;

use scrubd::status::{self, FleetState};
use scrubd::{Command, ControlDir, Fleet, FleetConfig};

fn fail(msg: &str) -> ! {
    eprintln!("scrubd: {msg}");
    std::process::exit(2);
}

fn usage() -> ! {
    eprintln!("usage: scrubd --config FILE --control DIR [--round-wall-ms N] [--quiet]");
    std::process::exit(2);
}

struct Args {
    config: String,
    control: String,
    round_wall_ms: u64,
    quiet: bool,
}

fn parse_args() -> Args {
    let mut config = None;
    let mut control = None;
    let mut round_wall_ms = 0;
    let mut quiet = false;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = || {
            it.next()
                .unwrap_or_else(|| fail(&format!("{arg} requires a value")))
        };
        match arg.as_str() {
            "--config" => config = Some(value()),
            "--control" => control = Some(value()),
            "--round-wall-ms" => {
                let raw = value();
                round_wall_ms = raw.parse().unwrap_or_else(|_| {
                    fail(&format!(
                        "--round-wall-ms must be a non-negative integer, got {raw:?}"
                    ))
                });
            }
            "--quiet" => quiet = true,
            _ => usage(),
        }
    }
    Args {
        config: config.unwrap_or_else(|| fail("--config is required")),
        control: control.unwrap_or_else(|| fail("--control is required")),
        round_wall_ms,
        quiet,
    }
}

/// Writes the round's telemetry artifacts; any I/O failure is fatal (the
/// control plane is the daemon's only output).
fn publish(fleet: &Fleet, ctl: &ControlDir, state: FleetState) {
    for shard in fleet.shards() {
        let doc = fleet
            .shard_document(shard.id)
            .expect("every shard documents itself");
        ctl.write_atomic(&ctl.shard_doc_path(shard.id), doc.to_json().as_bytes())
            .unwrap_or_else(|e| fail(&e));
    }
    ctl.write_atomic(&ctl.rollup_path(), fleet.rollup().to_json().as_bytes())
        .unwrap_or_else(|e| fail(&e));
    ctl.write_atomic(&ctl.status_path(), status::render(fleet, state).as_bytes())
        .unwrap_or_else(|e| fail(&e));
}

/// Applies every pending command. Returns `true` if a stop was consumed.
fn apply_commands(fleet: &mut Fleet, ctl: &ControlDir, quiet: bool) -> bool {
    let mut stop = false;
    for cmd in ctl.take_pending().unwrap_or_else(|e| fail(&e)) {
        match cmd {
            Ok(Command::Migrate { shard, worker }) => match fleet.migrate(shard, worker) {
                Ok(m) => {
                    ctl.write_atomic(&ctl.snapshot_path(m.shard), &m.snapshot)
                        .unwrap_or_else(|e| fail(&e));
                    if !quiet {
                        eprintln!(
                            "scrubd: migrated shard {} worker {} -> {} ({} snapshot bytes)",
                            m.shard,
                            m.from_worker,
                            m.to_worker,
                            m.snapshot.len()
                        );
                    }
                }
                Err(e) => eprintln!("scrubd: migrate failed: {e}"),
            },
            Ok(Command::Snapshot) => {
                let ids: Vec<u32> = fleet.shards().iter().map(|s| s.id).collect();
                for id in ids {
                    let bytes = fleet.snapshot_shard(id).unwrap_or_else(|e| fail(&e));
                    ctl.write_atomic(&ctl.snapshot_path(id), &bytes)
                        .unwrap_or_else(|e| fail(&e));
                }
                if !quiet {
                    eprintln!("scrubd: snapshotted {} shards", fleet.shards().len());
                }
            }
            Ok(Command::Stop) => stop = true,
            Err(e) => eprintln!("scrubd: ignoring malformed command: {e}"),
        }
    }
    stop
}

fn main() -> ExitCode {
    let args = parse_args();
    if let Err(e) = scrub_exec::env_threads() {
        fail(&e);
    }
    let text = std::fs::read_to_string(&args.config)
        .unwrap_or_else(|e| fail(&format!("cannot read config {:?}: {e}", args.config)));
    let config: FleetConfig = text.parse().unwrap_or_else(|e: String| fail(&e));
    let ctl = ControlDir::new(&args.control);
    ctl.ensure_layout().unwrap_or_else(|e| fail(&e));

    let mut fleet = Fleet::new(config);
    if !args.quiet {
        eprintln!(
            "scrubd: fleet of {} banks in {} shards, horizon {}s, cadence {}s",
            fleet.config().banks,
            fleet.config().shards,
            fleet.config().horizon_s,
            fleet.config().cadence_s
        );
    }
    publish(&fleet, &ctl, FleetState::Running);
    let mut state = FleetState::Running;
    while !fleet.done() {
        if apply_commands(&mut fleet, &ctl, args.quiet) {
            state = FleetState::Stopped;
            break;
        }
        fleet.advance_round();
        publish(
            &fleet,
            &ctl,
            if fleet.done() {
                FleetState::Finished
            } else {
                FleetState::Running
            },
        );
        if args.round_wall_ms > 0 && !fleet.done() {
            std::thread::sleep(std::time::Duration::from_millis(args.round_wall_ms));
        }
    }
    if state == FleetState::Running {
        state = FleetState::Finished;
    }
    // A post-horizon stop/snapshot backlog still deserves consumption so
    // `scrubctl stop` against a finished fleet is not an error.
    apply_commands(&mut fleet, &ctl, args.quiet);
    publish(&fleet, &ctl, state);
    if !args.quiet {
        eprintln!(
            "scrubd: {} after {} rounds at t={}s ({} migrations)",
            state.name(),
            fleet.round(),
            fleet.clock_s(),
            fleet.migrations()
        );
    }
    ExitCode::SUCCESS
}
