//! The fleet status document: the daemon's view of the world, as JSON.
//!
//! Written atomically to `status.json` every cadence round and parsed
//! back by `scrubctl` (which also uses it to validate commands — e.g.
//! rejecting a migrate naming a shard the fleet does not have — without
//! having to talk to the daemon synchronously). Besides the simulation
//! view, the document carries the supervision surface: each shard's
//! health, the fleet quarantine count, and the command-sequence
//! watermark (`cmd_seq`) clients chain new submissions after.

use scrub_telemetry::json::{self, fmt_f64, Value};

use crate::fleet::{Fleet, TenantSlo};

/// Daemon lifecycle state recorded in the status document.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FleetState {
    /// Rounds are still advancing.
    Running,
    /// The horizon was reached with every shard healthy.
    Finished,
    /// The horizon was reached (or nothing is left to do) but at least
    /// one shard sits in quarantine.
    Degraded,
    /// A `stop` command ended the run early.
    Stopped,
}

impl FleetState {
    /// Canonical lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            FleetState::Running => "running",
            FleetState::Finished => "finished",
            FleetState::Degraded => "degraded",
            FleetState::Stopped => "stopped",
        }
    }

    /// Parses the canonical name.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "running" => Ok(FleetState::Running),
            "finished" => Ok(FleetState::Finished),
            "degraded" => Ok(FleetState::Degraded),
            "stopped" => Ok(FleetState::Stopped),
            other => Err(format!("unknown fleet state {other:?}")),
        }
    }
}

/// One shard's row in the status document.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardStatus {
    /// Shard id.
    pub id: u32,
    /// Worker it is placed on.
    pub worker: u32,
    /// Simulated time covered.
    pub clock_s: f64,
    /// Times it has been migrated.
    pub migrations: u64,
    /// Demand ops delivered so far (reads + writes).
    pub demand_ops: u64,
    /// Uncorrectable errors observed.
    pub ue: u64,
    /// Supervision state name (`healthy` / `retrying` / `quarantined`).
    pub health: String,
}

/// The parsed status document.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetStatus {
    /// Lifecycle state.
    pub state: FleetState,
    /// Completed cadence rounds.
    pub round: u64,
    /// Fleet simulated clock.
    pub clock_s: f64,
    /// Configured horizon.
    pub horizon_s: f64,
    /// Total banks.
    pub banks: u64,
    /// Shards currently quarantined.
    pub quarantined: u64,
    /// Highest command sequence consumed so far (absent until the first
    /// command is consumed) — new submissions chain after this.
    pub cmd_seq: Option<u64>,
    /// Policy spec string.
    pub policy: String,
    /// Tenant mix spec string.
    pub tenants_spec: String,
    /// Per-shard rows, in id order.
    pub shards: Vec<ShardStatus>,
    /// Per-tenant service-level rows, in spec order.
    pub slo: Vec<TenantSlo>,
}

/// Renders the status document for a fleet in `state`. `cmd_seq` is the
/// daemon's command watermark (omitted until a command was consumed).
pub fn render(fleet: &Fleet, state: FleetState, cmd_seq: Option<u64>) -> String {
    let shards = fleet
        .shards()
        .iter()
        .map(|s| {
            let stats = s.stats();
            format!(
                "    {{\"id\": {}, \"worker\": {}, \"clock_s\": {}, \"migrations\": {}, \
                 \"demand_ops\": {}, \"ue\": {}, \"health\": \"{}\"}}",
                s.id,
                s.worker,
                fmt_f64(s.clock_s()),
                s.migrations,
                stats.demand_reads + stats.demand_writes,
                stats.uncorrectable(),
                s.health().name()
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let slo = fleet
        .slo()
        .iter()
        .map(|t| {
            format!(
                "    {{\"tenant\": {}, \"name\": \"{}\", \"expected_ops\": {}, \"reads\": {}, \
                 \"writes\": {}, \"attainment\": {}}}",
                t.tenant,
                json::escape(&t.name),
                fmt_f64(t.expected_ops),
                t.reads,
                t.writes,
                fmt_f64(t.attainment)
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let cmd_seq_line = cmd_seq.map_or(String::new(), |w| format!("  \"cmd_seq\": {w},\n"));
    format!(
        "{{\n  \"state\": \"{}\",\n  \"round\": {},\n  \"clock_s\": {},\n  \"horizon_s\": {},\n  \
         \"banks\": {},\n  \"shards\": {},\n  \"quarantined\": {},\n{}  \"policy\": \"{}\",\n  \
         \"tenants\": \"{}\",\n  \
         \"shard_table\": [\n{}\n  ],\n  \"slo\": [\n{}\n  ]\n}}\n",
        state.name(),
        fleet.round(),
        fmt_f64(fleet.clock_s()),
        fmt_f64(fleet.config().horizon_s),
        fleet.config().banks,
        fleet.config().shards,
        fleet.quarantined(),
        cmd_seq_line,
        json::escape(&fleet.config().policy_spec),
        json::escape(&fleet.config().tenants.to_string()),
        shards,
        slo
    )
}

/// Parses a status document, rejecting anything structurally off.
pub fn parse(text: &str) -> Result<FleetStatus, String> {
    let v = json::parse(text)?;
    let str_of = |key: &str| {
        v.get(key)
            .and_then(Value::as_str)
            .map(str::to_string)
            .ok_or_else(|| format!("status missing {key}"))
    };
    let u64_of = |key: &str| {
        v.get(key)
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("status missing {key}"))
    };
    let f64_of = |key: &str| {
        v.get(key)
            .and_then(Value::as_f64)
            .ok_or_else(|| format!("status missing {key}"))
    };
    let shards = v
        .get("shard_table")
        .and_then(Value::as_arr)
        .ok_or("status missing shard_table")?
        .iter()
        .map(|row| {
            let get = |k: &str| {
                row.get(k)
                    .and_then(Value::as_u64)
                    .ok_or_else(|| format!("shard row missing {k}"))
            };
            Ok(ShardStatus {
                id: get("id")? as u32,
                worker: get("worker")? as u32,
                clock_s: row
                    .get("clock_s")
                    .and_then(Value::as_f64)
                    .ok_or("shard row missing clock_s")?,
                migrations: get("migrations")?,
                demand_ops: get("demand_ops")?,
                ue: get("ue")?,
                health: row
                    .get("health")
                    .and_then(Value::as_str)
                    .ok_or("shard row missing health")?
                    .to_string(),
            })
        })
        .collect::<Result<Vec<_>, String>>()?;
    let slo = v
        .get("slo")
        .and_then(Value::as_arr)
        .ok_or("status missing slo")?
        .iter()
        .map(|row| {
            Ok(TenantSlo {
                tenant: row
                    .get("tenant")
                    .and_then(Value::as_u64)
                    .ok_or("slo row missing tenant")? as u32,
                name: row
                    .get("name")
                    .and_then(Value::as_str)
                    .ok_or("slo row missing name")?
                    .to_string(),
                expected_ops: row
                    .get("expected_ops")
                    .and_then(Value::as_f64)
                    .ok_or("slo row missing expected_ops")?,
                reads: row
                    .get("reads")
                    .and_then(Value::as_u64)
                    .ok_or("slo row missing reads")?,
                writes: row
                    .get("writes")
                    .and_then(Value::as_u64)
                    .ok_or("slo row missing writes")?,
                attainment: row
                    .get("attainment")
                    .and_then(Value::as_f64)
                    .ok_or("slo row missing attainment")?,
            })
        })
        .collect::<Result<Vec<_>, String>>()?;
    Ok(FleetStatus {
        state: FleetState::parse(&str_of("state")?)?,
        round: u64_of("round")?,
        clock_s: f64_of("clock_s")?,
        horizon_s: f64_of("horizon_s")?,
        banks: u64_of("banks")?,
        quarantined: u64_of("quarantined")?,
        cmd_seq: v.get("cmd_seq").and_then(Value::as_u64),
        policy: str_of("policy")?,
        tenants_spec: str_of("tenants")?,
        shards,
        slo,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FleetConfig;

    fn tiny_fleet() -> Fleet {
        let config: FleetConfig = "[fleet]\n\
             banks = 4\nlines-per-bank = 32\nshards = 2\nseed = 3\n\
             horizon-s = 600\ncadence-s = 300\npolicy = basic@300\nengine = stepped\n\
             [tenants]\nmix = alpha:rate=30\n"
            .parse()
            .expect("valid");
        Fleet::new(config)
    }

    #[test]
    fn status_round_trips() {
        let mut fleet = tiny_fleet();
        fleet.advance_round();
        let text = render(&fleet, FleetState::Running, Some(4));
        let parsed = parse(&text).expect("parses");
        assert_eq!(parsed.state, FleetState::Running);
        assert_eq!(parsed.round, 1);
        assert_eq!(parsed.quarantined, 0);
        assert_eq!(parsed.cmd_seq, Some(4));
        assert_eq!(parsed.shards.len(), 2);
        assert_eq!(parsed.slo.len(), 1);
        assert_eq!(parsed.slo[0].name, "alpha");
        assert!(parsed.shards.iter().all(|s| s.clock_s == 300.0));
        assert!(parsed.shards.iter().all(|s| s.health == "healthy"));
    }

    #[test]
    fn cmd_seq_is_optional_until_first_consume() {
        let fleet = tiny_fleet();
        let text = render(&fleet, FleetState::Running, None);
        let parsed = parse(&text).expect("parses");
        assert_eq!(parsed.cmd_seq, None);
    }

    #[test]
    fn quarantine_shows_in_state_and_rows() {
        let mut fleet = tiny_fleet();
        fleet.set_chaos(Some("panic_shard=1@1:1000".parse().unwrap()));
        while !fleet.done() {
            fleet.advance_round();
        }
        let text = render(&fleet, FleetState::Degraded, None);
        let parsed = parse(&text).expect("parses");
        assert_eq!(parsed.state, FleetState::Degraded);
        assert_eq!(parsed.quarantined, 1);
        assert_eq!(parsed.shards[1].health, "quarantined");
        assert_eq!(parsed.shards[0].health, "healthy");
    }

    #[test]
    fn parse_rejects_wrong_shape() {
        assert!(parse("{}").is_err());
        assert!(parse("not json").is_err());
        let mut fleet = tiny_fleet();
        fleet.advance_round();
        let broken =
            render(&fleet, FleetState::Running, None).replace("\"shard_table\"", "\"nope\"");
        assert!(parse(&broken).unwrap_err().contains("shard_table"));
    }
}
