//! The fleet engine: many shard simulations advanced in cadence rounds
//! over the `scrub-exec` pool, supervised by a per-shard health state
//! machine, with checkpoint-backed shard migration and telemetry
//! roll-ups.
//!
//! A *shard* is one complete [`Simulation`] covering `banks/shards` banks
//! under the full tenant mix at `1/shards` rate. Shards are independent
//! and seed-deterministic, so the fleet advances them in parallel —
//! results are bit-identical for every worker count — and a shard drained
//! to a checkpoint resumes byte-identically on any other worker
//! (migration changes *where* a shard runs, never *what* it computes).
//!
//! The supervisor rides on the same determinism: each round every
//! runnable shard advances inside a panic-isolated pool job
//! ([`scrub_exec::par_try_map_mut`]) and then seals a round checkpoint.
//! A panic, lost worker, or corrupt checkpoint rolls the shard back to
//! its last good checkpoint and schedules a retry after a bounded
//! exponential backoff ([`SupervisorConfig::backoff_rounds`]); because
//! replay is deterministic, a recovered shard re-computes the *same*
//! rounds and the fleet roll-up converges byte-identically to an
//! undisturbed run. A shard that exhausts its retry budget is
//! [quarantined](Health::Quarantined): frozen at its last good state,
//! visible everywhere, never fatal to the fleet.

use pcm_memsim::MemStats;
use scrub_core::Simulation;
use scrub_telemetry::{keys, Document};

use crate::chaos::ChaosSpec;
use crate::config::FleetConfig;
use crate::health::{FailureKind, Health, RecoveryError};

/// One shard: a simulation plus its placement and supervision state.
#[derive(Debug)]
pub struct Shard {
    /// Shard id, `0..config.shards`.
    pub id: u32,
    /// Worker the shard is currently placed on (round-robin at start;
    /// migration moves it).
    pub worker: u32,
    /// Times this shard has been drained and resumed elsewhere.
    pub migrations: u64,
    /// Supervision state (healthy / retrying / quarantined).
    health: Health,
    /// Last validated sealed checkpoint and the round it captured.
    /// Failures roll back to exactly these bytes.
    last_good: Vec<u8>,
    /// Round `last_good` was taken at.
    last_good_round: u64,
    /// `None` only when quarantine left nothing to resume (every
    /// recovery source exhausted).
    sim: Option<Simulation>,
}

impl Shard {
    /// Simulated time this shard has covered (frozen while quarantined).
    pub fn clock_s(&self) -> f64 {
        self.sim.as_ref().map_or(0.0, Simulation::clock_s)
    }

    /// Cumulative memory statistics (zeroed when no state survived).
    pub fn stats(&self) -> MemStats {
        self.sim
            .as_ref()
            .map_or_else(MemStats::default, |s| s.memory().stats())
    }

    /// Per-tenant `(name, reads, writes)` delivered-op rows.
    pub fn tenant_ops(&self) -> Vec<(String, u64, u64)> {
        self.sim
            .as_ref()
            .and_then(|s| s.tenant_ops())
            .unwrap_or_default()
    }

    /// Supervision state.
    pub fn health(&self) -> &Health {
        &self.health
    }

    /// Last validated sealed checkpoint and the round it captured — what
    /// the daemon persists as generation 0.
    pub fn last_good(&self) -> (&[u8], u64) {
        (&self.last_good, self.last_good_round)
    }
}

/// What a completed migration did, for status output and tests.
#[derive(Debug, Clone, PartialEq)]
pub struct Migration {
    /// Which shard moved.
    pub shard: u32,
    /// Worker it was drained from.
    pub from_worker: u32,
    /// Worker it resumed on.
    pub to_worker: u32,
    /// The drained snapshot (sealed checkpoint bytes) — the exact bytes
    /// the destination resumed from.
    pub snapshot: Vec<u8>,
}

/// What the supervisor did during one [`Fleet::advance_round`], for
/// daemon logging and tests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RoundEvent {
    /// A shard's round attempt failed and was rolled back for retry.
    Failed {
        /// Which shard.
        shard: u32,
        /// Failure class.
        kind: FailureKind,
        /// Failed attempts so far.
        attempts: u32,
        /// Round the next retry is due.
        next_retry_round: u64,
    },
    /// A retrying shard replayed back to the fleet round.
    Recovered {
        /// Which shard.
        shard: u32,
        /// Rounds from first failure to recovery (MTTR in rounds).
        mttr_rounds: u64,
    },
    /// A shard exhausted its retry budget.
    Quarantined {
        /// Which shard.
        shard: u32,
        /// The failure class that exhausted the budget.
        kind: FailureKind,
    },
}

/// Fleet-wide supervision counters, mirrored into
/// [`Fleet::health_document`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SupervisionStats {
    /// Failed round attempts rolled back for retry.
    pub retries: u64,
    /// Shards that returned from Retrying to Healthy.
    pub recoveries: u64,
    /// Rounds of lost progress replayed from checkpoints (failures and
    /// resume catch-up).
    pub recovery_rounds: u64,
    /// Worst observed recovery time, in rounds (first failure →
    /// recovered).
    pub mttr_max_rounds: u64,
}

/// How one shard comes back in [`Fleet::resume`].
#[derive(Debug)]
pub struct ShardRestore {
    /// Health recorded in the write-ahead journal at the crash point.
    pub health: Health,
    /// The newest checkpoint generation that still validates, or the
    /// typed exhaustion when none did.
    pub snapshot: Result<Vec<u8>, RecoveryError>,
}

/// The whole fleet: every shard plus round bookkeeping.
#[derive(Debug)]
pub struct Fleet {
    config: FleetConfig,
    shards: Vec<Shard>,
    round: u64,
    chaos: Option<ChaosSpec>,
    stats: SupervisionStats,
}

/// One shard's pool job for a round; owns the simulation while the pool
/// runs so a panic can only damage this shard.
struct RoundJob {
    idx: usize,
    id: u32,
    target: f64,
    inject_panic: bool,
    corrupt_ckpt: bool,
    want_ckpt: bool,
    sim: Option<Simulation>,
}

impl Fleet {
    /// Builds every shard simulation; shard `i` starts on worker
    /// `i % pool_threads()`. Each shard's initial (t = 0) checkpoint is
    /// taken immediately so the supervisor always has a rollback point.
    pub fn new(config: FleetConfig) -> Fleet {
        let workers = config.pool_threads() as u32;
        let shards = (0..config.shards)
            .map(|id| {
                let sim = Simulation::new(config.shard_config(id));
                let mut sh = Shard {
                    id,
                    worker: id % workers.max(1),
                    migrations: 0,
                    health: Health::Healthy,
                    last_good: Vec::new(),
                    last_good_round: 0,
                    sim: Some(sim),
                };
                sh.last_good = sh
                    .sim
                    .as_mut()
                    .expect("fresh shard")
                    .checkpoint()
                    .expect("t=0 checkpoint of a fresh simulation cannot fail");
                sh
            })
            .collect();
        Fleet {
            config,
            shards,
            round: 0,
            chaos: None,
            stats: SupervisionStats::default(),
        }
    }

    /// Installs a deterministic fault-injection schedule (round panics
    /// and checkpoint corruption; daemon-level faults are handled by the
    /// binary). `None` clears it.
    pub fn set_chaos(&mut self, chaos: Option<ChaosSpec>) {
        self.chaos = chaos;
    }

    /// Rebuilds a fleet from persisted state: per-shard health tokens and
    /// the newest checkpoint generation that validated (from the
    /// write-ahead journal and generation store). Shards behind `round`
    /// replay forward deterministically; a shard whose every generation
    /// was exhausted comes back as a typed quarantine, never an error.
    pub fn resume(
        config: FleetConfig,
        round: u64,
        restores: Vec<ShardRestore>,
    ) -> Result<Fleet, String> {
        if restores.len() != config.shards as usize {
            return Err(format!(
                "resume wants {} shard restores, got {}",
                config.shards,
                restores.len()
            ));
        }
        let workers = config.pool_threads() as u32;
        let target = (round as f64 * config.cadence_s).min(config.horizon_s);
        let mut stats = SupervisionStats::default();
        let mut shards = Vec::with_capacity(restores.len());
        for (id, restore) in (0u32..).zip(restores) {
            let shard = match restore.snapshot {
                Ok(snapshot) => {
                    let mut sim = Simulation::resume(config.shard_config(id), &snapshot)
                        .map_err(|e| format!("shard {id}: cannot resume: {e}"))?;
                    // A shard restored from an older generation (or killed
                    // after WAL-append but before its persist) replays the
                    // missing rounds; determinism makes the replay exact.
                    // Retrying/quarantined shards stay frozen at their
                    // checkpoint — the round loop owns their replay.
                    if matches!(restore.health, Health::Healthy) && sim.clock_s() < target {
                        let behind = ((target - sim.clock_s()) / config.cadence_s).ceil() as u64;
                        stats.recovery_rounds += behind;
                        sim.run_to(target);
                    }
                    let ckpt_round = (sim.clock_s() / config.cadence_s).floor() as u64;
                    Shard {
                        id,
                        worker: id % workers.max(1),
                        migrations: 0,
                        health: restore.health,
                        last_good: snapshot,
                        last_good_round: ckpt_round.min(round),
                        sim: Some(sim),
                    }
                }
                Err(err) => {
                    let RecoveryError::Exhausted { .. } = &err;
                    Shard {
                        id,
                        worker: id % workers.max(1),
                        migrations: 0,
                        health: Health::Quarantined {
                            at_round: round,
                            kind: FailureKind::Exhausted,
                        },
                        last_good: Vec::new(),
                        last_good_round: 0,
                        sim: None,
                    }
                }
            };
            shards.push(shard);
        }
        Ok(Fleet {
            config,
            shards,
            round,
            chaos: None,
            stats,
        })
    }

    /// The fleet configuration.
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// The shards, in id order.
    pub fn shards(&self) -> &[Shard] {
        &self.shards
    }

    /// Completed cadence rounds.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Fleet-wide supervision counters.
    pub fn stats(&self) -> &SupervisionStats {
        &self.stats
    }

    /// Shards currently quarantined.
    pub fn quarantined(&self) -> u64 {
        self.shards
            .iter()
            .filter(|s| s.health.is_quarantined())
            .count() as u64
    }

    /// Fleet simulated clock: the furthest time any shard has covered
    /// (retrying shards lag until their replay catches up).
    pub fn clock_s(&self) -> f64 {
        self.shards.iter().map(Shard::clock_s).fold(0.0, f64::max)
    }

    /// Whether the fleet has nothing left to do: every shard has either
    /// reached the horizon or been quarantined. Retrying shards keep the
    /// fleet running until they recover or exhaust their budget.
    pub fn done(&self) -> bool {
        self.shards.iter().all(|s| match &s.health {
            Health::Healthy => s.clock_s() >= self.config.horizon_s,
            Health::Retrying { .. } => false,
            Health::Quarantined { .. } => true,
        })
    }

    /// Advances every runnable shard to the next cadence boundary
    /// (clamped to the horizon), fanning shards out over the pool with
    /// per-job panic isolation, then validates each shard's round
    /// checkpoint. Failures roll the shard back to its last good
    /// checkpoint and schedule a deterministic retry; determinism makes
    /// the eventual replay byte-identical, so supervision never shows up
    /// in the roll-up of a recovered fleet.
    pub fn advance_round(&mut self) -> Vec<RoundEvent> {
        self.round += 1;
        let round = self.round;
        let target = (round as f64 * self.config.cadence_s).min(self.config.horizon_s);
        let want_ckpt = round.is_multiple_of(self.config.supervisor.checkpoint_every_rounds);

        let mut jobs: Vec<RoundJob> = Vec::new();
        for (idx, sh) in self.shards.iter_mut().enumerate() {
            let runnable = match &sh.health {
                Health::Healthy => sh.clock_s() < target,
                Health::Retrying {
                    next_retry_round, ..
                } => round >= *next_retry_round,
                Health::Quarantined { .. } => false,
            };
            if !runnable {
                continue;
            }
            let inject_panic = self
                .chaos
                .as_ref()
                .is_some_and(|c| c.panic_at(sh.id, round));
            let corrupt_ckpt = self
                .chaos
                .as_ref()
                .is_some_and(|c| c.corrupt_ckpt_at(sh.id, round));
            jobs.push(RoundJob {
                idx,
                id: sh.id,
                target,
                inject_panic,
                corrupt_ckpt,
                // A retrying shard always reseals on success so its
                // recovery point moves forward with it.
                want_ckpt: want_ckpt || corrupt_ckpt || !matches!(sh.health, Health::Healthy),
                sim: sh.sim.take(),
            });
        }

        let threads = self.config.pool_threads();
        let chaos = self.chaos.clone();
        let results = scrub_exec::par_try_map_mut(
            threads,
            &mut jobs,
            |_, job| -> Result<Option<Vec<u8>>, String> {
                if job.inject_panic {
                    panic!("chaos: injected panic in shard {} round {round}", job.id);
                }
                let sim = job.sim.as_mut().expect("job owns the simulation");
                sim.run_to(job.target);
                if !job.want_ckpt {
                    return Ok(None);
                }
                let mut sealed = sim.checkpoint().map_err(|e| e.to_string())?;
                if job.corrupt_ckpt {
                    if let Some(spec) = chaos.as_ref() {
                        let at = spec.flip_offset(job.id, round, sealed.len());
                        sealed[at] ^= 0x01;
                    }
                }
                Ok(Some(sealed))
            },
        );

        let mut events = Vec::new();
        for (job, result) in jobs.into_iter().zip(results) {
            let outcome: Result<Option<Vec<u8>>, FailureKind> = match result {
                Err(scrub_exec::JobError::Panicked { .. }) => Err(FailureKind::Panic),
                Err(scrub_exec::JobError::Lost) => Err(FailureKind::Lost),
                Ok(Err(_ckpt_err)) => Err(FailureKind::CorruptCheckpoint),
                Ok(Ok(maybe_sealed)) => match &maybe_sealed {
                    Some(sealed) if scrub_checkpoint::verify(sealed).is_err() => {
                        Err(FailureKind::CorruptCheckpoint)
                    }
                    _ => Ok(maybe_sealed),
                },
            };
            match outcome {
                Ok(maybe_sealed) => {
                    let was = self.shards[job.idx].health.clone();
                    let sh = &mut self.shards[job.idx];
                    sh.sim = job.sim;
                    if let Some(sealed) = maybe_sealed {
                        sh.last_good = sealed;
                        sh.last_good_round = round;
                    }
                    if let Health::Retrying { failed_round, .. } = was {
                        let mttr = round.saturating_sub(failed_round);
                        self.stats.recoveries += 1;
                        self.stats.mttr_max_rounds = self.stats.mttr_max_rounds.max(mttr);
                        self.shards[job.idx].health = Health::Healthy;
                        events.push(RoundEvent::Recovered {
                            shard: job.id,
                            mttr_rounds: mttr,
                        });
                    }
                }
                Err(kind) => {
                    // The job's simulation may be partially mutated (a
                    // panic mid-round) — discard it and roll back.
                    drop(job.sim);
                    events.push(self.fail_shard(job.idx, kind));
                }
            }
        }
        events
    }

    /// Rolls shard `idx` back to its last good checkpoint and either
    /// schedules a retry or quarantines it.
    fn fail_shard(&mut self, idx: usize, kind: FailureKind) -> RoundEvent {
        let round = self.round;
        let seed = self.config.seed;
        let sup = self.config.supervisor.clone();
        let sh = &mut self.shards[idx];
        self.stats.retries += 1;
        self.stats.recovery_rounds += round.saturating_sub(sh.last_good_round);
        let (attempts, failed_round) = match &sh.health {
            Health::Retrying {
                attempts,
                failed_round,
                ..
            } => (*attempts + 1, *failed_round),
            _ => (1, round),
        };
        // Re-arm from the last validated bytes; these were verified when
        // sealed, so a resume failure means the budget is gone too.
        let resumed = Simulation::resume(self.config.shard_config(sh.id), &sh.last_good);
        match resumed {
            Ok(sim) if attempts <= sup.max_retries => {
                sh.sim = Some(sim);
                let next_retry_round = round + sup.backoff_rounds(seed, sh.id, attempts);
                sh.health = Health::Retrying {
                    attempts,
                    failed_round,
                    next_retry_round,
                    kind,
                };
                RoundEvent::Failed {
                    shard: sh.id,
                    kind,
                    attempts,
                    next_retry_round,
                }
            }
            other => {
                sh.sim = other.ok();
                sh.health = Health::Quarantined {
                    at_round: round,
                    kind,
                };
                RoundEvent::Quarantined { shard: sh.id, kind }
            }
        }
    }

    /// Drains `shard` to a checkpoint and resumes it on `to_worker` (or
    /// the next worker round-robin) — the destination rebuilds the
    /// simulation from config and overlays the drained state, continuing
    /// bit-identically. Fails on an unknown shard id, a shard that is
    /// not healthy, or a checkpoint error; the shard is untouched on
    /// failure.
    pub fn migrate(&mut self, shard: u32, to_worker: Option<u32>) -> Result<Migration, String> {
        self.migrate_impl(shard, to_worker, false)
    }

    /// Test-only tripwire: a migration whose drained snapshot silently
    /// drops the in-flight demand op (via
    /// `Simulation::checkpoint_dropping_pending`). Exists so the
    /// differential harness can prove byte-identity checks catch a lossy
    /// migration.
    #[doc(hidden)]
    pub fn migrate_dropping_pending(
        &mut self,
        shard: u32,
        to_worker: Option<u32>,
    ) -> Result<Migration, String> {
        self.migrate_impl(shard, to_worker, true)
    }

    fn migrate_impl(
        &mut self,
        shard: u32,
        to_worker: Option<u32>,
        drop_pending: bool,
    ) -> Result<Migration, String> {
        let workers = self.config.pool_threads() as u32;
        let idx = self
            .shards
            .iter()
            .position(|s| s.id == shard)
            .ok_or_else(|| format!("unknown shard id {shard} (fleet has {})", self.shards.len()))?;
        if !matches!(self.shards[idx].health, Health::Healthy) {
            return Err(format!(
                "cannot migrate shard {shard}: shard is {}",
                self.shards[idx].health.name()
            ));
        }
        let from_worker = self.shards[idx].worker;
        let to_worker = to_worker.unwrap_or((from_worker + 1) % workers.max(1));
        let sim = self.shards[idx]
            .sim
            .as_mut()
            .expect("healthy shard has state");
        let snapshot = if drop_pending {
            sim.checkpoint_dropping_pending()
        } else {
            sim.checkpoint()
        }
        .map_err(|e| format!("cannot drain shard {shard}: {e}"))?;
        let resumed = Simulation::resume(self.config.shard_config(shard), &snapshot)
            .map_err(|e| format!("cannot resume shard {shard}: {e}"))?;
        let sh = &mut self.shards[idx];
        sh.sim = Some(resumed);
        sh.worker = to_worker;
        sh.migrations += 1;
        sh.last_good = snapshot.clone();
        sh.last_good_round = self.round;
        Ok(Migration {
            shard,
            from_worker,
            to_worker,
            snapshot,
        })
    }

    /// Checkpoints `shard` without moving it (the `snapshot` control
    /// verb). A quarantined shard serves its last good checkpoint.
    pub fn snapshot_shard(&mut self, shard: u32) -> Result<Vec<u8>, String> {
        let idx = self
            .shards
            .iter()
            .position(|s| s.id == shard)
            .ok_or_else(|| format!("unknown shard id {shard} (fleet has {})", self.shards.len()))?;
        let sh = &mut self.shards[idx];
        match (&sh.health, sh.sim.as_mut()) {
            (Health::Healthy, Some(sim)) => sim
                .checkpoint()
                .map_err(|e| format!("cannot snapshot shard {shard}: {e}")),
            (_, _) if !sh.last_good.is_empty() => Ok(sh.last_good.clone()),
            _ => Err(format!(
                "cannot snapshot shard {shard}: shard is {} with no recovery point",
                sh.health.name()
            )),
        }
    }

    /// Total completed migrations across all shards.
    pub fn migrations(&self) -> u64 {
        self.shards.iter().map(|s| s.migrations).sum()
    }

    /// One shard's telemetry document: cumulative `fleet.*` counters (so
    /// [`Document::merge_segments`] sums them into exact fleet totals),
    /// per-tenant delivered-op counters, and shard-keyed values.
    pub fn shard_document(&self, shard: u32) -> Option<Document> {
        let sh = self.shards.iter().find(|s| s.id == shard)?;
        let stats = sh.stats();
        let mut doc = Document::default();
        doc.meta.insert("shard".into(), sh.id.to_string());
        doc.counters
            .insert("fleet.demand_reads".into(), stats.demand_reads);
        doc.counters
            .insert("fleet.demand_writes".into(), stats.demand_writes);
        doc.counters
            .insert("fleet.scrub_probes".into(), stats.scrub_probes);
        doc.counters
            .insert("fleet.scrub_writebacks".into(), stats.scrub_writebacks);
        doc.counters
            .insert("fleet.corrected_bits".into(), stats.corrected_bits);
        doc.counters
            .insert("fleet.detected_ue".into(), stats.detected_ue);
        doc.counters
            .insert("fleet.demand_ue".into(), stats.demand_ue);
        for (tenant, reads, writes) in sh.tenant_ops() {
            doc.counters.insert(format!("tenant.{tenant}.reads"), reads);
            doc.counters
                .insert(format!("tenant.{tenant}.writes"), writes);
        }
        // Gauges keep their maximum across a merge: the rollup reports
        // the fleet high-water clock even if a shard lags a partial
        // round at the horizon.
        doc.gauges.insert(
            "fleet.clock_ms".into(),
            (sh.clock_s() * 1000.0).round() as u64,
        );
        // Placement and supervision bookkeeping (worker, migrations,
        // retries, health) deliberately stay out of shard documents:
        // where a shard runs — and whether it had to be replayed — must
        // never shape what it reports, so a recovered fleet's documents
        // are byte-identical to a continuous run's (the differential
        // suite relies on this). Supervision lives in
        // [`Fleet::health_document`] instead.
        doc.values
            .insert(format!("shard.{}.clock_s", sh.id), sh.clock_s());
        Some(doc)
    }

    /// The fleet roll-up: every shard document folded through
    /// [`Document::merge_segments`] (counters sum, gauges max, shard-keyed
    /// values coexist), plus fleet-level meta. Deliberately carries no
    /// round number or supervision state: a recovered run may have spent
    /// extra rounds replaying, and its roll-up must still be
    /// byte-identical to the continuous control run.
    pub fn rollup(&self) -> Document {
        let docs: Vec<Document> = self
            .shards
            .iter()
            .map(|s| self.shard_document(s.id).expect("shard exists"))
            .collect();
        let mut doc = Document::merge_segments(&docs);
        doc.meta
            .insert("banks".into(), self.config.banks.to_string());
        doc.meta
            .insert("shards".into(), self.config.shards.to_string());
        doc.meta
            .insert("policy".into(), self.config.policy_spec.clone());
        doc.meta
            .insert("tenants".into(), self.config.tenants.to_string());
        doc.meta.insert("shard".into(), "fleet".to_string());
        doc
    }

    /// The supervision telemetry document (`health.json`): retry /
    /// quarantine / recovery counters and the MTTR high-water gauge,
    /// kept separate from [`Fleet::rollup`] so recovery bookkeeping can
    /// never perturb the byte-identity of simulation results.
    pub fn health_document(&self) -> Document {
        let mut doc = Document::default();
        doc.meta.insert("shard".into(), "supervisor".to_string());
        doc.counters
            .insert(keys::FLEET_RETRIES.into(), self.stats.retries);
        doc.counters
            .insert(keys::FLEET_QUARANTINED.into(), self.quarantined());
        doc.counters
            .insert(keys::FLEET_RECOVERIES.into(), self.stats.recoveries);
        doc.counters.insert(
            keys::FLEET_RECOVERY_ROUNDS.into(),
            self.stats.recovery_rounds,
        );
        doc.gauges.insert(
            keys::FLEET_MTTR_MS.into(),
            (self.stats.mttr_max_rounds as f64 * self.config.cadence_s * 1000.0).round() as u64,
        );
        for sh in &self.shards {
            doc.meta
                .insert(format!("shard.{}.health", sh.id), sh.health.encode());
        }
        doc
    }

    /// Per-tenant service-level rows: configured demand vs. delivered
    /// ops across the whole fleet.
    pub fn slo(&self) -> Vec<TenantSlo> {
        let clock = self.clock_s();
        let per_shard_rate_scale = 1.0 / self.config.shards as f64;
        self.config
            .tenants
            .tenants
            .iter()
            .enumerate()
            .map(|(i, t)| {
                let mut reads = 0;
                let mut writes = 0;
                for sh in &self.shards {
                    for (name, r, w) in sh.tenant_ops() {
                        if name == t.name {
                            reads += r;
                            writes += w;
                        }
                    }
                }
                // Fleet-wide expectation: each of the `shards` shards
                // carries the tenant at 1/shards rate over its own line
                // space, so the fleet total is the nominal per-shard rate.
                let expected_ops = t.nominal_rate(self.config.shard_lines())
                    * per_shard_rate_scale
                    * self.config.shards as f64
                    * clock;
                let delivered = (reads + writes) as f64;
                TenantSlo {
                    tenant: i as u32,
                    name: t.name.clone(),
                    expected_ops,
                    reads,
                    writes,
                    attainment: if expected_ops > 0.0 {
                        delivered / expected_ops
                    } else {
                        0.0
                    },
                }
            })
            .collect()
    }
}

/// One tenant's service-level summary.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantSlo {
    /// Tenant index in spec order.
    pub tenant: u32,
    /// Tenant name.
    pub name: String,
    /// Ops the configured rate promises by the current fleet clock.
    pub expected_ops: f64,
    /// Reads delivered across all shards.
    pub reads: u64,
    /// Writes delivered across all shards.
    pub writes: u64,
    /// Delivered / expected (open-loop attainment; ~1.0 when the fleet
    /// keeps up).
    pub attainment: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> FleetConfig {
        "[fleet]\n\
         banks = 8\n\
         lines-per-bank = 32\n\
         shards = 4\n\
         seed = 11\n\
         horizon-s = 900\n\
         cadence-s = 300\n\
         policy = basic@300\n\
         engine = event\n\
         threads = 2\n\
         [tenants]\n\
         mix = alpha:rate=40;beta:rate=10,read=0.5\n"
            .parse()
            .expect("valid config")
    }

    #[test]
    fn rounds_advance_every_shard_in_lockstep() {
        let mut fleet = Fleet::new(tiny_config());
        assert_eq!(fleet.clock_s(), 0.0);
        fleet.advance_round();
        for s in fleet.shards() {
            assert_eq!(s.clock_s(), 300.0);
            assert_eq!(s.health().name(), "healthy");
            assert_eq!(s.last_good().1, 1, "round checkpoint refreshed");
        }
        fleet.advance_round();
        fleet.advance_round();
        assert!(fleet.done());
        assert_eq!(fleet.round(), 3);
        assert_eq!(*fleet.stats(), SupervisionStats::default());
    }

    #[test]
    fn migration_preserves_the_final_rollup() {
        let mut continuous = Fleet::new(tiny_config());
        let mut migrated = Fleet::new(tiny_config());
        continuous.advance_round();
        migrated.advance_round();
        let m = migrated.migrate(2, Some(0)).expect("shard 2 exists");
        assert_eq!(m.shard, 2);
        while !continuous.done() {
            continuous.advance_round();
        }
        while !migrated.done() {
            migrated.advance_round();
        }
        assert_eq!(migrated.migrations(), 1);
        assert_eq!(continuous.rollup().to_json(), migrated.rollup().to_json());
    }

    #[test]
    fn migrate_rejects_unknown_shard() {
        let mut fleet = Fleet::new(tiny_config());
        let err = fleet.migrate(9, None).expect_err("no shard 9");
        assert!(err.contains("unknown shard id 9"), "{err}");
    }

    #[test]
    fn rollup_sums_shard_counters_exactly() {
        let mut fleet = Fleet::new(tiny_config());
        fleet.advance_round();
        let rollup = fleet.rollup();
        let by_hand: u64 = fleet.shards().iter().map(|s| s.stats().demand_reads).sum();
        assert_eq!(rollup.counters["fleet.demand_reads"], by_hand);
        assert!(by_hand > 0, "open-loop tenants deliver demand");
    }

    #[test]
    fn slo_rows_cover_every_tenant() {
        let mut fleet = Fleet::new(tiny_config());
        while !fleet.done() {
            fleet.advance_round();
        }
        let slo = fleet.slo();
        assert_eq!(slo.len(), 2);
        for row in &slo {
            assert!(row.expected_ops > 0.0);
            assert!(
                (row.attainment - 1.0).abs() < 0.25,
                "open-loop delivery should track the configured rate: {row:?}"
            );
        }
    }

    #[test]
    fn injected_panic_retries_and_converges_to_the_control_rollup() {
        let mut control = Fleet::new(tiny_config());
        while !control.done() {
            control.advance_round();
        }

        let mut chaotic = Fleet::new(tiny_config());
        chaotic.set_chaos(Some("panic_shard=1@2".parse().unwrap()));
        let mut saw_failure = false;
        let mut saw_recovery = false;
        while !chaotic.done() {
            for ev in chaotic.advance_round() {
                match ev {
                    RoundEvent::Failed { shard, kind, .. } => {
                        assert_eq!(shard, 1);
                        assert_eq!(kind, FailureKind::Panic);
                        saw_failure = true;
                    }
                    RoundEvent::Recovered { shard, mttr_rounds } => {
                        assert_eq!(shard, 1);
                        assert!(mttr_rounds >= 1);
                        saw_recovery = true;
                    }
                    RoundEvent::Quarantined { .. } => panic!("one panic must not quarantine"),
                }
            }
        }
        assert!(saw_failure && saw_recovery);
        assert_eq!(chaotic.stats().retries, 1);
        assert_eq!(chaotic.stats().recoveries, 1);
        assert_eq!(chaotic.quarantined(), 0);
        assert_eq!(
            control.rollup().to_json(),
            chaotic.rollup().to_json(),
            "deterministic replay must reconverge on the control roll-up"
        );
    }

    #[test]
    fn persistent_panic_quarantines_without_taking_the_fleet_down() {
        let mut fleet = Fleet::new(tiny_config());
        // Panic window far wider than the retry budget.
        fleet.set_chaos(Some("panic_shard=0@1:1000".parse().unwrap()));
        let mut quarantined_at = None;
        while !fleet.done() {
            for ev in fleet.advance_round() {
                if let RoundEvent::Quarantined { shard, kind } = ev {
                    assert_eq!(shard, 0);
                    assert_eq!(kind, FailureKind::Panic);
                    quarantined_at = Some(fleet.round());
                }
            }
            assert!(fleet.round() < 200, "fleet must terminate");
        }
        assert!(quarantined_at.is_some(), "budget must exhaust");
        assert_eq!(fleet.quarantined(), 1);
        let max_retries = fleet.config().supervisor.max_retries;
        assert_eq!(fleet.stats().retries as u32, max_retries + 1);
        // The healthy shards all finished.
        for sh in fleet.shards().iter().filter(|s| s.id != 0) {
            assert_eq!(sh.health().name(), "healthy");
            assert!(sh.clock_s() >= fleet.config().horizon_s);
        }
        let health = fleet.health_document();
        assert_eq!(health.counters[scrub_telemetry::keys::FLEET_QUARANTINED], 1);
        assert!(health.meta["shard.0.health"].starts_with("Q@"));
    }

    #[test]
    fn corrupt_round_checkpoint_is_caught_and_retried() {
        let mut control = Fleet::new(tiny_config());
        while !control.done() {
            control.advance_round();
        }
        let mut fleet = Fleet::new(tiny_config());
        fleet.set_chaos(Some("seed=3;corrupt_ckpt=2@1".parse().unwrap()));
        let mut kinds = Vec::new();
        while !fleet.done() {
            for ev in fleet.advance_round() {
                if let RoundEvent::Failed { kind, .. } = ev {
                    kinds.push(kind);
                }
            }
        }
        assert_eq!(kinds, vec![FailureKind::CorruptCheckpoint]);
        assert_eq!(fleet.quarantined(), 0);
        assert_eq!(control.rollup().to_json(), fleet.rollup().to_json());
    }

    #[test]
    fn migrate_refuses_unhealthy_shards() {
        let mut fleet = Fleet::new(tiny_config());
        fleet.set_chaos(Some("panic_shard=3@1:1000".parse().unwrap()));
        fleet.advance_round();
        let err = fleet.migrate(3, None).expect_err("shard 3 is retrying");
        assert!(err.contains("retrying"), "{err}");
    }

    #[test]
    fn resume_replays_lagging_shards_to_the_fleet_round() {
        let mut control = Fleet::new(tiny_config());
        while !control.done() {
            control.advance_round();
        }

        // Build restore snapshots by hand: shard 0 one round behind (as
        // if its gen0 was corrupt and recovery fell back to gen1).
        let mut donor = Fleet::new(tiny_config());
        donor.advance_round(); // round 1
        let old = donor.shards()[0].last_good().0.to_vec();
        donor.advance_round(); // round 2
        let restores: Vec<ShardRestore> = donor
            .shards()
            .iter()
            .map(|s| ShardRestore {
                health: Health::Healthy,
                snapshot: Ok(if s.id == 0 {
                    old.clone()
                } else {
                    s.last_good().0.to_vec()
                }),
            })
            .collect();
        let mut resumed = Fleet::resume(tiny_config(), 2, restores).expect("resumes");
        assert!(resumed.stats().recovery_rounds >= 1, "shard 0 replayed");
        while !resumed.done() {
            resumed.advance_round();
        }
        assert_eq!(
            control.rollup().to_json(),
            resumed.rollup().to_json(),
            "resume from mixed generations must converge"
        );
    }

    #[test]
    fn resume_with_exhausted_generations_is_a_typed_quarantine() {
        let mut donor = Fleet::new(tiny_config());
        donor.advance_round();
        let restores: Vec<ShardRestore> = donor
            .shards()
            .iter()
            .map(|s| {
                if s.id == 1 {
                    ShardRestore {
                        health: Health::Healthy,
                        snapshot: Err(RecoveryError::Exhausted {
                            shard: 1,
                            tried: vec![(0, "bad CRC".into()), (1, "truncated".into())],
                        }),
                    }
                } else {
                    ShardRestore {
                        health: Health::Healthy,
                        snapshot: Ok(s.last_good().0.to_vec()),
                    }
                }
            })
            .collect();
        let mut fleet = Fleet::resume(tiny_config(), 1, restores).expect("fleet survives");
        assert_eq!(fleet.quarantined(), 1);
        assert!(matches!(
            fleet.shards()[1].health(),
            Health::Quarantined {
                kind: FailureKind::Exhausted,
                ..
            }
        ));
        while !fleet.done() {
            fleet.advance_round();
        }
        // The other three shards finished; the fleet never crashed.
        assert_eq!(fleet.quarantined(), 1);
        let finished = fleet
            .shards()
            .iter()
            .filter(|s| s.clock_s() >= fleet.config().horizon_s)
            .count();
        assert_eq!(finished, 3);
    }
}
