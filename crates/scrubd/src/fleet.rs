//! The fleet engine: many shard simulations advanced in cadence rounds
//! over the `scrub-exec` pool, with checkpoint-backed shard migration and
//! telemetry roll-ups.
//!
//! A *shard* is one complete [`Simulation`] covering `banks/shards` banks
//! under the full tenant mix at `1/shards` rate. Shards are independent
//! and seed-deterministic, so the fleet advances them in parallel —
//! results are bit-identical for every worker count — and a shard drained
//! to a checkpoint resumes byte-identically on any other worker
//! (migration changes *where* a shard runs, never *what* it computes).

use pcm_memsim::MemStats;
use scrub_core::Simulation;
use scrub_telemetry::Document;

use crate::config::FleetConfig;

/// One shard: a simulation plus its placement bookkeeping.
#[derive(Debug)]
pub struct Shard {
    /// Shard id, `0..config.shards`.
    pub id: u32,
    /// Worker the shard is currently placed on (round-robin at start;
    /// migration moves it).
    pub worker: u32,
    /// Times this shard has been drained and resumed elsewhere.
    pub migrations: u64,
    sim: Simulation,
}

impl Shard {
    /// Simulated time this shard has covered.
    pub fn clock_s(&self) -> f64 {
        self.sim.clock_s()
    }

    /// Cumulative memory statistics.
    pub fn stats(&self) -> MemStats {
        self.sim.memory().stats()
    }

    /// Per-tenant `(name, reads, writes)` delivered-op rows.
    pub fn tenant_ops(&self) -> Vec<(String, u64, u64)> {
        self.sim.tenant_ops().unwrap_or_default()
    }
}

/// What a completed migration did, for status output and tests.
#[derive(Debug, Clone, PartialEq)]
pub struct Migration {
    /// Which shard moved.
    pub shard: u32,
    /// Worker it was drained from.
    pub from_worker: u32,
    /// Worker it resumed on.
    pub to_worker: u32,
    /// The drained snapshot (sealed checkpoint bytes) — the exact bytes
    /// the destination resumed from.
    pub snapshot: Vec<u8>,
}

/// The whole fleet: every shard plus round bookkeeping.
#[derive(Debug)]
pub struct Fleet {
    config: FleetConfig,
    shards: Vec<Shard>,
    round: u64,
}

impl Fleet {
    /// Builds every shard simulation; shard `i` starts on worker
    /// `i % pool_threads()`.
    pub fn new(config: FleetConfig) -> Fleet {
        let workers = config.pool_threads() as u32;
        let shards = (0..config.shards)
            .map(|id| Shard {
                id,
                worker: id % workers.max(1),
                migrations: 0,
                sim: Simulation::new(config.shard_config(id)),
            })
            .collect();
        Fleet {
            config,
            shards,
            round: 0,
        }
    }

    /// The fleet configuration.
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// The shards, in id order.
    pub fn shards(&self) -> &[Shard] {
        &self.shards
    }

    /// Completed cadence rounds.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Fleet simulated clock: the time every shard has covered (shards
    /// advance in lockstep rounds, so this is any shard's clock).
    pub fn clock_s(&self) -> f64 {
        self.shards.first().map_or(0.0, Shard::clock_s)
    }

    /// Whether every shard has reached the horizon.
    pub fn done(&self) -> bool {
        self.shards
            .iter()
            .all(|s| s.clock_s() >= self.config.horizon_s)
    }

    /// Advances every shard to the next cadence boundary (clamped to the
    /// horizon), fanning shards out over the pool. Shards are
    /// independent, so results are bit-identical for every thread count.
    pub fn advance_round(&mut self) {
        self.round += 1;
        let target = (self.round as f64 * self.config.cadence_s).min(self.config.horizon_s);
        let threads = self.config.pool_threads();
        let shards = std::mem::take(&mut self.shards);
        self.shards = scrub_exec::par_map(threads, shards, |_, mut shard| {
            shard.sim.run_to(target);
            shard
        });
    }

    /// Drains `shard` to a checkpoint and resumes it on `to_worker` (or
    /// the next worker round-robin) — the destination rebuilds the
    /// simulation from config and overlays the drained state, continuing
    /// bit-identically. Fails on an unknown shard id or a checkpoint
    /// error; the shard is untouched on failure.
    pub fn migrate(&mut self, shard: u32, to_worker: Option<u32>) -> Result<Migration, String> {
        self.migrate_impl(shard, to_worker, false)
    }

    /// Test-only tripwire: a migration whose drained snapshot silently
    /// drops the in-flight demand op (via
    /// `Simulation::checkpoint_dropping_pending`). Exists so the
    /// differential harness can prove byte-identity checks catch a lossy
    /// migration.
    #[doc(hidden)]
    pub fn migrate_dropping_pending(
        &mut self,
        shard: u32,
        to_worker: Option<u32>,
    ) -> Result<Migration, String> {
        self.migrate_impl(shard, to_worker, true)
    }

    fn migrate_impl(
        &mut self,
        shard: u32,
        to_worker: Option<u32>,
        drop_pending: bool,
    ) -> Result<Migration, String> {
        let workers = self.config.pool_threads() as u32;
        let idx = self
            .shards
            .iter()
            .position(|s| s.id == shard)
            .ok_or_else(|| format!("unknown shard id {shard} (fleet has {})", self.shards.len()))?;
        let from_worker = self.shards[idx].worker;
        let to_worker = to_worker.unwrap_or((from_worker + 1) % workers.max(1));
        let snapshot = if drop_pending {
            self.shards[idx].sim.checkpoint_dropping_pending()
        } else {
            self.shards[idx].sim.checkpoint()
        }
        .map_err(|e| format!("cannot drain shard {shard}: {e}"))?;
        let resumed = Simulation::resume(self.config.shard_config(shard), &snapshot)
            .map_err(|e| format!("cannot resume shard {shard}: {e}"))?;
        let sh = &mut self.shards[idx];
        sh.sim = resumed;
        sh.worker = to_worker;
        sh.migrations += 1;
        Ok(Migration {
            shard,
            from_worker,
            to_worker,
            snapshot,
        })
    }

    /// Checkpoints `shard` without moving it (the `snapshot` control
    /// verb).
    pub fn snapshot_shard(&mut self, shard: u32) -> Result<Vec<u8>, String> {
        let idx = self
            .shards
            .iter()
            .position(|s| s.id == shard)
            .ok_or_else(|| format!("unknown shard id {shard} (fleet has {})", self.shards.len()))?;
        self.shards[idx]
            .sim
            .checkpoint()
            .map_err(|e| format!("cannot snapshot shard {shard}: {e}"))
    }

    /// Total completed migrations across all shards.
    pub fn migrations(&self) -> u64 {
        self.shards.iter().map(|s| s.migrations).sum()
    }

    /// One shard's telemetry document: cumulative `fleet.*` counters (so
    /// [`Document::merge_segments`] sums them into exact fleet totals),
    /// per-tenant delivered-op counters, and shard-keyed values.
    pub fn shard_document(&self, shard: u32) -> Option<Document> {
        let sh = self.shards.iter().find(|s| s.id == shard)?;
        let stats = sh.stats();
        let mut doc = Document::default();
        doc.meta.insert("shard".into(), sh.id.to_string());
        doc.counters
            .insert("fleet.demand_reads".into(), stats.demand_reads);
        doc.counters
            .insert("fleet.demand_writes".into(), stats.demand_writes);
        doc.counters
            .insert("fleet.scrub_probes".into(), stats.scrub_probes);
        doc.counters
            .insert("fleet.scrub_writebacks".into(), stats.scrub_writebacks);
        doc.counters
            .insert("fleet.corrected_bits".into(), stats.corrected_bits);
        doc.counters
            .insert("fleet.detected_ue".into(), stats.detected_ue);
        doc.counters
            .insert("fleet.demand_ue".into(), stats.demand_ue);
        for (tenant, reads, writes) in sh.tenant_ops() {
            doc.counters.insert(format!("tenant.{tenant}.reads"), reads);
            doc.counters
                .insert(format!("tenant.{tenant}.writes"), writes);
        }
        // Gauges keep their maximum across a merge: the rollup reports
        // the fleet high-water clock even if a shard lags a partial
        // round at the horizon.
        doc.gauges.insert(
            "fleet.clock_ms".into(),
            (sh.clock_s() * 1000.0).round() as u64,
        );
        // Placement bookkeeping (worker, migration counts) deliberately
        // stays out of telemetry: where a shard runs must never shape
        // what it reports, so a migrated fleet's documents are
        // byte-identical to a continuous run's (the differential suite
        // relies on this).
        doc.values
            .insert(format!("shard.{}.clock_s", sh.id), sh.clock_s());
        Some(doc)
    }

    /// The fleet roll-up: every shard document folded through
    /// [`Document::merge_segments`] (counters sum, gauges max, shard-keyed
    /// values coexist), plus fleet-level meta.
    pub fn rollup(&self) -> Document {
        let docs: Vec<Document> = self
            .shards
            .iter()
            .map(|s| self.shard_document(s.id).expect("shard exists"))
            .collect();
        let mut doc = Document::merge_segments(&docs);
        doc.meta
            .insert("banks".into(), self.config.banks.to_string());
        doc.meta
            .insert("shards".into(), self.config.shards.to_string());
        doc.meta.insert("round".into(), self.round.to_string());
        doc.meta
            .insert("policy".into(), self.config.policy_spec.clone());
        doc.meta
            .insert("tenants".into(), self.config.tenants.to_string());
        doc.meta.insert("shard".into(), "fleet".to_string());
        doc
    }

    /// Per-tenant service-level rows: configured demand vs. delivered
    /// ops across the whole fleet.
    pub fn slo(&self) -> Vec<TenantSlo> {
        let clock = self.clock_s();
        let per_shard_rate_scale = 1.0 / self.config.shards as f64;
        self.config
            .tenants
            .tenants
            .iter()
            .enumerate()
            .map(|(i, t)| {
                let mut reads = 0;
                let mut writes = 0;
                for sh in &self.shards {
                    for (name, r, w) in sh.tenant_ops() {
                        if name == t.name {
                            reads += r;
                            writes += w;
                        }
                    }
                }
                // Fleet-wide expectation: each of the `shards` shards
                // carries the tenant at 1/shards rate over its own line
                // space, so the fleet total is the nominal per-shard rate.
                let expected_ops = t.nominal_rate(self.config.shard_lines())
                    * per_shard_rate_scale
                    * self.config.shards as f64
                    * clock;
                let delivered = (reads + writes) as f64;
                TenantSlo {
                    tenant: i as u32,
                    name: t.name.clone(),
                    expected_ops,
                    reads,
                    writes,
                    attainment: if expected_ops > 0.0 {
                        delivered / expected_ops
                    } else {
                        0.0
                    },
                }
            })
            .collect()
    }
}

/// One tenant's service-level summary.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantSlo {
    /// Tenant index in spec order.
    pub tenant: u32,
    /// Tenant name.
    pub name: String,
    /// Ops the configured rate promises by the current fleet clock.
    pub expected_ops: f64,
    /// Reads delivered across all shards.
    pub reads: u64,
    /// Writes delivered across all shards.
    pub writes: u64,
    /// Delivered / expected (open-loop attainment; ~1.0 when the fleet
    /// keeps up).
    pub attainment: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> FleetConfig {
        "[fleet]\n\
         banks = 8\n\
         lines-per-bank = 32\n\
         shards = 4\n\
         seed = 11\n\
         horizon-s = 900\n\
         cadence-s = 300\n\
         policy = basic@300\n\
         engine = event\n\
         threads = 2\n\
         [tenants]\n\
         mix = alpha:rate=40;beta:rate=10,read=0.5\n"
            .parse()
            .expect("valid config")
    }

    #[test]
    fn rounds_advance_every_shard_in_lockstep() {
        let mut fleet = Fleet::new(tiny_config());
        assert_eq!(fleet.clock_s(), 0.0);
        fleet.advance_round();
        for s in fleet.shards() {
            assert_eq!(s.clock_s(), 300.0);
        }
        fleet.advance_round();
        fleet.advance_round();
        assert!(fleet.done());
        assert_eq!(fleet.round(), 3);
    }

    #[test]
    fn migration_preserves_the_final_rollup() {
        let mut continuous = Fleet::new(tiny_config());
        let mut migrated = Fleet::new(tiny_config());
        continuous.advance_round();
        migrated.advance_round();
        let m = migrated.migrate(2, Some(0)).expect("shard 2 exists");
        assert_eq!(m.shard, 2);
        while !continuous.done() {
            continuous.advance_round();
        }
        while !migrated.done() {
            migrated.advance_round();
        }
        assert_eq!(migrated.migrations(), 1);
        assert_eq!(continuous.rollup().to_json(), migrated.rollup().to_json());
    }

    #[test]
    fn migrate_rejects_unknown_shard() {
        let mut fleet = Fleet::new(tiny_config());
        let err = fleet.migrate(9, None).expect_err("no shard 9");
        assert!(err.contains("unknown shard id 9"), "{err}");
    }

    #[test]
    fn rollup_sums_shard_counters_exactly() {
        let mut fleet = Fleet::new(tiny_config());
        fleet.advance_round();
        let rollup = fleet.rollup();
        let by_hand: u64 = fleet.shards().iter().map(|s| s.stats().demand_reads).sum();
        assert_eq!(rollup.counters["fleet.demand_reads"], by_hand);
        assert!(by_hand > 0, "open-loop tenants deliver demand");
    }

    #[test]
    fn slo_rows_cover_every_tenant() {
        let mut fleet = Fleet::new(tiny_config());
        while !fleet.done() {
            fleet.advance_round();
        }
        let slo = fleet.slo();
        assert_eq!(slo.len(), 2);
        for row in &slo {
            assert!(row.expected_ops > 0.0);
            assert!(
                (row.attainment - 1.0).abs() < 0.25,
                "open-loop delivery should track the configured rate: {row:?}"
            );
        }
    }
}
