//! The fleet configuration file: how many banks, how they shard, and
//! which tenants drive them.
//!
//! The format is INI-style plain text — sections in brackets, one
//! `key = value` per line, `#` comments — because the daemon must fail
//! with a readable one-line error on any malformed input (satellite
//! requirement), and a hand-rolled parser keeps the error text exact:
//!
//! ```text
//! [fleet]
//! banks = 64            # total simulated banks across the fleet
//! lines-per-bank = 64   # 64-byte lines per bank
//! shards = 4            # fleet is split into this many shard simulations
//! seed = 42
//! horizon-s = 3600
//! cadence-s = 600       # telemetry roll-up / control-poll cadence
//! policy = combined@900 # NAME@SWEEP_INTERVAL_S, or "none"
//! engine = event        # stepped | event
//! threads = 0           # shard fan-out workers (0 = auto)
//!
//! [tenants]
//! mix = alpha:rate=120,read=0.7;beta:suite=kv-cache,scale=0.5
//!
//! [supervisor]
//! max-retries = 3       # failed attempts before quarantine
//! backoff-base-rounds = 1
//! backoff-cap-rounds = 8
//! backoff-jitter-rounds = 1
//! generations = 3       # rotated checkpoint generations per shard
//! checkpoint-every-rounds = 1
//! ```
//!
//! `banks` is a `u64` on purpose: a fleet of millions of banks is
//! expressed directly and divided over shards, each shard staying within
//! one simulation's 32-bit line space.

use std::str::FromStr;

use pcm_workloads::TenantMixSpec;
use scrub_core::{DemandTraffic, EngineKind, PolicyKind, SimConfig};

use crate::health::SupervisorConfig;

/// Parsed, validated fleet configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetConfig {
    /// Total banks across the whole fleet.
    pub banks: u64,
    /// 64-byte lines per bank.
    pub lines_per_bank: u32,
    /// Number of shard simulations the fleet splits into.
    pub shards: u32,
    /// Master seed; every shard derives its own stream from it.
    pub seed: u64,
    /// Simulated horizon (seconds).
    pub horizon_s: f64,
    /// Telemetry roll-up / control-poll cadence (seconds).
    pub cadence_s: f64,
    /// Scrub mechanism every shard runs.
    pub policy: PolicyKind,
    /// Canonical `NAME@INTERVAL` form of `policy`, for status output.
    pub policy_spec: String,
    /// Simulation core (stepped vs. event).
    pub engine: EngineKind,
    /// Worker threads for the shard fan-out (0 = auto).
    pub threads: usize,
    /// The open-loop tenant mix driving demand.
    pub tenants: TenantMixSpec,
    /// Self-healing knobs (`[supervisor]` section; defaults apply when
    /// the section is absent).
    pub supervisor: SupervisorConfig,
}

/// SplitMix64 finalizer: decorrelates per-shard seeds derived from the
/// fleet master seed, so adjacent shard ids never see adjacent RNG
/// streams.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl FleetConfig {
    /// Banks assigned to each shard (`banks / shards`; division is exact,
    /// enforced at parse time).
    pub fn banks_per_shard(&self) -> u32 {
        (self.banks / self.shards as u64) as u32
    }

    /// Lines in one shard's memory.
    pub fn shard_lines(&self) -> u32 {
        self.banks_per_shard() * self.lines_per_bank
    }

    /// The seed shard `shard` simulates under. Depends only on
    /// `(fleet seed, shard id)`, so a drained shard resumed on another
    /// worker rebuilds the identical stream.
    pub fn shard_seed(&self, shard: u32) -> u64 {
        splitmix64(self.seed ^ (0xF1EE_7000 + shard as u64))
    }

    /// The [`SimConfig`] shard `shard` runs. Each shard carries the full
    /// tenant mix at `1/shards` rate, so fleet-aggregate demand matches
    /// the spec; shards parallelize across the pool, so each simulation
    /// runs its own sweeps inline (`threads = 1`).
    pub fn shard_config(&self, shard: u32) -> SimConfig {
        let mut b = SimConfig::builder();
        b.num_lines(self.shard_lines())
            .banks(self.banks_per_shard())
            .policy(self.policy.clone())
            .traffic(DemandTraffic::OpenLoop {
                spec: self.tenants.clone(),
                rate_scale: 1.0 / self.shards as f64,
            })
            .horizon_s(self.horizon_s)
            .seed(self.shard_seed(shard))
            .threads(1)
            .engine(self.engine);
        b.build()
    }

    /// Resolved shard fan-out worker count.
    pub fn pool_threads(&self) -> usize {
        if self.threads == 0 {
            scrub_exec::default_threads()
        } else {
            self.threads
        }
    }

    /// Stable fingerprint over every field that changes simulation
    /// results. The write-ahead journal pins this so `--resume-fleet`
    /// under a different config is refused instead of silently producing
    /// a different fleet. Thread count is deliberately excluded — it
    /// never changes results.
    pub fn fingerprint(&self) -> u64 {
        let canon = format!(
            "banks={} lpb={} shards={} seed={} horizon={} cadence={} policy={} engine={:?} \
             tenants={:?} retries={} gens={} ckpt_every={}",
            self.banks,
            self.lines_per_bank,
            self.shards,
            self.seed,
            self.horizon_s,
            self.cadence_s,
            self.policy_spec,
            self.engine,
            self.tenants,
            self.supervisor.max_retries,
            self.supervisor.generations,
            self.supervisor.checkpoint_every_rounds,
        );
        let mut fp = 0xCAFE_F00D_u64;
        for chunk in canon.as_bytes().chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            fp = splitmix64(fp ^ u64::from_le_bytes(word));
        }
        fp
    }
}

/// Parses `NAME@INTERVAL_S` (or bare `none`) into a [`PolicyKind`],
/// using the evaluation's derived parameters (θ=4 under BCH-6, 64
/// regions, age filter at two-thirds of the sweep).
fn parse_policy(s: &str) -> Result<PolicyKind, String> {
    if s == "none" {
        return Ok(PolicyKind::None);
    }
    let (name, interval) = s
        .split_once('@')
        .ok_or_else(|| format!("policy must be NAME@INTERVAL_S or \"none\", got {s:?}"))?;
    let interval_s: f64 = interval
        .parse()
        .map_err(|_| format!("policy interval {interval:?} is not a number"))?;
    if !interval_s.is_finite() || interval_s <= 0.0 {
        return Err(format!("policy interval must be positive, got {interval}"));
    }
    let theta = 4;
    match name {
        "basic" => Ok(PolicyKind::Basic { interval_s }),
        "threshold" => Ok(PolicyKind::Threshold { interval_s, theta }),
        "age-aware" => Ok(PolicyKind::AgeAware {
            interval_s,
            theta,
            min_age_s: interval_s * 2.0 / 3.0,
        }),
        "adaptive" => Ok(PolicyKind::Adaptive {
            interval_s,
            theta,
            regions: 64,
        }),
        "combined" => Ok(PolicyKind::combined_default(interval_s)),
        "profiled" => Ok(PolicyKind::profiled_default(interval_s)),
        other => Err(format!("unknown policy {other:?}")),
    }
}

fn parse_engine(s: &str) -> Result<EngineKind, String> {
    match s {
        "stepped" => Ok(EngineKind::Stepped),
        "event" => Ok(EngineKind::Event),
        other => Err(format!("engine must be stepped|event, got {other:?}")),
    }
}

impl FromStr for FleetConfig {
    type Err = String;

    /// Parses and validates the INI text. Every rejection is a single
    /// line naming the offending key or line number.
    fn from_str(text: &str) -> Result<Self, String> {
        let mut section = String::new();
        let mut banks: Option<u64> = None;
        let mut lines_per_bank: u32 = 64;
        let mut shards: Option<u32> = None;
        let mut seed: u64 = 0;
        let mut horizon_s: Option<f64> = None;
        let mut cadence_s: Option<f64> = None;
        let mut policy_spec = "combined@900".to_string();
        let mut engine = EngineKind::Event;
        let mut threads: usize = 0;
        let mut mix: Option<TenantMixSpec> = None;
        let mut supervisor = SupervisorConfig::default();

        for (lineno, raw) in text.lines().enumerate() {
            let line = match raw.split_once('#') {
                Some((before, _)) => before.trim(),
                None => raw.trim(),
            };
            if line.is_empty() {
                continue;
            }
            if let Some(name) = line.strip_prefix('[') {
                let name = name
                    .strip_suffix(']')
                    .ok_or_else(|| format!("line {}: unterminated section header", lineno + 1))?;
                match name {
                    "fleet" | "tenants" | "supervisor" => section = name.to_string(),
                    other => return Err(format!("line {}: unknown section [{other}]", lineno + 1)),
                }
                continue;
            }
            let (key, value) = line.split_once('=').ok_or_else(|| {
                format!("line {}: expected key = value, got {line:?}", lineno + 1)
            })?;
            let (key, value) = (key.trim(), value.trim());
            let num = |what: &str| -> Result<f64, String> {
                value
                    .parse::<f64>()
                    .map_err(|_| format!("{what} must be a number, got {value:?}"))
            };
            match (section.as_str(), key) {
                ("fleet", "banks") => {
                    banks =
                        Some(value.parse().map_err(|_| {
                            format!("banks must be a positive integer, got {value:?}")
                        })?)
                }
                ("fleet", "lines-per-bank") => {
                    lines_per_bank = value.parse().map_err(|_| {
                        format!("lines-per-bank must be a positive integer, got {value:?}")
                    })?
                }
                ("fleet", "shards") => {
                    shards =
                        Some(value.parse().map_err(|_| {
                            format!("shards must be a positive integer, got {value:?}")
                        })?)
                }
                ("fleet", "seed") => {
                    seed = value
                        .parse()
                        .map_err(|_| format!("seed must be an integer, got {value:?}"))?
                }
                ("fleet", "horizon-s") => horizon_s = Some(num("horizon-s")?),
                ("fleet", "cadence-s") => cadence_s = Some(num("cadence-s")?),
                ("fleet", "policy") => policy_spec = value.to_string(),
                ("fleet", "engine") => engine = parse_engine(value)?,
                ("fleet", "threads") => {
                    threads = value
                        .parse()
                        .map_err(|_| format!("threads must be an integer, got {value:?}"))?
                }
                ("tenants", "mix") => mix = Some(value.parse::<TenantMixSpec>()?),
                ("supervisor", "max-retries") => {
                    supervisor.max_retries = value.parse().map_err(|_| {
                        format!("max-retries must be a non-negative integer, got {value:?}")
                    })?
                }
                ("supervisor", "backoff-base-rounds") => {
                    supervisor.backoff_base_rounds = value.parse().map_err(|_| {
                        format!("backoff-base-rounds must be a positive integer, got {value:?}")
                    })?
                }
                ("supervisor", "backoff-cap-rounds") => {
                    supervisor.backoff_cap_rounds = value.parse().map_err(|_| {
                        format!("backoff-cap-rounds must be a positive integer, got {value:?}")
                    })?
                }
                ("supervisor", "backoff-jitter-rounds") => {
                    supervisor.backoff_jitter_rounds = value.parse().map_err(|_| {
                        format!(
                            "backoff-jitter-rounds must be a non-negative integer, got {value:?}"
                        )
                    })?
                }
                ("supervisor", "generations") => {
                    supervisor.generations = value.parse().map_err(|_| {
                        format!("generations must be a positive integer, got {value:?}")
                    })?
                }
                ("supervisor", "checkpoint-every-rounds") => {
                    supervisor.checkpoint_every_rounds = value.parse().map_err(|_| {
                        format!("checkpoint-every-rounds must be a positive integer, got {value:?}")
                    })?
                }
                (_, key) => {
                    return Err(format!(
                        "line {}: unknown key {key:?} in section [{section}]",
                        lineno + 1
                    ))
                }
            }
        }

        let banks = banks.ok_or("missing [fleet] banks")?;
        let shards = shards.ok_or("missing [fleet] shards")?;
        let horizon_s = horizon_s.ok_or("missing [fleet] horizon-s")?;
        let cadence_s = cadence_s.ok_or("missing [fleet] cadence-s")?;
        let tenants = mix.ok_or("missing [tenants] mix")?;
        if banks == 0 {
            return Err("banks must be positive".to_string());
        }
        if shards == 0 {
            return Err("shards must be positive".to_string());
        }
        if lines_per_bank == 0 {
            return Err("lines-per-bank must be positive".to_string());
        }
        if banks % shards as u64 != 0 {
            return Err(format!(
                "banks ({banks}) must divide evenly into {shards} shards"
            ));
        }
        let per_shard = banks / shards as u64;
        if per_shard
            .checked_mul(lines_per_bank as u64)
            .is_none_or(|lines| lines > u32::MAX as u64)
        {
            return Err(format!(
                "shard too large: {per_shard} banks x {lines_per_bank} lines overflows the \
                 32-bit line space"
            ));
        }
        if !horizon_s.is_finite() || horizon_s <= 0.0 {
            return Err(format!("horizon-s must be positive, got {horizon_s}"));
        }
        if !cadence_s.is_finite() || cadence_s <= 0.0 {
            return Err(format!("cadence-s must be positive, got {cadence_s}"));
        }
        let policy = parse_policy(&policy_spec)?;
        if supervisor.generations == 0 {
            return Err("generations must be positive".to_string());
        }
        if supervisor.backoff_cap_rounds == 0 || supervisor.backoff_base_rounds == 0 {
            return Err("backoff rounds must be positive".to_string());
        }
        if supervisor.checkpoint_every_rounds == 0 {
            return Err("checkpoint-every-rounds must be positive".to_string());
        }
        Ok(FleetConfig {
            banks,
            lines_per_bank,
            shards,
            seed,
            horizon_s,
            cadence_s,
            policy,
            policy_spec,
            engine,
            threads,
            tenants,
            supervisor,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = "\
# tiny fleet
[fleet]
banks = 8
lines-per-bank = 32
shards = 4
seed = 7
horizon-s = 1200
cadence-s = 300
policy = combined@900
engine = event

[tenants]
mix = alpha:rate=40;beta:suite=kv-cache,scale=0.5
";

    #[test]
    fn parses_the_reference_config() {
        let c: FleetConfig = GOOD.parse().expect("parses");
        assert_eq!(c.banks, 8);
        assert_eq!(c.shards, 4);
        assert_eq!(c.banks_per_shard(), 2);
        assert_eq!(c.shard_lines(), 64);
        assert_eq!(c.engine, EngineKind::Event);
        assert_eq!(c.tenants.tenants.len(), 2);
        assert_eq!(c.policy, PolicyKind::combined_default(900.0));
    }

    #[test]
    fn shard_configs_differ_only_by_seed() {
        let c: FleetConfig = GOOD.parse().expect("parses");
        let a = c.shard_config(0);
        let b = c.shard_config(1);
        assert_ne!(a.seed, b.seed);
        assert_eq!(a.traffic, b.traffic);
        assert_eq!(a.horizon_s, b.horizon_s);
        // Rate is split evenly across shards.
        match &a.traffic {
            DemandTraffic::OpenLoop { rate_scale, .. } => {
                assert!((rate_scale - 0.25).abs() < 1e-12)
            }
            other => panic!("expected open-loop traffic, got {other:?}"),
        }
    }

    #[test]
    fn shard_seeds_are_stable_and_distinct() {
        let c: FleetConfig = GOOD.parse().expect("parses");
        assert_eq!(c.shard_seed(3), c.shard_seed(3));
        let seeds: std::collections::HashSet<_> = (0..4).map(|s| c.shard_seed(s)).collect();
        assert_eq!(seeds.len(), 4);
    }

    #[test]
    fn rejects_malformed_configs() {
        let cases: Vec<(String, &str)> = vec![
            ("".to_string(), "missing [fleet] banks"),
            (GOOD.replace("banks = 8", "banks = 9"), "divide evenly"),
            (
                GOOD.replace("shards = 4", "shards = 0"),
                "shards must be positive",
            ),
            (
                GOOD.replace("banks = 8", "banks = nope"),
                "positive integer",
            ),
            (
                GOOD.replace("horizon-s = 1200", "horizon-s = -1"),
                "horizon-s must be positive",
            ),
            (
                GOOD.replace("cadence-s = 300", "cadence-s = nan"),
                "cadence-s must be positive",
            ),
            (
                GOOD.replace("policy = combined@900", "policy = warp@900"),
                "unknown policy",
            ),
            (
                GOOD.replace("policy = combined@900", "policy = basic"),
                "NAME@INTERVAL_S",
            ),
            (
                GOOD.replace("engine = event", "engine = quantum"),
                "stepped|event",
            ),
            (GOOD.replace("[tenants]", "[folks]"), "unknown section"),
            (
                GOOD.replace("mix = alpha:rate=40;", "mix = alpha:rate=0;"),
                "rate",
            ),
            (GOOD.replace("seed = 7", "seed ~ 7"), "key = value"),
            (GOOD.replace("seed = 7", "speed = 7"), "unknown key"),
            (
                GOOD.replace("mix = alpha:rate=40;beta:suite=kv-cache,scale=0.5", ""),
                "missing [tenants] mix",
            ),
        ];
        for (text, needle) in cases {
            let err = text.parse::<FleetConfig>().expect_err(&format!(
                "config should be rejected (wanted error with {needle:?})"
            ));
            assert!(
                err.contains(needle),
                "error {err:?} does not mention {needle:?}"
            );
        }
    }

    #[test]
    fn supervisor_section_defaults_and_overrides() {
        let c: FleetConfig = GOOD.parse().expect("parses");
        assert_eq!(c.supervisor, SupervisorConfig::default());

        let text = format!(
            "{GOOD}\n[supervisor]\nmax-retries = 1\ngenerations = 5\n\
             backoff-cap-rounds = 2\ncheckpoint-every-rounds = 2\n"
        );
        let c: FleetConfig = text.parse().expect("parses");
        assert_eq!(c.supervisor.max_retries, 1);
        assert_eq!(c.supervisor.generations, 5);
        assert_eq!(c.supervisor.backoff_cap_rounds, 2);
        assert_eq!(c.supervisor.checkpoint_every_rounds, 2);

        for (bad, needle) in [
            ("generations = 0", "generations must be positive"),
            ("backoff-base-rounds = 0", "backoff rounds"),
            ("checkpoint-every-rounds = 0", "checkpoint-every-rounds"),
            ("max-retries = lots", "non-negative integer"),
        ] {
            let text = format!("{GOOD}\n[supervisor]\n{bad}\n");
            let err = text.parse::<FleetConfig>().expect_err(bad);
            assert!(err.contains(needle), "{bad:?} -> {err:?}");
        }
    }

    #[test]
    fn fingerprint_tracks_result_affecting_fields_only() {
        let c: FleetConfig = GOOD.parse().expect("parses");
        assert_eq!(c.fingerprint(), c.fingerprint());

        let reseeded: FleetConfig = GOOD
            .replace("seed = 7", "seed = 8")
            .parse()
            .expect("parses");
        assert_ne!(c.fingerprint(), reseeded.fingerprint());

        let rethreaded: FleetConfig = GOOD
            .replace("engine = event", "engine = event\nthreads = 3")
            .parse()
            .expect("parses");
        assert_eq!(
            c.fingerprint(),
            rethreaded.fingerprint(),
            "thread count never changes results, so it must not change the fingerprint"
        );
    }

    #[test]
    fn rejects_oversized_shards() {
        let text = GOOD
            .replace("banks = 8", "banks = 67108864")
            .replace("shards = 4", "shards = 1")
            .replace("lines-per-bank = 32", "lines-per-bank = 65536");
        let err = text.parse::<FleetConfig>().expect_err("overflow rejected");
        assert!(err.contains("32-bit line space"), "{err}");
    }

    #[test]
    fn policy_spec_round_trips_names() {
        for spec in [
            "none",
            "basic@600",
            "threshold@900",
            "age-aware@900",
            "adaptive@450",
            "profiled@900",
        ] {
            let text = GOOD.replace("policy = combined@900", &format!("policy = {spec}"));
            let c: FleetConfig = text.parse().expect("parses");
            assert_eq!(c.policy_spec, spec);
        }
    }
}
