//! Rotated on-disk checkpoint generations — the durable recovery points
//! behind shard quarantine and `scrubd --resume-fleet`.
//!
//! Each shard keeps K sealed snapshots under the control directory:
//!
//! ```text
//! snapshots/shard-0003.gen0.ckpt    newest (last persisted round)
//! snapshots/shard-0003.gen1.ckpt    one persist older
//! snapshots/shard-0003.gen2.ckpt    two persists older
//! ```
//!
//! A persist rotates by rename (gen K-2 → gen K-1 … gen0 → gen1), then
//! writes the new snapshot to a `.tmp` file, fsyncs it, renames it into
//! `gen0`, and fsyncs the directory — so a crash at any instruction
//! leaves either the old or the new generation set, never a half-written
//! `gen0`. Recovery walks gen0 → gen K-1 and resumes from the first
//! generation whose envelope still validates; bit-flips, truncations,
//! and torn writes on newer generations land on an older one. When every
//! generation is unreadable the walk returns
//! [`RecoveryError::Exhausted`](crate::health::RecoveryError) naming
//! what was wrong with each — typed data for quarantine, never a panic.

use std::fs::{self, File};
use std::io::Write;
use std::path::{Path, PathBuf};

use crate::health::RecoveryError;

/// Handle on one fleet's generation files (all shards share the root).
#[derive(Debug, Clone)]
pub struct GenStore {
    root: PathBuf,
    generations: u32,
}

impl GenStore {
    /// Creates a store keeping `generations` (≥ 1) snapshots per shard
    /// under `root` (the control dir's `snapshots/`).
    pub fn new(root: impl Into<PathBuf>, generations: u32) -> Self {
        Self {
            root: root.into(),
            generations: generations.max(1),
        }
    }

    /// Number of generations kept per shard.
    pub fn generations(&self) -> u32 {
        self.generations
    }

    /// Path of shard `shard`'s generation-`gen` snapshot.
    pub fn path(&self, shard: u32, gen: u32) -> PathBuf {
        self.root.join(format!("shard-{shard:04}.gen{gen}.ckpt"))
    }

    /// Persists `sealed` as shard `shard`'s newest generation, rotating
    /// the existing ones back. Crash-safe: tmp write + fsync + atomic
    /// rename + directory fsync.
    pub fn persist(&self, shard: u32, sealed: &[u8]) -> std::io::Result<()> {
        // Rotate oldest-first so each rename's target slot is free.
        for gen in (0..self.generations.saturating_sub(1)).rev() {
            let from = self.path(shard, gen);
            if from.exists() {
                fs::rename(&from, self.path(shard, gen + 1))?;
            }
        }
        let dst = self.path(shard, 0);
        let tmp = dst.with_extension("tmp");
        let mut f = File::create(&tmp)?;
        f.write_all(sealed)?;
        f.sync_all()?;
        drop(f);
        fs::rename(&tmp, &dst)?;
        sync_dir(&self.root)
    }

    /// Walks gen0 → genK-1 and returns the first generation whose sealed
    /// envelope validates, as `(generation, bytes)`. Every failure is
    /// recorded; if nothing validates the walk ends in
    /// [`RecoveryError::Exhausted`].
    pub fn load(&self, shard: u32) -> Result<(u32, Vec<u8>), RecoveryError> {
        let mut tried = Vec::new();
        for gen in 0..self.generations {
            let path = self.path(shard, gen);
            let bytes = match fs::read(&path) {
                Ok(b) => b,
                Err(e) => {
                    tried.push((gen, format!("unreadable: {e}")));
                    continue;
                }
            };
            match scrub_checkpoint::verify(&bytes) {
                Ok(()) => return Ok((gen, bytes)),
                Err(e) => tried.push((gen, e.to_string())),
            }
        }
        Err(RecoveryError::Exhausted { shard, tried })
    }
}

/// Fsyncs a directory so a just-renamed entry survives power loss.
pub(crate) fn sync_dir(dir: &Path) -> std::io::Result<()> {
    File::open(dir)?.sync_all()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "scrubd-gens-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("create temp dir");
        dir
    }

    fn sealed(tag: u8) -> Vec<u8> {
        scrub_checkpoint::seal(vec![tag; 32])
    }

    #[test]
    fn persist_rotates_and_load_prefers_gen0() {
        let dir = temp_dir("rotate");
        let store = GenStore::new(&dir, 3);
        for tag in 1..=4u8 {
            store.persist(7, &sealed(tag)).expect("persist");
        }
        // After four persists of K=3: gen0=4, gen1=3, gen2=2 (1 aged out).
        let (gen, bytes) = store.load(7).expect("loads");
        assert_eq!(gen, 0);
        assert_eq!(scrub_checkpoint::open(&bytes).unwrap(), &[4u8; 32][..]);
        assert!(!store.path(7, 0).with_extension("tmp").exists());
        let g2 = fs::read(store.path(7, 2)).expect("gen2 exists");
        assert_eq!(scrub_checkpoint::open(&g2).unwrap(), &[2u8; 32][..]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_newer_generations_fall_back_to_older() {
        let dir = temp_dir("fallback");
        let store = GenStore::new(&dir, 3);
        for tag in 1..=3u8 {
            store.persist(0, &sealed(tag)).expect("persist");
        }
        // Bit-flip gen0, truncate gen1: recovery must land on gen2.
        let mut g0 = fs::read(store.path(0, 0)).unwrap();
        let mid = g0.len() / 2;
        g0[mid] ^= 0x01;
        fs::write(store.path(0, 0), &g0).unwrap();
        let g1 = fs::read(store.path(0, 1)).unwrap();
        fs::write(store.path(0, 1), &g1[..g1.len() / 3]).unwrap();

        let (gen, bytes) = store.load(0).expect("gen2 still good");
        assert_eq!(gen, 2);
        assert_eq!(scrub_checkpoint::open(&bytes).unwrap(), &[1u8; 32][..]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn all_generations_bad_is_typed_exhaustion() {
        let dir = temp_dir("exhausted");
        let store = GenStore::new(&dir, 2);
        store.persist(5, &sealed(9)).expect("persist");
        store.persist(5, &sealed(9)).expect("persist");
        fs::write(store.path(5, 0), b"NOTACKPT").unwrap();
        fs::write(store.path(5, 1), b"").unwrap();
        let err = store.load(5).expect_err("nothing valid");
        let RecoveryError::Exhausted { shard, tried } = err;
        assert_eq!(shard, 5);
        assert_eq!(tried.len(), 2, "every generation accounted for");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_shard_reports_every_slot_missing() {
        let dir = temp_dir("missing");
        let store = GenStore::new(&dir, 3);
        let err = store.load(2).expect_err("no files at all");
        let RecoveryError::Exhausted { tried, .. } = err;
        assert_eq!(tried.len(), 3);
        assert!(tried.iter().all(|(_, why)| why.contains("unreadable")));
        let _ = fs::remove_dir_all(&dir);
    }
}
