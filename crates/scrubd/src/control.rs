//! The file-based control plane between `scrubd` and `scrubctl`.
//!
//! A *control directory* is the rendezvous: the daemon writes
//! `status.json`, `rollup.json`, and per-shard telemetry under `shards/`;
//! the client drops numbered command files under `cmd/` which the daemon
//! consumes at cadence boundaries, in sequence order. Everything is
//! plain files written atomically (temp + rename), so a reader never
//! observes a torn document and no sockets or daemonized IPC are needed —
//! the protocol works identically in CI, tests, and interactive use.

use std::fs;
use std::path::{Path, PathBuf};
use std::str::FromStr;

/// A control verb, as carried by one command file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command {
    /// Drain a shard to a checkpoint and resume it on another worker.
    Migrate {
        /// Which shard to move.
        shard: u32,
        /// Destination worker, or `None` for round-robin.
        worker: Option<u32>,
    },
    /// Checkpoint every shard into `snapshots/` without stopping.
    Snapshot,
    /// Finish the current round, write final telemetry, and exit.
    Stop,
}

impl std::fmt::Display for Command {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Command::Migrate {
                shard,
                worker: Some(w),
            } => write!(f, "migrate shard={shard} worker={w}"),
            Command::Migrate {
                shard,
                worker: None,
            } => write!(f, "migrate shard={shard}"),
            Command::Snapshot => write!(f, "snapshot"),
            Command::Stop => write!(f, "stop"),
        }
    }
}

impl FromStr for Command {
    type Err = String;

    fn from_str(text: &str) -> Result<Self, String> {
        let mut words = text.split_whitespace();
        let verb = words.next().ok_or("empty command")?;
        let mut shard: Option<u32> = None;
        let mut worker: Option<u32> = None;
        for w in words {
            let (k, v) = w
                .split_once('=')
                .ok_or_else(|| format!("malformed command argument {w:?}"))?;
            let parsed = v
                .parse::<u32>()
                .map_err(|_| format!("command argument {k}={v:?} is not an integer"))?;
            match k {
                "shard" => shard = Some(parsed),
                "worker" => worker = Some(parsed),
                other => return Err(format!("unknown command argument {other:?}")),
            }
        }
        match verb {
            "migrate" => Ok(Command::Migrate {
                shard: shard.ok_or("migrate requires shard=N")?,
                worker,
            }),
            "snapshot" if shard.is_none() && worker.is_none() => Ok(Command::Snapshot),
            "stop" if shard.is_none() && worker.is_none() => Ok(Command::Stop),
            "snapshot" | "stop" => Err(format!("{verb} takes no arguments")),
            other => Err(format!("unknown command {other:?}")),
        }
    }
}

/// Handle to a control directory (creating the layout on demand).
#[derive(Debug, Clone)]
pub struct ControlDir {
    root: PathBuf,
}

impl ControlDir {
    /// Wraps `root` without touching the filesystem.
    pub fn new(root: impl Into<PathBuf>) -> Self {
        Self { root: root.into() }
    }

    /// The directory itself.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Creates `cmd/`, `shards/`, and `snapshots/`.
    pub fn ensure_layout(&self) -> Result<(), String> {
        for sub in ["cmd", "shards", "snapshots"] {
            fs::create_dir_all(self.root.join(sub))
                .map_err(|e| format!("cannot create {}/{sub}: {e}", self.root.display()))?;
        }
        Ok(())
    }

    /// Path of the daemon-maintained fleet status document.
    pub fn status_path(&self) -> PathBuf {
        self.root.join("status.json")
    }

    /// Path of the merged fleet telemetry roll-up.
    pub fn rollup_path(&self) -> PathBuf {
        self.root.join("rollup.json")
    }

    /// Path of one shard's telemetry document.
    pub fn shard_doc_path(&self, shard: u32) -> PathBuf {
        self.root.join(format!("shards/shard-{shard:04}.json"))
    }

    /// Path of one shard's checkpoint snapshot.
    pub fn snapshot_path(&self, shard: u32) -> PathBuf {
        self.root.join(format!("snapshots/shard-{shard:04}.ckpt"))
    }

    /// Writes `content` to `path` atomically (temp file + rename), so a
    /// concurrent reader sees either the old or the new document, never a
    /// prefix.
    pub fn write_atomic(&self, path: &Path, content: &[u8]) -> Result<(), String> {
        let tmp = path.with_extension("tmp");
        fs::write(&tmp, content).map_err(|e| format!("cannot write {}: {e}", tmp.display()))?;
        fs::rename(&tmp, path).map_err(|e| format!("cannot move {} into place: {e}", tmp.display()))
    }

    /// Submits a command: the next free sequence number under `cmd/`.
    pub fn submit(&self, cmd: &Command) -> Result<PathBuf, String> {
        self.ensure_layout()?;
        let seq = self
            .list_command_files()?
            .last()
            .and_then(|p| Self::seq_of(p))
            .map_or(0, |n| n + 1);
        let path = self.root.join(format!("cmd/{seq:06}.cmd"));
        self.write_atomic(&path, format!("{cmd}\n").as_bytes())?;
        Ok(path)
    }

    /// Reads and *consumes* every pending command, in sequence order.
    /// A malformed command file is an error (the daemon reports it and
    /// keeps running; the file is consumed either way).
    pub fn take_pending(&self) -> Result<Vec<Result<Command, String>>, String> {
        let files = self.list_command_files()?;
        let mut out = Vec::with_capacity(files.len());
        for path in files {
            let text = fs::read_to_string(&path)
                .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
            fs::remove_file(&path)
                .map_err(|e| format!("cannot consume {}: {e}", path.display()))?;
            out.push(
                text.trim()
                    .parse::<Command>()
                    .map_err(|e| format!("{}: {e}", path.display())),
            );
        }
        Ok(out)
    }

    /// Lists pending command files without consuming them.
    pub fn pending(&self) -> Result<Vec<PathBuf>, String> {
        self.list_command_files()
    }

    fn list_command_files(&self) -> Result<Vec<PathBuf>, String> {
        let dir = self.root.join("cmd");
        if !dir.exists() {
            return Ok(Vec::new());
        }
        let mut files: Vec<PathBuf> = fs::read_dir(&dir)
            .map_err(|e| format!("cannot list {}: {e}", dir.display()))?
            .filter_map(|entry| entry.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|ext| ext == "cmd"))
            .collect();
        files.sort();
        Ok(files)
    }

    fn seq_of(path: &Path) -> Option<u64> {
        path.file_stem()?.to_str()?.parse().ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_control(tag: &str) -> ControlDir {
        let dir = std::env::temp_dir().join(format!("scrubd-control-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        ControlDir::new(dir)
    }

    #[test]
    fn commands_round_trip_through_display() {
        let cases = [
            Command::Migrate {
                shard: 3,
                worker: Some(1),
            },
            Command::Migrate {
                shard: 0,
                worker: None,
            },
            Command::Snapshot,
            Command::Stop,
        ];
        for cmd in cases {
            let text = cmd.to_string();
            assert_eq!(text.parse::<Command>().expect("parses"), cmd, "{text}");
        }
    }

    #[test]
    fn rejects_malformed_commands() {
        for (text, needle) in [
            ("", "empty"),
            ("migrate", "requires shard"),
            ("migrate shard=x", "not an integer"),
            ("migrate pants=3", "unknown command argument"),
            ("stop shard=1", "takes no arguments"),
            ("reboot", "unknown command"),
        ] {
            let err = text.parse::<Command>().expect_err(text);
            assert!(err.contains(needle), "{text:?} -> {err:?}");
        }
    }

    #[test]
    fn submit_and_take_preserve_sequence_order() {
        let ctl = tmp_control("seq");
        ctl.submit(&Command::Snapshot).expect("submit");
        ctl.submit(&Command::Migrate {
            shard: 1,
            worker: None,
        })
        .expect("submit");
        ctl.submit(&Command::Stop).expect("submit");
        assert_eq!(ctl.pending().expect("list").len(), 3);
        let taken: Vec<Command> = ctl
            .take_pending()
            .expect("take")
            .into_iter()
            .map(|r| r.expect("well-formed"))
            .collect();
        assert_eq!(
            taken,
            vec![
                Command::Snapshot,
                Command::Migrate {
                    shard: 1,
                    worker: None
                },
                Command::Stop
            ]
        );
        assert!(ctl.take_pending().expect("take").is_empty(), "consumed");
        let _ = fs::remove_dir_all(ctl.root());
    }

    #[test]
    fn atomic_write_replaces_whole_documents() {
        let ctl = tmp_control("atomic");
        ctl.ensure_layout().expect("layout");
        let path = ctl.status_path();
        ctl.write_atomic(&path, b"{\"v\": 1}").expect("write");
        ctl.write_atomic(&path, b"{\"v\": 2}").expect("write");
        assert_eq!(fs::read_to_string(&path).expect("read"), "{\"v\": 2}");
        let _ = fs::remove_dir_all(ctl.root());
    }
}
