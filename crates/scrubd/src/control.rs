//! The file-based control plane between `scrubd` and `scrubctl`.
//!
//! A *control directory* is the rendezvous: the daemon writes
//! `status.json`, `rollup.json`, and per-shard telemetry under `shards/`;
//! the client drops numbered command files under `cmd/` which the daemon
//! consumes at cadence boundaries, in sequence order. Everything is
//! plain files written atomically (temp + fsync + rename + directory
//! fsync), so a reader never observes a torn document — even across a
//! power cut — and no sockets or daemonized IPC are needed: the protocol
//! works identically in CI, tests, and interactive use.
//!
//! The command intake is hardened against the ways a file-based queue
//! goes wrong in practice: in-flight `.tmp` files are invisible,
//! partially-written command files (no trailing newline yet) are left
//! for the next poll, duplicate or stale sequence numbers (a client
//! retrying after a crash, or a replayed directory) are consumed but not
//! re-executed, and a sequence gap is warned about loudly instead of
//! wedging the queue. The daemon persists its high-water sequence in the
//! write-ahead journal and publishes it in `status.json`, so both sides
//! agree on what has already been consumed even though consumed files
//! are deleted.

use std::fs::{self, File};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::str::FromStr;

/// A control verb, as carried by one command file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command {
    /// Drain a shard to a checkpoint and resume it on another worker.
    Migrate {
        /// Which shard to move.
        shard: u32,
        /// Destination worker, or `None` for round-robin.
        worker: Option<u32>,
    },
    /// Checkpoint every shard into `snapshots/` without stopping.
    Snapshot,
    /// Finish the current round, write final telemetry, and exit.
    Stop,
}

impl std::fmt::Display for Command {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Command::Migrate {
                shard,
                worker: Some(w),
            } => write!(f, "migrate shard={shard} worker={w}"),
            Command::Migrate {
                shard,
                worker: None,
            } => write!(f, "migrate shard={shard}"),
            Command::Snapshot => write!(f, "snapshot"),
            Command::Stop => write!(f, "stop"),
        }
    }
}

impl FromStr for Command {
    type Err = String;

    fn from_str(text: &str) -> Result<Self, String> {
        let mut words = text.split_whitespace();
        let verb = words.next().ok_or("empty command")?;
        let mut shard: Option<u32> = None;
        let mut worker: Option<u32> = None;
        for w in words {
            let (k, v) = w
                .split_once('=')
                .ok_or_else(|| format!("malformed command argument {w:?}"))?;
            let parsed = v
                .parse::<u32>()
                .map_err(|_| format!("command argument {k}={v:?} is not an integer"))?;
            match k {
                "shard" => shard = Some(parsed),
                "worker" => worker = Some(parsed),
                other => return Err(format!("unknown command argument {other:?}")),
            }
        }
        match verb {
            "migrate" => Ok(Command::Migrate {
                shard: shard.ok_or("migrate requires shard=N")?,
                worker,
            }),
            "snapshot" if shard.is_none() && worker.is_none() => Ok(Command::Snapshot),
            "stop" if shard.is_none() && worker.is_none() => Ok(Command::Stop),
            "snapshot" | "stop" => Err(format!("{verb} takes no arguments")),
            other => Err(format!("unknown command {other:?}")),
        }
    }
}

/// What one [`ControlDir::take_pending`] poll produced.
#[derive(Debug, Clone)]
pub struct Intake {
    /// Parsed commands (or per-file parse errors), in sequence order.
    pub commands: Vec<Result<Command, String>>,
    /// One line per anomaly: torn files left in place, duplicates
    /// dropped, sequence gaps stepped over.
    pub warnings: Vec<String>,
    /// Highest sequence number consumed so far (input watermark if
    /// nothing new arrived).
    pub watermark: Option<u64>,
}

/// Handle to a control directory (creating the layout on demand).
#[derive(Debug, Clone)]
pub struct ControlDir {
    root: PathBuf,
}

impl ControlDir {
    /// Wraps `root` without touching the filesystem.
    pub fn new(root: impl Into<PathBuf>) -> Self {
        Self { root: root.into() }
    }

    /// The directory itself.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Creates `cmd/`, `shards/`, and `snapshots/`.
    pub fn ensure_layout(&self) -> Result<(), String> {
        for sub in ["cmd", "shards", "snapshots"] {
            fs::create_dir_all(self.root.join(sub))
                .map_err(|e| format!("cannot create {}/{sub}: {e}", self.root.display()))?;
        }
        Ok(())
    }

    /// Path of the daemon-maintained fleet status document.
    pub fn status_path(&self) -> PathBuf {
        self.root.join("status.json")
    }

    /// Path of the merged fleet telemetry roll-up.
    pub fn rollup_path(&self) -> PathBuf {
        self.root.join("rollup.json")
    }

    /// Path of the supervision telemetry document (retries, quarantines,
    /// MTTR) — kept apart from `rollup.json` so recovery bookkeeping
    /// never perturbs the simulation roll-up's byte-identity.
    pub fn health_path(&self) -> PathBuf {
        self.root.join("health.json")
    }

    /// Path of one shard's telemetry document.
    pub fn shard_doc_path(&self, shard: u32) -> PathBuf {
        self.root.join(format!("shards/shard-{shard:04}.json"))
    }

    /// Path of one shard's checkpoint snapshot.
    pub fn snapshot_path(&self, shard: u32) -> PathBuf {
        self.root.join(format!("snapshots/shard-{shard:04}.ckpt"))
    }

    /// Writes `content` to `path` atomically and durably: temp file,
    /// fsync, rename, then fsync of the parent directory — so a
    /// concurrent reader sees either the old or the new document (never
    /// a prefix), and the rename itself survives a power cut.
    pub fn write_atomic(&self, path: &Path, content: &[u8]) -> Result<(), String> {
        let tmp = path.with_extension("tmp");
        let mut f =
            File::create(&tmp).map_err(|e| format!("cannot write {}: {e}", tmp.display()))?;
        f.write_all(content)
            .map_err(|e| format!("cannot write {}: {e}", tmp.display()))?;
        f.sync_all()
            .map_err(|e| format!("cannot sync {}: {e}", tmp.display()))?;
        drop(f);
        fs::rename(&tmp, path)
            .map_err(|e| format!("cannot move {} into place: {e}", tmp.display()))?;
        if let Some(dir) = path.parent() {
            crate::generations::sync_dir(dir)
                .map_err(|e| format!("cannot sync {}: {e}", dir.display()))?;
        }
        Ok(())
    }

    /// Chaos hook: deliberately leaves a *torn* write — the first half
    /// of `content` in `path`'s `.tmp` sibling, never renamed into
    /// place. Models a writer dying mid-publish: readers of `path` keep
    /// seeing the previous document, and the orphaned `.tmp` must stay
    /// invisible to the command intake. Drives the `--chaos
    /// torn_status=R` injection and the torn-write regression tests.
    pub fn write_torn(&self, path: &Path, content: &[u8]) -> Result<(), String> {
        let tmp = path.with_extension("tmp");
        fs::write(&tmp, &content[..content.len() / 2])
            .map_err(|e| format!("cannot write {}: {e}", tmp.display()))
    }

    /// Submits a command: the next free sequence number under `cmd/`.
    /// Consumed command files are deleted, so a fresh client must not
    /// restart at zero — pass the daemon's published watermark (the
    /// `cmd_seq` field of `status.json`) so the new file sorts after
    /// everything already consumed.
    pub fn submit(&self, cmd: &Command, watermark: Option<u64>) -> Result<PathBuf, String> {
        self.ensure_layout()?;
        let after_files = self
            .list_command_files()?
            .last()
            .and_then(|p| Self::seq_of(p))
            .map_or(0, |n| n + 1);
        let after_watermark = watermark.map_or(0, |w| w + 1);
        let seq = after_files.max(after_watermark);
        let path = self.root.join(format!("cmd/{seq:06}.cmd"));
        self.write_atomic(&path, format!("{cmd}\n").as_bytes())?;
        Ok(path)
    }

    /// Reads and *consumes* every pending command, in sequence order,
    /// hardened against a messy queue directory:
    ///
    /// * in-flight `.tmp` files are never visible (extension filter);
    /// * a file without its trailing newline is still being written —
    ///   it is left in place for the next poll, with a warning;
    /// * a sequence number at or below `watermark` has already been
    ///   consumed once — the file is deleted with a one-line warning
    ///   and **not** re-executed (duplicate / stale replay);
    /// * a gap in the sequence is warned about and stepped over — the
    ///   queue never wedges.
    ///
    /// A malformed command body is an error entry (the daemon reports it
    /// and keeps running; the file is consumed either way).
    pub fn take_pending(&self, watermark: Option<u64>) -> Result<Intake, String> {
        let files = self.list_command_files()?;
        let mut intake = Intake {
            commands: Vec::with_capacity(files.len()),
            warnings: Vec::new(),
            watermark,
        };
        for path in files {
            let text = fs::read_to_string(&path)
                .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
            if !text.ends_with('\n') {
                intake.warnings.push(format!(
                    "{}: still being written (no trailing newline); leaving for next poll",
                    path.display()
                ));
                continue;
            }
            fs::remove_file(&path)
                .map_err(|e| format!("cannot consume {}: {e}", path.display()))?;
            let seq = Self::seq_of(&path);
            match (seq, intake.watermark) {
                (Some(seq), Some(mark)) if seq <= mark => {
                    intake.warnings.push(format!(
                        "{}: stale or duplicate sequence {seq} (already consumed through \
                         {mark}); ignoring",
                        path.display()
                    ));
                    continue;
                }
                (Some(seq), mark) => {
                    let expected = mark.map_or(0, |m| m + 1);
                    if seq > expected {
                        intake.warnings.push(format!(
                            "{}: sequence gap — expected {expected}, found {seq}; \
                             continuing past it",
                            path.display()
                        ));
                    }
                    intake.watermark = Some(seq);
                }
                (None, _) => {
                    intake.warnings.push(format!(
                        "{}: non-numeric command file name; treating as malformed",
                        path.display()
                    ));
                }
            }
            intake.commands.push(
                text.trim()
                    .parse::<Command>()
                    .map_err(|e| format!("{}: {e}", path.display())),
            );
        }
        Ok(intake)
    }

    /// Lists pending command files without consuming them.
    pub fn pending(&self) -> Result<Vec<PathBuf>, String> {
        self.list_command_files()
    }

    fn list_command_files(&self) -> Result<Vec<PathBuf>, String> {
        let dir = self.root.join("cmd");
        if !dir.exists() {
            return Ok(Vec::new());
        }
        let mut files: Vec<PathBuf> = fs::read_dir(&dir)
            .map_err(|e| format!("cannot list {}: {e}", dir.display()))?
            .filter_map(|entry| entry.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|ext| ext == "cmd"))
            .collect();
        files.sort();
        Ok(files)
    }

    fn seq_of(path: &Path) -> Option<u64> {
        path.file_stem()?.to_str()?.parse().ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_control(tag: &str) -> ControlDir {
        let dir = std::env::temp_dir().join(format!("scrubd-control-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        ControlDir::new(dir)
    }

    #[test]
    fn commands_round_trip_through_display() {
        let cases = [
            Command::Migrate {
                shard: 3,
                worker: Some(1),
            },
            Command::Migrate {
                shard: 0,
                worker: None,
            },
            Command::Snapshot,
            Command::Stop,
        ];
        for cmd in cases {
            let text = cmd.to_string();
            assert_eq!(text.parse::<Command>().expect("parses"), cmd, "{text}");
        }
    }

    #[test]
    fn rejects_malformed_commands() {
        for (text, needle) in [
            ("", "empty"),
            ("migrate", "requires shard"),
            ("migrate shard=x", "not an integer"),
            ("migrate pants=3", "unknown command argument"),
            ("stop shard=1", "takes no arguments"),
            ("reboot", "unknown command"),
        ] {
            let err = text.parse::<Command>().expect_err(text);
            assert!(err.contains(needle), "{text:?} -> {err:?}");
        }
    }

    #[test]
    fn submit_and_take_preserve_sequence_order() {
        let ctl = tmp_control("seq");
        ctl.submit(&Command::Snapshot, None).expect("submit");
        ctl.submit(
            &Command::Migrate {
                shard: 1,
                worker: None,
            },
            None,
        )
        .expect("submit");
        ctl.submit(&Command::Stop, None).expect("submit");
        assert_eq!(ctl.pending().expect("list").len(), 3);
        let intake = ctl.take_pending(None).expect("take");
        assert!(intake.warnings.is_empty(), "{:?}", intake.warnings);
        assert_eq!(intake.watermark, Some(2));
        let taken: Vec<Command> = intake
            .commands
            .into_iter()
            .map(|r| r.expect("well-formed"))
            .collect();
        assert_eq!(
            taken,
            vec![
                Command::Snapshot,
                Command::Migrate {
                    shard: 1,
                    worker: None
                },
                Command::Stop
            ]
        );
        let again = ctl.take_pending(Some(2)).expect("take");
        assert!(again.commands.is_empty(), "consumed");
        assert_eq!(again.watermark, Some(2));
        let _ = fs::remove_dir_all(ctl.root());
    }

    #[test]
    fn submit_resumes_after_the_published_watermark() {
        let ctl = tmp_control("watermark");
        // All earlier files were consumed (deleted); a naive client
        // would restart at 000000 and be dropped as stale.
        let path = ctl.submit(&Command::Snapshot, Some(6)).expect("submit");
        assert!(path.ends_with("000007.cmd"), "{}", path.display());
        let intake = ctl.take_pending(Some(6)).expect("take");
        assert_eq!(intake.commands.len(), 1);
        assert_eq!(intake.watermark, Some(7));
        let _ = fs::remove_dir_all(ctl.root());
    }

    #[test]
    fn stale_and_duplicate_sequences_are_dropped_with_a_warning() {
        let ctl = tmp_control("stale");
        ctl.ensure_layout().expect("layout");
        ctl.write_atomic(&ctl.root().join("cmd/000002.cmd"), b"stop\n")
            .expect("write");
        ctl.write_atomic(&ctl.root().join("cmd/000005.cmd"), b"snapshot\n")
            .expect("write");
        let intake = ctl.take_pending(Some(4)).expect("take");
        // 000002 <= watermark 4: consumed but not executed; 000005 runs.
        assert_eq!(intake.commands.len(), 1);
        assert_eq!(
            intake.commands[0].as_ref().expect("well-formed"),
            &Command::Snapshot
        );
        assert_eq!(intake.watermark, Some(5));
        assert_eq!(intake.warnings.len(), 1);
        assert!(intake.warnings[0].contains("stale or duplicate"));
        assert!(ctl.pending().expect("list").is_empty(), "both consumed");
        let _ = fs::remove_dir_all(ctl.root());
    }

    #[test]
    fn in_flight_tmp_and_partial_files_are_skipped() {
        let ctl = tmp_control("inflight");
        ctl.ensure_layout().expect("layout");
        // An in-flight atomic write: .tmp extension, never listed.
        fs::write(ctl.root().join("cmd/000000.tmp"), b"sto").expect("write");
        // A non-atomic writer mid-stream: right name, no newline yet.
        fs::write(ctl.root().join("cmd/000001.cmd"), b"snapsho").expect("write");
        let intake = ctl.take_pending(None).expect("take");
        assert!(intake.commands.is_empty());
        assert_eq!(intake.watermark, None);
        assert_eq!(intake.warnings.len(), 1, "{:?}", intake.warnings);
        assert!(intake.warnings[0].contains("still being written"));
        // The partial file survives the poll; once finished it parses.
        fs::write(ctl.root().join("cmd/000001.cmd"), b"snapshot\n").expect("write");
        let intake = ctl.take_pending(None).expect("take");
        assert_eq!(intake.commands.len(), 1);
        assert_eq!(intake.watermark, Some(1));
        let _ = fs::remove_dir_all(ctl.root());
    }

    #[test]
    fn sequence_gaps_warn_but_do_not_wedge() {
        let ctl = tmp_control("gap");
        ctl.ensure_layout().expect("layout");
        ctl.write_atomic(&ctl.root().join("cmd/000003.cmd"), b"snapshot\n")
            .expect("write");
        let intake = ctl.take_pending(Some(0)).expect("take");
        assert_eq!(intake.commands.len(), 1);
        assert_eq!(intake.watermark, Some(3));
        assert_eq!(intake.warnings.len(), 1);
        assert!(
            intake.warnings[0].contains("sequence gap"),
            "{:?}",
            intake.warnings
        );
        let _ = fs::remove_dir_all(ctl.root());
    }

    #[test]
    fn torn_write_leaves_previous_document_intact() {
        let ctl = tmp_control("torn");
        ctl.ensure_layout().expect("layout");
        let path = ctl.status_path();
        ctl.write_atomic(&path, b"{\"v\": 1}").expect("write");
        ctl.write_torn(&path, b"{\"v\": 2, \"junk\": 123}")
            .expect("torn write");
        assert_eq!(fs::read_to_string(&path).expect("read"), "{\"v\": 1}");
        assert!(path.with_extension("tmp").exists(), "torn tmp left behind");
        // The next atomic write clobbers the torn tmp and lands cleanly.
        ctl.write_atomic(&path, b"{\"v\": 3}").expect("write");
        assert_eq!(fs::read_to_string(&path).expect("read"), "{\"v\": 3}");
        let _ = fs::remove_dir_all(ctl.root());
    }

    #[test]
    fn atomic_write_replaces_whole_documents() {
        let ctl = tmp_control("atomic");
        ctl.ensure_layout().expect("layout");
        let path = ctl.status_path();
        ctl.write_atomic(&path, b"{\"v\": 1}").expect("write");
        ctl.write_atomic(&path, b"{\"v\": 2}").expect("write");
        assert_eq!(fs::read_to_string(&path).expect("read"), "{\"v\": 2}");
        let _ = fs::remove_dir_all(ctl.root());
    }
}
