//! Deterministic service-level fault injection for the fleet layer —
//! the `scrubd --chaos SPEC` harness.
//!
//! Where `memsim::inject` corrupts the *simulated memory*, this module
//! corrupts the *service itself*: shard round jobs panic, round
//! checkpoints arrive with flipped bits, persisted checkpoint generations
//! rot on disk, status publishes tear mid-write, and the daemon dies at a
//! chosen round. Every injection is a pure function of the spec — the
//! schedule is fixed at parse time and derived only from the spec's own
//! seed — so a chaos campaign replays identically and differential tests
//! can compare a chaotic run against a continuous control run.
//!
//! Spec grammar (`;`-separated clauses, repeated clauses accumulate):
//!
//! ```text
//! seed=N                  corruption-mode / schedule seed (default 0)
//! panic_shard=S@R[:W]     shard S's round job panics during rounds
//!                         [R, R+W) (W defaults to 1)
//! corrupt_ckpt=S@R        shard S's round-R checkpoint bytes get one
//!                         flipped bit before validation
//! corrupt_gen=S:G@R       after the round-R persist, generation G of
//!                         shard S is corrupted on disk (mode seeded:
//!                         bit-flip / truncate / foreign magic)
//! kill_round=R            the daemon exits (exit code 3) at round R
//! kill_point=pre|mid|post where in round R the kill lands: before any
//!                         persist, after persisting half the shards
//!                         (no WAL record), or after WAL+publish
//! torn_status=R           round R's status publish leaves a torn
//!                         `status.json.tmp` (prefix only, no rename)
//! ```
//!
//! Example: `--chaos "seed=7;panic_shard=2@3:4;kill_round=6;kill_point=mid"`.

use std::str::FromStr;

/// Where inside a round the injected daemon kill happens.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KillPoint {
    /// After advancing, before any generation/WAL persist — the whole
    /// round's progress exists only in memory and is lost.
    Pre,
    /// After persisting generations for the first half of the shards,
    /// before the WAL record — recovery sees mixed generations.
    Mid,
    /// After WAL append and publish — a clean crash.
    Post,
}

impl KillPoint {
    fn parse(s: &str) -> Result<Self, String> {
        match s {
            "pre" => Ok(KillPoint::Pre),
            "mid" => Ok(KillPoint::Mid),
            "post" => Ok(KillPoint::Post),
            other => Err(format!("kill_point must be pre|mid|post, got {other:?}")),
        }
    }
}

/// How a persisted generation file is damaged (chosen by seed).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorruptMode {
    /// One bit flipped somewhere in the payload.
    BitFlip,
    /// File truncated to half its length.
    Truncate,
    /// The 8-byte magic replaced with a foreign one.
    ForeignMagic,
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct PanicWindow {
    shard: u32,
    from_round: u64,
    rounds: u64,
}

/// Parsed, immutable chaos schedule. All queries are pure functions of
/// `(shard, round)`, so the engine is freely shared across pool workers.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosSpec {
    /// Seed for corruption-mode and offset choices.
    pub seed: u64,
    panics: Vec<PanicWindow>,
    corrupt_ckpt: Vec<(u32, u64)>,
    corrupt_gen: Vec<(u32, u32, u64)>,
    /// Round at which the daemon kills itself, if any.
    pub kill_round: Option<u64>,
    /// Where in the kill round the exit lands.
    pub kill_point: KillPoint,
    torn_status: Vec<u64>,
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl ChaosSpec {
    /// Whether shard `shard`'s round job must panic at fleet round
    /// `round` (retry attempts inside the window fail too — that is how
    /// a campaign drives a shard into quarantine).
    pub fn panic_at(&self, shard: u32, round: u64) -> bool {
        self.panics
            .iter()
            .any(|p| p.shard == shard && round >= p.from_round && round < p.from_round + p.rounds)
    }

    /// Whether shard `shard`'s round-`round` checkpoint bytes must be
    /// corrupted before validation.
    pub fn corrupt_ckpt_at(&self, shard: u32, round: u64) -> bool {
        self.corrupt_ckpt
            .iter()
            .any(|&(s, r)| s == shard && r == round)
    }

    /// Generations to damage on disk after the round-`round` persist, as
    /// `(shard, generation, mode)`.
    pub fn corrupt_gens_at(&self, round: u64) -> Vec<(u32, u32, CorruptMode)> {
        self.corrupt_gen
            .iter()
            .filter(|&&(_, _, r)| r == round)
            .map(|&(s, g, _)| {
                let pick = splitmix64(self.seed ^ ((s as u64) << 20) ^ g as u64) % 3;
                let mode = match pick {
                    0 => CorruptMode::BitFlip,
                    1 => CorruptMode::Truncate,
                    _ => CorruptMode::ForeignMagic,
                };
                (s, g, mode)
            })
            .collect()
    }

    /// Whether the round-`round` status publish must tear.
    pub fn torn_status_at(&self, round: u64) -> bool {
        self.torn_status.contains(&round)
    }

    /// Byte offset (within `len`) the seeded bit-flip lands on.
    pub fn flip_offset(&self, shard: u32, round: u64, len: usize) -> usize {
        if len == 0 {
            return 0;
        }
        (splitmix64(self.seed ^ 0xC0FF_EE00 ^ ((shard as u64) << 24) ^ round) % len as u64) as usize
    }

    /// Applies `mode` to file contents in memory (the daemon writes the
    /// result back over the generation file).
    pub fn damage(&self, mode: CorruptMode, shard: u32, gen: u32, bytes: &mut Vec<u8>) {
        match mode {
            CorruptMode::BitFlip => {
                if !bytes.is_empty() {
                    let at = (splitmix64(self.seed ^ ((shard as u64) << 8) ^ gen as u64)
                        % bytes.len() as u64) as usize;
                    bytes[at] ^= 0x20;
                }
            }
            CorruptMode::Truncate => bytes.truncate(bytes.len() / 2),
            CorruptMode::ForeignMagic => {
                for (i, b) in b"NOTACKPT".iter().enumerate() {
                    if i < bytes.len() {
                        bytes[i] = *b;
                    }
                }
            }
        }
    }
}

fn parse_u64(what: &str, v: &str) -> Result<u64, String> {
    v.parse()
        .map_err(|_| format!("chaos {what} must be a non-negative integer, got {v:?}"))
}

fn parse_u32(what: &str, v: &str) -> Result<u32, String> {
    v.parse()
        .map_err(|_| format!("chaos {what} must be a non-negative integer, got {v:?}"))
}

impl FromStr for ChaosSpec {
    type Err = String;

    fn from_str(text: &str) -> Result<Self, String> {
        let mut spec = ChaosSpec {
            seed: 0,
            panics: Vec::new(),
            corrupt_ckpt: Vec::new(),
            corrupt_gen: Vec::new(),
            kill_round: None,
            kill_point: KillPoint::Mid,
            torn_status: Vec::new(),
        };
        for clause in text.split(';') {
            let clause = clause.trim();
            if clause.is_empty() {
                continue;
            }
            let (key, value) = clause
                .split_once('=')
                .ok_or_else(|| format!("chaos clause {clause:?} is not key=value"))?;
            match key {
                "seed" => spec.seed = parse_u64("seed", value)?,
                "panic_shard" => {
                    let (shard, rest) = value
                        .split_once('@')
                        .ok_or_else(|| format!("panic_shard wants S@R[:W], got {value:?}"))?;
                    let (round, window) = match rest.split_once(':') {
                        Some((r, w)) => (r, parse_u64("panic window", w)?),
                        None => (rest, 1),
                    };
                    if window == 0 {
                        return Err("chaos panic window must be at least 1 round".to_string());
                    }
                    spec.panics.push(PanicWindow {
                        shard: parse_u32("panic shard", shard)?,
                        from_round: parse_u64("panic round", round)?,
                        rounds: window,
                    });
                }
                "corrupt_ckpt" => {
                    let (shard, round) = value
                        .split_once('@')
                        .ok_or_else(|| format!("corrupt_ckpt wants S@R, got {value:?}"))?;
                    spec.corrupt_ckpt
                        .push((parse_u32("shard", shard)?, parse_u64("round", round)?));
                }
                "corrupt_gen" => {
                    let (sg, round) = value
                        .split_once('@')
                        .ok_or_else(|| format!("corrupt_gen wants S:G@R, got {value:?}"))?;
                    let (shard, gen) = sg
                        .split_once(':')
                        .ok_or_else(|| format!("corrupt_gen wants S:G@R, got {value:?}"))?;
                    spec.corrupt_gen.push((
                        parse_u32("shard", shard)?,
                        parse_u32("generation", gen)?,
                        parse_u64("round", round)?,
                    ));
                }
                "kill_round" => spec.kill_round = Some(parse_u64("kill_round", value)?),
                "kill_point" => spec.kill_point = KillPoint::parse(value)?,
                "torn_status" => spec.torn_status.push(parse_u64("torn_status", value)?),
                other => return Err(format!("unknown chaos clause {other:?}")),
            }
        }
        Ok(spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_full_grammar() {
        let spec: ChaosSpec = "seed=7;panic_shard=2@3:4;corrupt_ckpt=1@2;corrupt_gen=0:1@4;\
             kill_round=6;kill_point=pre;torn_status=5"
            .parse()
            .expect("parses");
        assert_eq!(spec.seed, 7);
        assert!(spec.panic_at(2, 3));
        assert!(spec.panic_at(2, 6));
        assert!(!spec.panic_at(2, 7), "window is [3, 7)");
        assert!(!spec.panic_at(1, 3), "only the named shard");
        assert!(spec.corrupt_ckpt_at(1, 2));
        assert!(!spec.corrupt_ckpt_at(1, 3));
        let gens = spec.corrupt_gens_at(4);
        assert_eq!(gens.len(), 1);
        assert_eq!((gens[0].0, gens[0].1), (0, 1));
        assert_eq!(spec.kill_round, Some(6));
        assert_eq!(spec.kill_point, KillPoint::Pre);
        assert!(spec.torn_status_at(5));
        assert!(!spec.torn_status_at(4));
    }

    #[test]
    fn schedule_is_deterministic() {
        let a: ChaosSpec = "seed=9;corrupt_gen=3:0@2".parse().unwrap();
        let b: ChaosSpec = "seed=9;corrupt_gen=3:0@2".parse().unwrap();
        assert_eq!(a.corrupt_gens_at(2), b.corrupt_gens_at(2));
        assert_eq!(a.flip_offset(3, 2, 1000), b.flip_offset(3, 2, 1000));
    }

    #[test]
    fn damage_modes_change_bytes() {
        let spec: ChaosSpec = "seed=1".parse().unwrap();
        let original: Vec<u8> = (0..64u8).collect();

        let mut flipped = original.clone();
        spec.damage(CorruptMode::BitFlip, 0, 0, &mut flipped);
        assert_eq!(flipped.len(), original.len());
        assert_ne!(flipped, original);

        let mut short = original.clone();
        spec.damage(CorruptMode::Truncate, 0, 0, &mut short);
        assert_eq!(short.len(), 32);

        let mut foreign = original.clone();
        spec.damage(CorruptMode::ForeignMagic, 0, 0, &mut foreign);
        assert_eq!(&foreign[..8], b"NOTACKPT");
    }

    #[test]
    fn rejects_malformed_specs() {
        for (text, needle) in [
            ("panic_shard=3", "S@R"),
            ("panic_shard=x@1", "integer"),
            ("panic_shard=1@2:0", "at least 1"),
            ("corrupt_gen=1@2", "S:G@R"),
            ("kill_point=sideways", "pre|mid|post"),
            ("warp=1", "unknown chaos clause"),
            ("seed", "key=value"),
        ] {
            let err = text.parse::<ChaosSpec>().expect_err(text);
            assert!(err.contains(needle), "{text:?} -> {err:?}");
        }
    }

    #[test]
    fn empty_spec_is_inert() {
        let spec: ChaosSpec = "".parse().expect("empty spec is fine");
        assert!(!spec.panic_at(0, 1));
        assert!(spec.kill_round.is_none());
        assert!(spec.corrupt_gens_at(1).is_empty());
    }
}
