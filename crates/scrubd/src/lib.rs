//! # scrubd — the fleet-scale scrub service
//!
//! Runs a simulated fleet of error-prone memory banks as many shard
//! simulations under open-loop multi-tenant demand, the
//! production-deployment face of the HPCA 2012 scrub-mechanism study:
//!
//! * [`FleetConfig`] — the INI-style fleet configuration (banks, shards,
//!   cadence, policy, tenant mix), validated with one-line errors;
//! * [`Fleet`] — shard simulations advanced in cadence rounds over the
//!   `scrub-exec` pool, with checkpoint-backed [`Fleet::migrate`] and
//!   [`Document::merge_segments`]-based telemetry roll-ups;
//! * [`ControlDir`] / [`Command`] — the file-based control plane shared
//!   with the `scrubctl` client (atomic status/rollup documents, numbered
//!   command files consumed at round boundaries);
//! * [`status`] — the `status.json` schema both sides speak.
//!
//! The design invariant inherited from the simulator core: *placement
//! never changes results*. Worker counts, migrations, and
//! drain/resume cycles are execution details; the final fleet roll-up is
//! byte-identical to an uninterrupted run (see
//! `tests/migration_differential.rs`).
//!
//! [`Document::merge_segments`]: scrub_telemetry::Document::merge_segments

mod config;
mod control;
mod fleet;
pub mod status;

pub use config::FleetConfig;
pub use control::{Command, ControlDir};
pub use fleet::{Fleet, Migration, Shard, TenantSlo};
