//! # scrubd — the fleet-scale scrub service
//!
//! Runs a simulated fleet of error-prone memory banks as many shard
//! simulations under open-loop multi-tenant demand, the
//! production-deployment face of the HPCA 2012 scrub-mechanism study:
//!
//! * [`FleetConfig`] — the INI-style fleet configuration (banks, shards,
//!   cadence, policy, tenant mix), validated with one-line errors;
//! * [`Fleet`] — shard simulations advanced in cadence rounds over the
//!   `scrub-exec` pool, with checkpoint-backed [`Fleet::migrate`] and
//!   [`Document::merge_segments`]-based telemetry roll-ups;
//! * [`ControlDir`] / [`Command`] — the file-based control plane shared
//!   with the `scrubctl` client (atomic status/rollup documents, numbered
//!   command files consumed at round boundaries);
//! * [`status`] — the `status.json` schema both sides speak;
//! * [`Health`] / [`SupervisorConfig`] — the per-shard self-healing state
//!   machine (retry with bounded backoff, then quarantine);
//! * [`GenStore`] / [`Wal`] — rotated checkpoint generations and the
//!   write-ahead round journal behind `scrubd --resume-fleet`;
//! * [`ChaosSpec`] — the deterministic service-fault injection schedule
//!   behind `scrubd --chaos`.
//!
//! The design invariant inherited from the simulator core: *placement
//! never changes results*. Worker counts, migrations, drain/resume
//! cycles, and crash-recovery replays are execution details; the final
//! fleet roll-up is byte-identical to an uninterrupted run (see
//! `tests/migration_differential.rs` and `tests/chaos_recovery.rs`),
//! and a shard that cannot be recovered surfaces as a typed, visible
//! quarantine rather than a fleet crash.
//!
//! [`Document::merge_segments`]: scrub_telemetry::Document::merge_segments

pub mod chaos;
mod config;
mod control;
mod fleet;
pub mod generations;
pub mod health;
pub mod status;
pub mod wal;

pub use chaos::{ChaosSpec, CorruptMode, KillPoint};
pub use config::FleetConfig;
pub use control::{Command, ControlDir, Intake};
pub use fleet::{Fleet, Migration, RoundEvent, Shard, ShardRestore, SupervisionStats, TenantSlo};
pub use generations::GenStore;
pub use health::{FailureKind, Health, RecoveryError, SupervisorConfig};
pub use wal::{RoundRecord, Wal};
