//! Write-ahead round journal — the piece that makes `scrubd
//! --resume-fleet` byte-identical to a run that was never interrupted.
//!
//! Checkpoint generations capture *shard state*; the WAL captures the
//! *fleet frame around it*: which round completed, the command-sequence
//! watermark (so replayed command files are recognised as duplicates),
//! and every shard's health token (so a quarantine survives a daemon
//! restart instead of being silently retried). One line is appended and
//! fsynced per completed round:
//!
//! ```text
//! scrubd-wal v1 fp=00000000deadbeef
//! round=1 t_ms=300000 seq=0 health=0:H,1:H crc=1a2b3c4d
//! round=2 t_ms=600000 seq=2 health=0:H,1:R1@2+3:panic crc=5e6f7a8b
//! ```
//!
//! Each record carries a CRC-32 of its own text, so a torn tail (the
//! daemon died mid-append) is detected and dropped — recovery resumes
//! from the last intact record. A valid line *after* a corrupt one is a
//! different disease (silent mid-file corruption) and is refused rather
//! than skipped. The header pins the fleet-config fingerprint; resuming
//! under a different config is refused with a one-line error.

use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

use pcm_ecc::Crc32;

use crate::health::Health;

/// Journal file name inside the control directory.
pub const WAL_FILE: &str = "wal.log";

const HEADER_PREFIX: &str = "scrubd-wal v1 fp=";

/// One completed fleet round, as persisted in the journal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoundRecord {
    /// Rounds completed so far (1 after the first round).
    pub round: u64,
    /// Max simulated shard clock at the end of the round, in ms.
    pub t_ms: u64,
    /// Highest command sequence number consumed so far (`u64::MAX`
    /// encodes "none yet").
    pub seq: u64,
    /// Every shard's health token, in shard-id order.
    pub health: Vec<(u32, Health)>,
}

impl RoundRecord {
    fn encode_body(&self) -> String {
        let health: Vec<String> = self
            .health
            .iter()
            .map(|(id, h)| format!("{id}:{}", h.encode()))
            .collect();
        format!(
            "round={} t_ms={} seq={} health={}",
            self.round,
            self.t_ms,
            self.seq,
            health.join(",")
        )
    }

    /// Full journal line including the trailing CRC (no newline).
    pub fn encode(&self) -> String {
        let body = self.encode_body();
        let crc = Crc32::new().checksum_bytes(body.as_bytes());
        format!("{body} crc={crc:08x}")
    }

    /// Parses [`RoundRecord::encode`], verifying the CRC.
    pub fn decode(line: &str) -> Result<Self, String> {
        let bad = |why: &str| format!("malformed WAL record ({why}): {line:?}");
        let (body, crc_text) = line.rsplit_once(" crc=").ok_or_else(|| bad("no crc"))?;
        let want = u32::from_str_radix(crc_text, 16).map_err(|_| bad("bad crc field"))?;
        let got = Crc32::new().checksum_bytes(body.as_bytes());
        if got != want {
            return Err(bad("crc mismatch"));
        }
        let mut round = None;
        let mut t_ms = None;
        let mut seq = None;
        let mut health = Vec::new();
        for field in body.split(' ') {
            let (key, value) = field.split_once('=').ok_or_else(|| bad("field"))?;
            match key {
                "round" => round = Some(value.parse().map_err(|_| bad("round"))?),
                "t_ms" => t_ms = Some(value.parse().map_err(|_| bad("t_ms"))?),
                "seq" => seq = Some(value.parse().map_err(|_| bad("seq"))?),
                "health" => {
                    for tok in value.split(',').filter(|t| !t.is_empty()) {
                        let (id, h) = tok.split_once(':').ok_or_else(|| bad("health token"))?;
                        health.push((
                            id.parse().map_err(|_| bad("shard id"))?,
                            Health::decode(h).map_err(|e| bad(&e))?,
                        ));
                    }
                }
                _ => return Err(bad("unknown field")),
            }
        }
        Ok(RoundRecord {
            round: round.ok_or_else(|| bad("missing round"))?,
            t_ms: t_ms.ok_or_else(|| bad("missing t_ms"))?,
            seq: seq.ok_or_else(|| bad("missing seq"))?,
            health,
        })
    }
}

/// Append-only handle on one fleet's round journal.
#[derive(Debug, Clone)]
pub struct Wal {
    path: PathBuf,
}

impl Wal {
    /// Journal path inside `control_dir`.
    pub fn path_in(control_dir: &Path) -> PathBuf {
        control_dir.join(WAL_FILE)
    }

    /// Starts a fresh journal (truncating any previous one) pinned to
    /// `fingerprint`.
    pub fn create(control_dir: &Path, fingerprint: u64) -> std::io::Result<Self> {
        let path = Self::path_in(control_dir);
        let mut f = File::create(&path)?;
        writeln!(f, "{HEADER_PREFIX}{fingerprint:016x}")?;
        f.sync_all()?;
        crate::generations::sync_dir(control_dir)?;
        Ok(Self { path })
    }

    /// Opens an existing journal for further appends (after resume).
    pub fn open_existing(control_dir: &Path) -> Self {
        Self {
            path: Self::path_in(control_dir),
        }
    }

    /// Appends one round record and fsyncs before returning.
    pub fn append(&self, record: &RoundRecord) -> std::io::Result<()> {
        let mut f = OpenOptions::new().append(true).open(&self.path)?;
        writeln!(f, "{}", record.encode())?;
        f.sync_all()
    }

    /// Loads the journal, verifying the header against `fingerprint`.
    /// Returns the intact records; a torn final line is dropped (with
    /// `true` in the second slot so callers can log it), while corruption
    /// *before* the tail is a hard error.
    pub fn load(control_dir: &Path, fingerprint: u64) -> Result<(Vec<RoundRecord>, bool), String> {
        let path = Self::path_in(control_dir);
        let text = std::fs::read_to_string(&path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let mut lines = text.split_inclusive('\n');
        let header = lines.next().unwrap_or("").trim_end_matches('\n');
        let fp_text = header
            .strip_prefix(HEADER_PREFIX)
            .ok_or_else(|| format!("{} has no scrubd-wal header", path.display()))?;
        let fp = u64::from_str_radix(fp_text, 16)
            .map_err(|_| format!("{}: bad fingerprint in header", path.display()))?;
        if fp != fingerprint {
            return Err(format!(
                "{}: journal was written by a different fleet config \
                 (fingerprint {fp:016x}, ours {fingerprint:016x})",
                path.display()
            ));
        }
        let rest: Vec<&str> = lines.collect();
        let mut records = Vec::new();
        let mut dropped_tail = false;
        for (i, raw) in rest.iter().enumerate() {
            let is_last = i + 1 == rest.len();
            // A record the daemon finished writing always ends in '\n'.
            let torn_shape = !raw.ends_with('\n');
            match RoundRecord::decode(raw.trim_end_matches('\n')) {
                Ok(r) => {
                    if torn_shape {
                        // Decoded but unterminated: treat as torn anyway —
                        // the fsync for it never completed.
                        if is_last {
                            dropped_tail = true;
                            break;
                        }
                        return Err(format!(
                            "{}: unterminated record before end of journal",
                            path.display()
                        ));
                    }
                    records.push(r);
                }
                Err(e) => {
                    if is_last {
                        dropped_tail = true;
                        break;
                    }
                    return Err(format!("{}: {e}", path.display()));
                }
            }
        }
        Ok((records, dropped_tail))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::health::FailureKind;
    use std::fs;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "scrubd-wal-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("create temp dir");
        dir
    }

    fn record(round: u64) -> RoundRecord {
        RoundRecord {
            round,
            t_ms: round * 300_000,
            seq: round.wrapping_sub(1),
            health: vec![
                (0, Health::Healthy),
                (
                    1,
                    Health::Retrying {
                        attempts: 1,
                        failed_round: round,
                        next_retry_round: round + 2,
                        kind: FailureKind::Panic,
                    },
                ),
            ],
        }
    }

    #[test]
    fn records_round_trip_through_the_file() {
        let dir = temp_dir("roundtrip");
        let wal = Wal::create(&dir, 0xFEED).expect("create");
        for r in 1..=3 {
            wal.append(&record(r)).expect("append");
        }
        let (records, dropped) = Wal::load(&dir, 0xFEED).expect("load");
        assert!(!dropped);
        assert_eq!(records, vec![record(1), record(2), record(3)]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_dropped_not_fatal() {
        let dir = temp_dir("torn");
        let wal = Wal::create(&dir, 1).expect("create");
        wal.append(&record(1)).expect("append");
        let path = Wal::path_in(&dir);
        let mut text = fs::read_to_string(&path).unwrap();
        let full = record(2).encode();
        text.push_str(&full[..full.len() / 2]); // no newline, half a record
        fs::write(&path, text).unwrap();
        let (records, dropped) = Wal::load(&dir, 1).expect("torn tail tolerated");
        assert!(dropped, "tail drop must be reported");
        assert_eq!(records, vec![record(1)]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn mid_file_corruption_is_refused() {
        let dir = temp_dir("midfile");
        let wal = Wal::create(&dir, 1).expect("create");
        wal.append(&record(1)).expect("append");
        wal.append(&record(2)).expect("append");
        let path = Wal::path_in(&dir);
        let text = fs::read_to_string(&path).unwrap();
        // Flip a digit inside record 1's body (not the tail record).
        let corrupted = text.replacen("t_ms=300000", "t_ms=300001", 1);
        assert_ne!(corrupted, text);
        fs::write(&path, corrupted).unwrap();
        let err = Wal::load(&dir, 1).expect_err("mid-file corruption is fatal");
        assert!(err.contains("crc mismatch"), "{err}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn fingerprint_mismatch_is_refused() {
        let dir = temp_dir("fp");
        Wal::create(&dir, 0xAAAA).expect("create");
        let err = Wal::load(&dir, 0xBBBB).expect_err("wrong config");
        assert!(err.contains("different fleet config"), "{err}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn tampered_crc_fails_decode() {
        let line = record(4).encode();
        let tampered = line.replacen("seq=3", "seq=9", 1);
        assert!(RoundRecord::decode(&tampered).is_err());
        assert_eq!(RoundRecord::decode(&line).unwrap(), record(4));
    }
}
