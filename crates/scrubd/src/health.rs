//! The per-shard health state machine the fleet supervisor runs:
//!
//! ```text
//!            round fails (panic / corrupt checkpoint)
//!   Healthy ────────────────────────────────────────► Retrying
//!      ▲                                                 │ │
//!      │ retry succeeds (replay from last good           │ │ retry fails,
//!      │ checkpoint reaches the fleet round)             │ │ attempts ≤ N
//!      └─────────────────────────────────────────────────┘ │ (backoff
//!                                                          ▼  doubles)
//!                                   attempts > N      Quarantined
//! ```
//!
//! A shard whose cadence round panics (isolated by
//! `scrub_exec::par_try_map_mut`) or whose round checkpoint fails CRC is
//! reset to its last good checkpoint and retried after a bounded
//! exponential backoff measured in *cadence rounds*, with deterministic
//! seeded jitter so two shards failing together do not retry in lockstep.
//! After `max_retries` failed attempts the shard is quarantined: it stops
//! advancing, stays visible (frozen at its last good state) in status,
//! roll-ups, and `scrubctl status`, and never takes the fleet down with
//! it. Quarantine survives daemon restarts via the write-ahead round
//! journal (`wal.rs`).

use std::fmt;

/// Why a shard's round attempt failed — the classes the supervisor
/// distinguishes (and the WAL persists).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureKind {
    /// The round job panicked (caught by `par_try_map_mut`).
    Panic,
    /// The round checkpoint failed envelope validation (CRC/truncation).
    CorruptCheckpoint,
    /// The round job's worker died without producing a result.
    Lost,
    /// Every persisted checkpoint generation was unreadable — recovery
    /// has nothing to resume from (see `RecoveryError::Exhausted`).
    Exhausted,
}

impl FailureKind {
    /// Canonical short code (used in the WAL and status documents).
    pub fn code(self) -> &'static str {
        match self {
            FailureKind::Panic => "panic",
            FailureKind::CorruptCheckpoint => "ckpt",
            FailureKind::Lost => "lost",
            FailureKind::Exhausted => "exhausted",
        }
    }

    /// Parses [`FailureKind::code`].
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "panic" => Ok(FailureKind::Panic),
            "ckpt" => Ok(FailureKind::CorruptCheckpoint),
            "lost" => Ok(FailureKind::Lost),
            "exhausted" => Ok(FailureKind::Exhausted),
            other => Err(format!("unknown failure kind {other:?}")),
        }
    }
}

impl fmt::Display for FailureKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

/// One shard's supervision state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Health {
    /// Advancing normally every round.
    Healthy,
    /// Failed at least once; frozen at its last good checkpoint until the
    /// backoff expires, then retried.
    Retrying {
        /// Failed attempts so far (1 after the first failure).
        attempts: u32,
        /// First round that failed (MTTR is measured from here).
        failed_round: u64,
        /// Fleet round at which the next retry is due.
        next_retry_round: u64,
        /// What the most recent failure was.
        kind: FailureKind,
    },
    /// Retry budget exhausted; the shard no longer advances. The fleet
    /// keeps running without it.
    Quarantined {
        /// Round the quarantine was declared.
        at_round: u64,
        /// The failure class that exhausted the budget.
        kind: FailureKind,
    },
}

impl Health {
    /// Canonical lowercase state name for status documents.
    pub fn name(&self) -> &'static str {
        match self {
            Health::Healthy => "healthy",
            Health::Retrying { .. } => "retrying",
            Health::Quarantined { .. } => "quarantined",
        }
    }

    /// Whether the shard is quarantined.
    pub fn is_quarantined(&self) -> bool {
        matches!(self, Health::Quarantined { .. })
    }

    /// Compact single-token encoding for the WAL:
    /// `H`, `R<attempts>@<failed_round>+<next_retry_round>:<kind>`, or
    /// `Q@<at_round>:<kind>`.
    pub fn encode(&self) -> String {
        match self {
            Health::Healthy => "H".to_string(),
            Health::Retrying {
                attempts,
                failed_round,
                next_retry_round,
                kind,
            } => format!("R{attempts}@{failed_round}+{next_retry_round}:{kind}"),
            Health::Quarantined { at_round, kind } => format!("Q@{at_round}:{kind}"),
        }
    }

    /// Parses [`Health::encode`].
    pub fn decode(s: &str) -> Result<Self, String> {
        if s == "H" {
            return Ok(Health::Healthy);
        }
        let bad = || format!("malformed health token {s:?}");
        if let Some(rest) = s.strip_prefix('R') {
            let (attempts, rest) = rest.split_once('@').ok_or_else(bad)?;
            let (failed, rest) = rest.split_once('+').ok_or_else(bad)?;
            let (next, kind) = rest.split_once(':').ok_or_else(bad)?;
            return Ok(Health::Retrying {
                attempts: attempts.parse().map_err(|_| bad())?,
                failed_round: failed.parse().map_err(|_| bad())?,
                next_retry_round: next.parse().map_err(|_| bad())?,
                kind: FailureKind::parse(kind)?,
            });
        }
        if let Some(rest) = s.strip_prefix("Q@") {
            let (at, kind) = rest.split_once(':').ok_or_else(bad)?;
            return Ok(Health::Quarantined {
                at_round: at.parse().map_err(|_| bad())?,
                kind: FailureKind::parse(kind)?,
            });
        }
        Err(bad())
    }
}

/// Knobs of the supervision layer (the `[supervisor]` config section).
#[derive(Debug, Clone, PartialEq)]
pub struct SupervisorConfig {
    /// Failed attempts before a shard is quarantined.
    pub max_retries: u32,
    /// Backoff after the first failure, in cadence rounds.
    pub backoff_base_rounds: u64,
    /// Backoff ceiling, in cadence rounds (the exponential is clamped).
    pub backoff_cap_rounds: u64,
    /// Upper bound on the deterministic seeded jitter added to each
    /// backoff, in rounds (0 disables jitter).
    pub backoff_jitter_rounds: u64,
    /// Rotated checkpoint generations kept per shard (K ≥ 1).
    pub generations: u32,
    /// A fresh last-good checkpoint is taken every this many rounds.
    pub checkpoint_every_rounds: u64,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        Self {
            max_retries: 3,
            backoff_base_rounds: 1,
            backoff_cap_rounds: 8,
            backoff_jitter_rounds: 1,
            generations: 3,
            checkpoint_every_rounds: 1,
        }
    }
}

/// SplitMix64 finalizer (same constants as the shard-seed derivation):
/// turns `(seed, shard, attempt)` into decorrelated jitter bits.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl SupervisorConfig {
    /// Rounds to wait before retry attempt `attempts` (1-based):
    /// `min(base · 2^(attempts-1), cap)` plus seeded jitter in
    /// `0..=backoff_jitter_rounds`. Deterministic in
    /// `(fleet seed, shard, attempts)`, so a replayed run retries on
    /// exactly the same schedule.
    pub fn backoff_rounds(&self, fleet_seed: u64, shard: u32, attempts: u32) -> u64 {
        let exp = self
            .backoff_base_rounds
            .saturating_mul(1u64 << (attempts.saturating_sub(1)).min(62))
            .min(self.backoff_cap_rounds)
            .max(1);
        let jitter = if self.backoff_jitter_rounds == 0 {
            0
        } else {
            splitmix64(
                fleet_seed ^ 0xBAC0_0FF5_EED0_0000 ^ ((shard as u64) << 32) ^ attempts as u64,
            ) % (self.backoff_jitter_rounds + 1)
        };
        exp + jitter
    }
}

/// Why a shard could not be restored from its persisted checkpoint
/// generations. Typed so a double-fault (every generation corrupt)
/// surfaces as data, never as a panic or a silently re-zeroed shard.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecoveryError {
    /// Every generation was tried and none yielded a valid snapshot.
    /// `tried` lists `(generation, reason)` in walk order.
    Exhausted {
        /// The shard that has no recovery point left.
        shard: u32,
        /// What was wrong with each generation, newest first.
        tried: Vec<(u32, String)>,
    },
}

impl fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecoveryError::Exhausted { shard, tried } => {
                write!(
                    f,
                    "shard {shard}: all {} checkpoint generation(s) exhausted: ",
                    tried.len()
                )?;
                let mut first = true;
                for (gen, why) in tried {
                    if !first {
                        write!(f, "; ")?;
                    }
                    first = false;
                    write!(f, "gen{gen}: {why}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for RecoveryError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn health_tokens_round_trip() {
        let cases = [
            Health::Healthy,
            Health::Retrying {
                attempts: 2,
                failed_round: 5,
                next_retry_round: 9,
                kind: FailureKind::Panic,
            },
            Health::Retrying {
                attempts: 1,
                failed_round: 1,
                next_retry_round: 2,
                kind: FailureKind::CorruptCheckpoint,
            },
            Health::Quarantined {
                at_round: 12,
                kind: FailureKind::Exhausted,
            },
        ];
        for h in cases {
            let tok = h.encode();
            assert_eq!(Health::decode(&tok).expect("decodes"), h, "{tok}");
        }
    }

    #[test]
    fn malformed_health_tokens_rejected() {
        for tok in ["", "X", "R@1:panic", "R2@1:panic", "Q@x:panic", "Q@3:warp"] {
            assert!(Health::decode(tok).is_err(), "{tok:?} should not decode");
        }
    }

    #[test]
    fn backoff_is_bounded_exponential_and_deterministic() {
        let cfg = SupervisorConfig {
            backoff_jitter_rounds: 0,
            ..SupervisorConfig::default()
        };
        assert_eq!(cfg.backoff_rounds(7, 0, 1), 1);
        assert_eq!(cfg.backoff_rounds(7, 0, 2), 2);
        assert_eq!(cfg.backoff_rounds(7, 0, 3), 4);
        assert_eq!(cfg.backoff_rounds(7, 0, 4), 8);
        assert_eq!(cfg.backoff_rounds(7, 0, 10), 8, "clamped at the cap");

        let jittered = SupervisorConfig::default();
        // Deterministic: same inputs, same backoff.
        assert_eq!(
            jittered.backoff_rounds(42, 3, 2),
            jittered.backoff_rounds(42, 3, 2)
        );
        // Jitter never exceeds its bound.
        for shard in 0..16 {
            for attempts in 1..6 {
                let b = jittered.backoff_rounds(42, shard, attempts);
                let base = SupervisorConfig {
                    backoff_jitter_rounds: 0,
                    ..SupervisorConfig::default()
                }
                .backoff_rounds(42, shard, attempts);
                assert!(b >= base && b <= base + jittered.backoff_jitter_rounds);
            }
        }
    }

    #[test]
    fn recovery_error_names_every_generation() {
        let e = RecoveryError::Exhausted {
            shard: 4,
            tried: vec![
                (0, "bad CRC".into()),
                (1, "truncated".into()),
                (2, "missing".into()),
            ],
        };
        let msg = e.to_string();
        assert!(msg.contains("shard 4"), "{msg}");
        assert!(msg.contains("gen0: bad CRC"), "{msg}");
        assert!(msg.contains("gen2: missing"), "{msg}");
    }
}
