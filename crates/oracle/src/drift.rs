//! Semi-analytic drift-error predictions, derived from the device
//! parameters by quadrature that shares *no code* with the simulator's
//! `DriftModel` lookup tables.
//!
//! The probability law is the same by construction (both implement the
//! paper's drift model); every numerical ingredient differs: Gauss–Legendre
//! panels instead of Gauss–Hermite, series/continued-fraction `erfc`
//! instead of a Chebyshev rational, and no precomputed LUTs on the
//! prediction path. Agreement between the two is therefore evidence the
//! physics math is right, not that the same bug was executed twice.

use pcm_model::{DeviceConfig, DriftParams, LevelStack, NoiseParams, SensingMode, Thresholds};

use crate::num::{phi, phi_tail, GaussLegendre};

/// Integration half-width (in σ) for the lognormal-ν expectation.
const NU_Z_MAX: f64 = 9.0;
/// Panels × order for the ν quadrature.
const NU_PANELS: usize = 3;
const NU_ORDER: usize = 20;
/// Integration half-width (in σ_read) for the sensing-noise expectation.
const READ_Z_MAX: f64 = 8.0;
const READ_PANELS: usize = 2;
const READ_ORDER: usize = 12;

/// Oracle drift model: per-level misread probabilities via direct
/// quadrature over the device's written configuration.
///
/// # Examples
///
/// ```
/// use pcm_model::DeviceConfig;
/// use scrub_oracle::DriftOracle;
/// let oracle = DriftOracle::new(&DeviceConfig::default());
/// let sim = DeviceConfig::default().drift_model();
/// let (o, s) = (oracle.p_up(2, 86_400.0), sim.p_up_exact(2, 86_400.0));
/// assert!((o - s).abs() < 1e-6 + 1e-4 * s);
/// ```
#[derive(Debug, Clone)]
pub struct DriftOracle {
    stack: LevelStack,
    noise: NoiseParams,
    thresholds: Thresholds,
    params: DriftParams,
    sensing: SensingMode,
    gl_nu: GaussLegendre,
    gl_read: GaussLegendre,
}

impl DriftOracle {
    /// Builds the oracle for a device configuration.
    pub fn new(dev: &DeviceConfig) -> Self {
        Self {
            stack: dev.stack().clone(),
            noise: *dev.noise(),
            thresholds: dev.thresholds(),
            params: *dev.drift(),
            sensing: dev.sensing(),
            gl_nu: GaussLegendre::new(NU_ORDER),
            gl_read: GaussLegendre::new(READ_ORDER),
        }
    }

    /// Builds the oracle with explicitly overridden drift parameters —
    /// the hook the agreement suite uses to *perturb* the physics and
    /// prove the tripwire fires.
    pub fn with_drift_params(dev: &DeviceConfig, params: DriftParams) -> Self {
        let mut o = Self::new(dev);
        o.params = params;
        o
    }

    /// Number of resistance levels.
    pub fn num_levels(&self) -> usize {
        self.stack.num_levels()
    }

    /// The drift parameters the oracle is predicting under.
    pub fn params(&self) -> &DriftParams {
        &self.params
    }

    /// Median drift exponent of `level` after the global severity scale.
    fn nu_median(&self, level: usize) -> f64 {
        self.stack.level(level).nu_median * self.params.nu_scale
    }

    /// `P(x₀ > c)` under the (possibly verify-truncated) programming
    /// distribution of `level`.
    fn write_tail_above(&self, level: usize, c: f64) -> f64 {
        let mu = self.stack.level(level).log_r;
        let sw = self.noise.sigma_write;
        match self.noise.verify_half_band {
            None => phi_tail((c - mu) / sw),
            Some(h) => {
                if c >= mu + h {
                    0.0
                } else if c <= mu - h {
                    1.0
                } else {
                    let z_top = phi(h / sw);
                    let z_bot = phi(-h / sw);
                    let z_c = phi((c - mu) / sw);
                    ((z_top - z_c) / (z_top - z_bot)).clamp(0.0, 1.0)
                }
            }
        }
    }

    fn write_tail_below(&self, level: usize, c: f64) -> f64 {
        1.0 - self.write_tail_above(level, c)
    }

    /// `E_ν[f(ν)]` for the level's lognormal ν, as a weighted integral over
    /// the standard-normal deviate `z` (ν = ν̄·e^{σz}).
    fn expect_over_nu<F: FnMut(f64) -> f64>(&self, level: usize, mut f: F) -> f64 {
        let med = self.nu_median(level);
        if med <= 0.0 {
            return f(0.0);
        }
        let sigma = self.params.sigma_ln_nu;
        if sigma == 0.0 {
            return f(med);
        }
        self.gl_nu
            .integrate_panels(-NU_Z_MAX, NU_Z_MAX, NU_PANELS, |z| {
                crate::num::normal_pdf(z) * f(med * (sigma * z).exp())
            })
            .clamp(0.0, 1.0)
    }

    /// Age-compensated upward shift of the boundary above `level` (zero
    /// under fixed sensing) — same clamped-median-drift law as the
    /// simulator, recomputed from the raw parameters.
    pub fn boundary_shift(&self, level: usize, t_s: f64) -> f64 {
        if self.sensing == SensingMode::Fixed {
            return 0.0;
        }
        let Some(t_up) = self.thresholds.upper(level) else {
            return 0.0;
        };
        let l = self.params.log_time_factor(t_s);
        let want = self.nu_median(level) * l;
        let upper = self.stack.level(level + 1);
        let upper_center = upper.log_r + upper.nu_median * self.params.nu_scale * l;
        let ceiling = (upper_center - 3.0 * self.noise.sigma_write - t_up).max(0.0);
        want.clamp(0.0, ceiling)
    }

    /// CDF of the *noiseless drifted* resistance of a cell written to
    /// `level`, evaluated at `x` decades after age `t_s`:
    /// `P(x₀ + ν·log₁₀(t/t₀) ≤ x)`.
    ///
    /// The independent counterpart of `DriftModel::drift_cdf`; the KS
    /// agreement test feeds Monte-Carlo cell resistances through this.
    pub fn drift_cdf(&self, level: usize, t_s: f64, x: f64) -> f64 {
        let l = self.params.log_time_factor(t_s);
        self.expect_over_nu(level, |nu| self.write_tail_below(level, x - nu * l))
    }

    /// Persistent up-crossing probability by age `t_s` (noiseless drifted
    /// resistance above the level's possibly age-compensated upper
    /// boundary).
    pub fn p_up(&self, level: usize, t_s: f64) -> f64 {
        let Some(t_up) = self.thresholds.upper(level) else {
            return 0.0;
        };
        let t_up = t_up + self.boundary_shift(level, t_s);
        let l = self.params.log_time_factor(t_s);
        self.expect_over_nu(level, |nu| self.write_tail_above(level, t_up - nu * l))
    }

    /// Persistent down-miss probability at age `t_s`.
    pub fn p_down(&self, level: usize, t_s: f64) -> f64 {
        let Some(t_dn) = self.thresholds.lower(level) else {
            return 0.0;
        };
        let t_dn = t_dn + self.boundary_shift(level - 1, t_s);
        let l = self.params.log_time_factor(t_s);
        self.expect_over_nu(level, |nu| self.write_tail_below(level, t_dn - nu * l))
    }

    /// Total single-read misread probability at age `t_s`, marginalizing
    /// both the drift exponent and the sensing noise.
    pub fn p_misread(&self, level: usize, t_s: f64) -> f64 {
        let t_up = self
            .thresholds
            .upper(level)
            .map(|t| t + self.boundary_shift(level, t_s));
        let t_dn = self
            .thresholds
            .lower(level)
            .map(|t| t + self.boundary_shift(level - 1, t_s));
        let l = self.params.log_time_factor(t_s);
        let sr = self.noise.sigma_read;
        let p = self.expect_over_nu(level, |nu| {
            let shift = nu * l;
            let miss_for_eps = |eps: f64| {
                let up = t_up.map_or(0.0, |t| self.write_tail_above(level, t - shift - eps));
                let dn = t_dn.map_or(0.0, |t| self.write_tail_below(level, t - shift - eps));
                (up + dn).clamp(0.0, 1.0)
            };
            if sr == 0.0 {
                miss_for_eps(0.0)
            } else {
                self.gl_read.integrate_panels(
                    -READ_Z_MAX * sr,
                    READ_Z_MAX * sr,
                    READ_PANELS,
                    |eps| crate::num::normal_pdf(eps / sr) / sr * miss_for_eps(eps),
                )
            }
        });
        p.clamp(0.0, 1.0)
    }

    /// Transient-only misread probability (total minus persistent, floored
    /// at zero) — matches the simulator's decomposition.
    pub fn p_transient(&self, level: usize, t_s: f64) -> f64 {
        (self.p_misread(level, t_s) - self.p_up(level, t_s) - self.p_down(level, t_s)).max(0.0)
    }

    /// Per-cell probability of reading in error at a single probe at age
    /// `t_s` under the simulator's error law: persistent up-crossing, or a
    /// transient draw on a still-alive cell.
    pub fn cell_error_prob(&self, level: usize, t_s: f64) -> f64 {
        let up = self.p_up(level, t_s);
        up + (1.0 - up) * self.p_transient(level, t_s)
    }

    /// Mean per-cell error probability over a uniform level occupancy —
    /// the `q` of the line-level `Bin(cells, q)` error law.
    pub fn mean_cell_error_prob(&self, t_s: f64) -> f64 {
        let n = self.num_levels() as f64;
        (0..self.num_levels())
            .map(|lv| self.cell_error_prob(lv, t_s))
            .sum::<f64>()
            / n
    }

    /// Bounds `(q_lo, q_hi)` on the *simulator's* mean per-cell error
    /// probability, obtained by inflating/deflating each per-level
    /// component by the simulator LUTs' documented interpolation bounds
    /// (`|lut − exact| ≤ 1e-6 + 1e-2·exact` persistent,
    /// `≤ 5e-5 + 8e-2·exact` transient). Agreement tests widen their
    /// acceptance intervals by this model-error band so a pass certifies
    /// the physics while tolerating the simulator's own documented
    /// table error.
    pub fn mean_cell_error_bounds(&self, t_s: f64) -> (f64, f64) {
        let n = self.num_levels() as f64;
        let mut lo = 0.0;
        let mut hi = 0.0;
        for lv in 0..self.num_levels() {
            let up = self.p_up(lv, t_s);
            let tr = self.p_transient(lv, t_s);
            let up_err = 1e-6 + 1e-2 * up;
            let tr_err = 5e-5 + 8e-2 * tr;
            let (up_lo, up_hi) = ((up - up_err).max(0.0), (up + up_err).min(1.0));
            let (tr_lo, tr_hi) = ((tr - tr_err).max(0.0), (tr + tr_err).min(1.0));
            // q = up + (1−up)·tr is monotone increasing in both arguments.
            lo += up_lo + (1.0 - up_lo) * tr_lo;
            hi += up_hi + (1.0 - up_hi) * tr_hi;
        }
        (lo / n, hi / n)
    }
}

/// Per-level error-probability tables sampled from a [`DriftOracle`] on a
/// dense log-age grid, for workloads (like the scrub renewal computation)
/// that need thousands of age lookups.
///
/// This is a *computational device inside the oracle*, not a copy of the
/// simulator's tables: values come from the oracle quadrature, the grid is
/// independently chosen, and [`ErrorRateGrid::max_interp_error`] lets
/// tests measure the interpolation residue directly.
#[derive(Debug, Clone)]
pub struct ErrorRateGrid {
    t0_s: f64,
    l_max: f64,
    step: f64,
    /// Per level: `p_up` then `p_transient` samples over the grid.
    up: Vec<Vec<f64>>,
    tr: Vec<Vec<f64>>,
}

impl ErrorRateGrid {
    /// Samples the oracle over ages `t₀ … max_age_s` at
    /// `points_per_decade` resolution.
    ///
    /// # Panics
    ///
    /// Panics if `max_age_s ≤ t₀` or `points_per_decade == 0`.
    pub fn build(oracle: &DriftOracle, max_age_s: f64, points_per_decade: usize) -> Self {
        let t0 = oracle.params().t0_s;
        assert!(max_age_s > t0, "grid must extend past t0");
        assert!(points_per_decade > 0, "grid needs at least 1 point/decade");
        let l_max = (max_age_s / t0).log10();
        let points = (l_max * points_per_decade as f64).ceil() as usize + 2;
        let step = l_max / (points - 1) as f64;
        let mut up = Vec::with_capacity(oracle.num_levels());
        let mut tr = Vec::with_capacity(oracle.num_levels());
        for lv in 0..oracle.num_levels() {
            let mut u = Vec::with_capacity(points);
            let mut t = Vec::with_capacity(points);
            for i in 0..points {
                let age = t0 * 10f64.powf(step * i as f64);
                u.push(oracle.p_up(lv, age));
                t.push(oracle.p_transient(lv, age));
            }
            up.push(u);
            tr.push(t);
        }
        Self {
            t0_s: t0,
            l_max,
            step,
            up,
            tr,
        }
    }

    fn interp(&self, table: &[f64], t_s: f64) -> f64 {
        let l = if t_s <= self.t0_s {
            0.0
        } else {
            (t_s / self.t0_s).log10()
        };
        assert!(
            l <= self.l_max + 1e-9,
            "age {t_s}s beyond the grid's {l:.2}-decade range"
        );
        let pos = (l / self.step).min((table.len() - 1) as f64);
        let i = (pos as usize).min(table.len() - 2);
        let frac = pos - i as f64;
        table[i] + (table[i + 1] - table[i]) * frac
    }

    /// Interpolated persistent up-crossing probability.
    pub fn p_up(&self, level: usize, t_s: f64) -> f64 {
        self.interp(&self.up[level], t_s)
    }

    /// Interpolated transient misread probability.
    pub fn p_transient(&self, level: usize, t_s: f64) -> f64 {
        self.interp(&self.tr[level], t_s)
    }

    /// Worst interpolation error against direct quadrature, measured at
    /// every grid midpoint of `level` (the linear-interpolation worst
    /// case), as `max |grid − exact| / max(exact, floor)`.
    pub fn max_interp_error(&self, oracle: &DriftOracle, level: usize, floor: f64) -> f64 {
        let mut worst: f64 = 0.0;
        for i in 0..self.up[level].len() - 1 {
            let l = (i as f64 + 0.5) * self.step;
            let age = self.t0_s * 10f64.powf(l);
            for (grid, exact) in [
                (self.p_up(level, age), oracle.p_up(level, age)),
                (self.p_transient(level, age), oracle.p_transient(level, age)),
            ] {
                worst = worst.max((grid - exact).abs() / exact.max(floor));
            }
        }
        worst
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dev() -> DeviceConfig {
        DeviceConfig::default()
    }

    #[test]
    fn oracle_matches_simulator_quadrature() {
        // The keystone unit check: two unrelated numerical derivations of
        // the same law agree to far better than Monte-Carlo resolution.
        let oracle = DriftOracle::new(&dev());
        let sim = dev().drift_model();
        for lv in 0..4 {
            for t in [1.0, 60.0, 3600.0, 86_400.0, 604_800.0] {
                let (o, s) = (oracle.p_up(lv, t), sim.p_up_exact(lv, t));
                assert!(
                    (o - s).abs() <= 1e-9 + 1e-5 * s,
                    "p_up level {lv} t {t}: oracle {o:e} sim {s:e}"
                );
                let (om, sm) = (oracle.p_misread(lv, t), sim.p_misread(lv, t));
                assert!(
                    (om - sm).abs() <= 1e-9 + 1e-4 * sm,
                    "p_misread level {lv} t {t}: oracle {om:e} sim {sm:e}"
                );
            }
        }
    }

    #[test]
    fn drift_cdf_is_a_cdf() {
        let oracle = DriftOracle::new(&dev());
        for lv in 0..4 {
            let mut prev = 0.0;
            for i in 0..60 {
                let x = 2.0 + 0.1 * i as f64;
                let c = oracle.drift_cdf(lv, 3600.0, x);
                assert!((0.0..=1.0).contains(&c));
                assert!(c + 1e-12 >= prev, "CDF not monotone at level {lv} x {x}");
                prev = c;
            }
            // Mass concentrates around the drifted center.
            assert!(oracle.drift_cdf(lv, 3600.0, 8.0) > 0.999_999);
            assert!(oracle.drift_cdf(lv, 3600.0, 1.0) < 1e-9);
        }
    }

    #[test]
    fn cell_error_prob_combines_components() {
        let oracle = DriftOracle::new(&dev());
        let (lv, t) = (2, 86_400.0);
        let q = oracle.cell_error_prob(lv, t);
        let up = oracle.p_up(lv, t);
        assert!(q >= up && q <= up + oracle.p_transient(lv, t) + 1e-12);
    }

    #[test]
    fn mean_bounds_bracket_nominal() {
        let oracle = DriftOracle::new(&dev());
        for t in [60.0, 3600.0, 86_400.0] {
            let q = oracle.mean_cell_error_prob(t);
            let (lo, hi) = oracle.mean_cell_error_bounds(t);
            assert!(lo <= q && q <= hi, "t={t}: {lo:e} <= {q:e} <= {hi:e}");
            assert!(hi < lo * 1.2 + 1e-4, "band implausibly wide at t={t}");
        }
    }

    #[test]
    fn perturbed_params_move_predictions() {
        let nominal = DriftOracle::new(&dev());
        let perturbed =
            DriftOracle::with_drift_params(&dev(), DriftParams::default().with_scale(1.05));
        let (p0, p1) = (
            nominal.mean_cell_error_prob(86_400.0),
            perturbed.mean_cell_error_prob(86_400.0),
        );
        assert!(
            p1 > p0 * 1.1,
            "5% nu perturbation should visibly raise day-old error rates: {p0:e} -> {p1:e}"
        );
    }

    #[test]
    fn grid_tracks_quadrature_tightly() {
        let oracle = DriftOracle::new(&dev());
        let grid = ErrorRateGrid::build(&oracle, 25_000.0, 160);
        for lv in 0..4 {
            let err = grid.max_interp_error(&oracle, lv, 1e-7);
            assert!(err < 5e-3, "level {lv}: grid interp error {err:e}");
        }
    }
}
