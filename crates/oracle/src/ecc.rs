//! Line-level error law and post-ECC uncorrectable-error probability.
//!
//! The simulator assigns each cell a uniform level (multinomial occupancy)
//! and draws per-cell errors independently, so the number of error bits on
//! a line at a single probe is *exactly* `Bin(cells, q̄)` with
//! `q̄ = mean_lv q_lv` (multinomial thinning). Feeding that binomial
//! through the code's deterministic UE marginal
//! ([`pcm_ecc::CodeSpec::p_uncorrectable_given_errors`]) gives the
//! closed-form post-ECC UE probability the agreement suite checks the
//! Monte Carlo against.

use pcm_ecc::CodeSpec;

use crate::num::binom_pmf;

/// Expected error bits on a line of `cells` cells at per-cell error
/// probability `q`.
pub fn expected_errors(cells: u32, q: f64) -> f64 {
    cells as f64 * q
}

/// Pmf of the line error count `e ∈ 0..=max_e` for `Bin(cells, q)`.
///
/// # Examples
///
/// ```
/// let pmf = scrub_oracle::line_error_pmf(288, 0.004, 8);
/// let total: f64 = pmf.iter().sum();
/// assert!(total > 0.99 && total <= 1.0 + 1e-12);
/// ```
pub fn line_error_pmf(cells: u32, q: f64, max_e: u32) -> Vec<f64> {
    (0..=max_e.min(cells))
        .map(|e| binom_pmf(cells as u64, e as u64, q))
        .collect()
}

/// Closed-form probability that a single probe of a line with per-cell
/// error probability `q` decodes to an uncorrectable outcome (detected or
/// miscorrected) under `code`.
///
/// # Examples
///
/// ```
/// use pcm_ecc::CodeSpec;
/// let secded = CodeSpec::secded_line();
/// let bch4 = CodeSpec::bch_line(4);
/// let (s, b) = (
///     scrub_oracle::ue_probability(&secded, 288, 0.01),
///     scrub_oracle::ue_probability(&bch4, 288, 0.01),
/// );
/// assert!(b < s, "BCH-4 must beat SECDED: {b} vs {s}");
/// ```
pub fn ue_probability(code: &CodeSpec, cells: u32, q: f64) -> f64 {
    assert!((0.0..=1.0).contains(&q), "q out of [0,1]: {q}");
    if q == 0.0 {
        return 0.0;
    }
    // Forward pmf recurrence; stop once the remaining upper tail can only
    // contribute below relative epsilon (its UE marginal is <= 1).
    let n = cells as u64;
    let mut pmf = binom_pmf(n, 0, q);
    let mut tail_left = 1.0 - pmf;
    let odds = q / (1.0 - q);
    let mut total = 0.0;
    for e in 0..=cells {
        total += pmf * code.p_uncorrectable_given_errors(e);
        if tail_left < 1e-16 * total.max(1e-300) {
            break;
        }
        let e = e as u64;
        if e >= n {
            break;
        }
        pmf *= (n - e) as f64 * odds / (e + 1) as f64;
        tail_left = (tail_left - pmf).max(0.0);
    }
    total.clamp(0.0, 1.0)
}

/// Independent symbol-occupancy UE marginal: the probability that `errors`
/// distinct bit positions, uniform over `symbols · symbol_bits` positions,
/// occupy more than `t` symbols — i.e. defeat a bounded-distance symbol
/// code (Reed–Solomon).
///
/// Computed by inclusion–exclusion over surjections —
/// `P(M = m) = C(n,m) · Σ_j (−1)^j C(m,j) C((m−j)s, e) / C(ns, e)` —
/// a deliberately *different* formulation from the Markov recurrence in
/// `pcm_ecc::symbol_occupancy_pmf`, so the agreement suite cross-checks
/// two dissimilar derivations of the same law.
pub fn symbol_ue_given_errors(symbols: u32, symbol_bits: u32, t: u32, errors: u32) -> f64 {
    let n = symbols as u64;
    let s = symbol_bits as u64;
    let e = errors as u64;
    if e <= t as u64 {
        return 0.0;
    }
    if e > (t as u64) * s {
        return 1.0;
    }
    let ln_total = crate::num::ln_choose(n * s, e);
    let mut survive = 0.0f64;
    let m_lo = e.div_ceil(s);
    for m in m_lo..=(t as u64).min(e) {
        // Ways to choose e positions inside m fixed symbols hitting all m.
        let mut surj = 0.0f64;
        let mut sign = 1.0;
        for j in 0..=m {
            if (m - j) * s >= e {
                surj += sign
                    * (crate::num::ln_choose(m, j) + crate::num::ln_choose((m - j) * s, e)).exp();
            }
            sign = -sign;
        }
        survive += (crate::num::ln_choose(n, m) - ln_total).exp() * surj.max(0.0);
    }
    (1.0 - survive).clamp(0.0, 1.0)
}

/// Closed-form post-ECC UE probability for a symbol code: the line error
/// count is `Bin(cells, q)` and each count feeds the symbol-occupancy
/// tail [`symbol_ue_given_errors`]. This is the oracle-side twin of
/// [`ue_probability`] over `CodeSpec::rs_line`, built entirely from this
/// crate's own combinatorics.
pub fn symbol_ue_tail(symbols: u32, symbol_bits: u32, t: u32, cells: u32, q: f64) -> f64 {
    assert!((0.0..=1.0).contains(&q), "q out of [0,1]: {q}");
    if q == 0.0 {
        return 0.0;
    }
    let n = cells as u64;
    let mut pmf = binom_pmf(n, 0, q);
    let mut tail_left = 1.0 - pmf;
    let odds = q / (1.0 - q);
    let mut total = 0.0;
    for e in 0..=cells {
        total += pmf * symbol_ue_given_errors(symbols, symbol_bits, t, e);
        if tail_left < 1e-16 * total.max(1e-300) {
            break;
        }
        let e = e as u64;
        if e >= n {
            break;
        }
        pmf *= (n - e) as f64 * odds / (e + 1) as f64;
        tail_left = (tail_left - pmf).max(0.0);
    }
    total.clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ue_probability_zero_cases() {
        let bch4 = CodeSpec::bch_line(4);
        assert_eq!(ue_probability(&bch4, 288, 0.0), 0.0);
        // q so small that even one error is rare: UE ~ P(e >= 5) ~ q^5.
        assert!(ue_probability(&bch4, 288, 1e-9) < 1e-30);
    }

    #[test]
    fn ue_probability_matches_direct_sum() {
        // Independent check against an explicit full summation.
        let secded = CodeSpec::secded_line();
        for &q in &[1e-4, 3e-3, 0.02, 0.3] {
            let direct: f64 = (0..=288u32)
                .map(|e| binom_pmf(288, e as u64, q) * secded.p_uncorrectable_given_errors(e))
                .sum();
            let fast = ue_probability(&secded, 288, q);
            assert!(
                (fast - direct).abs() <= 1e-12 + 1e-10 * direct,
                "q={q}: {fast:e} vs {direct:e}"
            );
        }
    }

    #[test]
    fn stronger_codes_have_lower_ue() {
        let mut prev = 1.0;
        for t in 1..=6 {
            let p = ue_probability(&CodeSpec::bch_line(t), 288, 0.01);
            assert!(p < prev, "BCH-{t} did not improve: {p} vs {prev}");
            prev = p;
        }
    }

    #[test]
    fn ue_probability_monotone_in_q() {
        let bch4 = CodeSpec::bch_line(4);
        let mut prev = 0.0;
        for i in 1..=40 {
            let q = i as f64 * 0.002;
            let p = ue_probability(&bch4, 288, q);
            assert!(p >= prev, "UE not monotone at q={q}");
            prev = p;
        }
        assert!(prev > 0.9, "high q should make UEs near-certain: {prev}");
    }

    /// The inclusion–exclusion occupancy tail must agree with the Markov
    /// recurrence in pcm-ecc — two independent derivations of one law.
    #[test]
    fn symbol_marginal_matches_ecc_recurrence() {
        for (n, s, t) in [(72u32, 8u32, 4u32), (80, 8, 8), (7, 3, 2)] {
            for e in 0..=(t * s + 2).min(n * s) {
                let incl_excl = symbol_ue_given_errors(n, s, t, e);
                let pmf = pcm_ecc::symbol_occupancy_pmf(n, s, e);
                let survive: f64 = pmf[..=(t as usize).min(pmf.len() - 1)].iter().sum();
                let markov = (1.0 - survive).clamp(0.0, 1.0);
                assert!(
                    (incl_excl - markov).abs() < 1e-9,
                    "(n={n},s={s},t={t}) e={e}: {incl_excl} vs {markov}"
                );
            }
        }
    }

    /// The full symbol tail must agree with `ue_probability` over the
    /// equivalent `CodeSpec::rs_line` — and show the RS-vs-BCH trade: at
    /// similar parity, BCH wins on *random* errors (bigger bit budget)
    /// while the symbol code keeps its edge for correlated bursts (covered
    /// by the count-level classify tests in pcm-ecc).
    #[test]
    fn symbol_tail_matches_codespec_path() {
        let rs = CodeSpec::rs_line(72, 64);
        for &q in &[1e-4, 3e-3, 0.02] {
            let direct = ue_probability(&rs, 288, q);
            let tail = symbol_ue_tail(72, 8, 4, 288, q);
            assert!(
                (tail - direct).abs() <= 1e-12 + 1e-9 * direct,
                "q={q}: {tail:e} vs {direct:e}"
            );
        }
        let bch6 = CodeSpec::bch_line(6);
        let (rs_p, bch_p) = (
            ue_probability(&rs, 288, 0.005),
            ue_probability(&bch6, 288, 0.005),
        );
        assert!(
            bch_p < rs_p,
            "random-error regime: BCH-6 must beat RS-4 ({bch_p:e} vs {rs_p:e})"
        );
    }

    #[test]
    fn symbol_tail_monotone_in_q() {
        let mut prev = 0.0;
        for i in 0..=30 {
            let q = i as f64 * 0.003;
            let p = symbol_ue_tail(72, 8, 4, 288, q);
            assert!(p >= prev - 1e-12, "not monotone at q={q}");
            prev = p;
        }
        assert!(prev > 0.9, "high q should make UEs near-certain: {prev}");
    }

    #[test]
    fn pmf_truncation_and_mean() {
        let pmf = line_error_pmf(288, 0.01, 288);
        let mean: f64 = pmf.iter().enumerate().map(|(e, p)| e as f64 * p).sum();
        assert!((mean - expected_errors(288, 0.01)).abs() < 1e-9);
        assert_eq!(line_error_pmf(8, 0.5, 20).len(), 9);
    }
}
