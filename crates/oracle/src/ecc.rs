//! Line-level error law and post-ECC uncorrectable-error probability.
//!
//! The simulator assigns each cell a uniform level (multinomial occupancy)
//! and draws per-cell errors independently, so the number of error bits on
//! a line at a single probe is *exactly* `Bin(cells, q̄)` with
//! `q̄ = mean_lv q_lv` (multinomial thinning). Feeding that binomial
//! through the code's deterministic UE marginal
//! ([`pcm_ecc::CodeSpec::p_uncorrectable_given_errors`]) gives the
//! closed-form post-ECC UE probability the agreement suite checks the
//! Monte Carlo against.

use pcm_ecc::CodeSpec;

use crate::num::binom_pmf;

/// Expected error bits on a line of `cells` cells at per-cell error
/// probability `q`.
pub fn expected_errors(cells: u32, q: f64) -> f64 {
    cells as f64 * q
}

/// Pmf of the line error count `e ∈ 0..=max_e` for `Bin(cells, q)`.
///
/// # Examples
///
/// ```
/// let pmf = scrub_oracle::line_error_pmf(288, 0.004, 8);
/// let total: f64 = pmf.iter().sum();
/// assert!(total > 0.99 && total <= 1.0 + 1e-12);
/// ```
pub fn line_error_pmf(cells: u32, q: f64, max_e: u32) -> Vec<f64> {
    (0..=max_e.min(cells))
        .map(|e| binom_pmf(cells as u64, e as u64, q))
        .collect()
}

/// Closed-form probability that a single probe of a line with per-cell
/// error probability `q` decodes to an uncorrectable outcome (detected or
/// miscorrected) under `code`.
///
/// # Examples
///
/// ```
/// use pcm_ecc::CodeSpec;
/// let secded = CodeSpec::secded_line();
/// let bch4 = CodeSpec::bch_line(4);
/// let (s, b) = (
///     scrub_oracle::ue_probability(&secded, 288, 0.01),
///     scrub_oracle::ue_probability(&bch4, 288, 0.01),
/// );
/// assert!(b < s, "BCH-4 must beat SECDED: {b} vs {s}");
/// ```
pub fn ue_probability(code: &CodeSpec, cells: u32, q: f64) -> f64 {
    assert!((0.0..=1.0).contains(&q), "q out of [0,1]: {q}");
    if q == 0.0 {
        return 0.0;
    }
    // Forward pmf recurrence; stop once the remaining upper tail can only
    // contribute below relative epsilon (its UE marginal is <= 1).
    let n = cells as u64;
    let mut pmf = binom_pmf(n, 0, q);
    let mut tail_left = 1.0 - pmf;
    let odds = q / (1.0 - q);
    let mut total = 0.0;
    for e in 0..=cells {
        total += pmf * code.p_uncorrectable_given_errors(e);
        if tail_left < 1e-16 * total.max(1e-300) {
            break;
        }
        let e = e as u64;
        if e >= n {
            break;
        }
        pmf *= (n - e) as f64 * odds / (e + 1) as f64;
        tail_left = (tail_left - pmf).max(0.0);
    }
    total.clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ue_probability_zero_cases() {
        let bch4 = CodeSpec::bch_line(4);
        assert_eq!(ue_probability(&bch4, 288, 0.0), 0.0);
        // q so small that even one error is rare: UE ~ P(e >= 5) ~ q^5.
        assert!(ue_probability(&bch4, 288, 1e-9) < 1e-30);
    }

    #[test]
    fn ue_probability_matches_direct_sum() {
        // Independent check against an explicit full summation.
        let secded = CodeSpec::secded_line();
        for &q in &[1e-4, 3e-3, 0.02, 0.3] {
            let direct: f64 = (0..=288u32)
                .map(|e| binom_pmf(288, e as u64, q) * secded.p_uncorrectable_given_errors(e))
                .sum();
            let fast = ue_probability(&secded, 288, q);
            assert!(
                (fast - direct).abs() <= 1e-12 + 1e-10 * direct,
                "q={q}: {fast:e} vs {direct:e}"
            );
        }
    }

    #[test]
    fn stronger_codes_have_lower_ue() {
        let mut prev = 1.0;
        for t in 1..=6 {
            let p = ue_probability(&CodeSpec::bch_line(t), 288, 0.01);
            assert!(p < prev, "BCH-{t} did not improve: {p} vs {prev}");
            prev = p;
        }
    }

    #[test]
    fn ue_probability_monotone_in_q() {
        let bch4 = CodeSpec::bch_line(4);
        let mut prev = 0.0;
        for i in 1..=40 {
            let q = i as f64 * 0.002;
            let p = ue_probability(&bch4, 288, q);
            assert!(p >= prev, "UE not monotone at q={q}");
            prev = p;
        }
        assert!(prev > 0.9, "high q should make UEs near-certain: {prev}");
    }

    #[test]
    fn pmf_truncation_and_mean() {
        let pmf = line_error_pmf(288, 0.01, 288);
        let mean: f64 = pmf.iter().enumerate().map(|(e, p)| e as f64 * p).sum();
        assert!((mean - expected_errors(288, 0.01)).abs() < 1e-9);
        assert_eq!(line_error_pmf(8, 0.5, 20).len(), 9);
    }
}
