//! Analytical oracle for the scrub simulator.
//!
//! This crate computes, in closed form or by numerical quadrature,
//! quantities the Monte Carlo simulator estimates stochastically:
//!
//! - **Per-cell misread probability** from the drift model
//!   ([`DriftOracle`]), using its own quadrature and special-function
//!   implementations — Gauss–Legendre panels, a series/continued-fraction
//!   `erfc` — deliberately *independent* of the Chebyshev/Gauss–Hermite
//!   machinery and lookup tables inside `pcm-model`, so the agreement
//!   suite cross-checks two dissimilar numerical paths.
//! - **Line-level RBER → post-ECC UE probability** for SECDED, BCH-t, and
//!   Reed–Solomon symbol codes ([`ue_probability`]), via exact binomial
//!   tails through the code's combinatorial UE marginal; the symbol-level
//!   tails also have an independent inclusion–exclusion derivation
//!   ([`symbol_ue_tail`]) the agreement suite cross-checks against the
//!   Markov recurrence in `pcm-ecc`.
//! - **Expected scrub writes and energy** for the basic policy
//!   ([`BasicScrubOracle`]), via an exact per-line renewal dynamic
//!   program on the engine's replicated probe schedule.
//!
//! The statistical tests that compare these predictions against simulator
//! runs live in `pcm-analysis` (`infer` module) and `tests/
//! oracle_agreement.rs` at the workspace root.

mod drift;
mod ecc;
pub mod num;
mod scrub;

pub use drift::{DriftOracle, ErrorRateGrid};
pub use ecc::{
    expected_errors, line_error_pmf, symbol_ue_given_errors, symbol_ue_tail, ue_probability,
};
pub use scrub::{BasicScrubOracle, ScrubPrediction};
