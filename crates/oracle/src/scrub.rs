//! Closed-form expected scrub writes and energy for the basic policy.
//!
//! Basic scrub probes line `k` at engine slots `j ≡ k (mod N)` and rewrites
//! on *any* error (uncorrectable outcomes force the same write), so each
//! line is an independent renewal process: a write-back resets the line,
//! after which the probability of surviving `s` further probes is
//! `ū(s)^cells` with `ū` the mean per-cell survival — exactly the
//! probability-generating function of the simulator's multinomial
//! occupancy, so the line-level law is closed-form, not an approximation.
//! A small dynamic program over (probes-since-write, write-count) yields
//! the full per-line write-back distribution; lines are independent, so
//! totals get exact means and variances.
//!
//! Probe times come from [`scrub_core::BasicScrub::slot_times_within`],
//! which replicates the engine's floating-point slot accumulation — probe
//! counts are exact, not ±1.

use pcm_ecc::CodeSpec;
use pcm_model::DeviceConfig;
use scrub_core::BasicScrub;

use crate::drift::{DriftOracle, ErrorRateGrid};

/// Age-grid resolution for the renewal computation. The grid is sampled
/// from the oracle quadrature; at 160 points/decade its midpoint
/// interpolation error is well under the statistical resolution of any
/// feasible Monte-Carlo comparison (see `ErrorRateGrid::max_interp_error`).
const GRID_POINTS_PER_DECADE: usize = 160;

/// Oracle prediction for one basic-scrub run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScrubPrediction {
    /// Exact number of scrub probes the engine will issue.
    pub probes: u64,
    /// Expected total scrub write-backs.
    pub writebacks_mean: f64,
    /// Standard deviation of total write-backs (lines independent).
    pub writebacks_sd: f64,
    /// Expected scrub energy (µJ): probes are deterministic, writes carry
    /// all the variance.
    pub scrub_energy_uj_mean: f64,
    /// Standard deviation of scrub energy (µJ).
    pub scrub_energy_uj_sd: f64,
}

/// Closed-form model of `BasicScrub` driven by a [`DriftOracle`].
///
/// # Examples
///
/// ```
/// use pcm_ecc::CodeSpec;
/// use pcm_model::DeviceConfig;
/// use scrub_oracle::{BasicScrubOracle, DriftOracle};
/// let dev = DeviceConfig::default();
/// let oracle = DriftOracle::new(&dev);
/// let model = BasicScrubOracle::new(&dev, &CodeSpec::bch_line(4), &oracle, 64, 900.0, 3600.0);
/// let pred = model.predict();
/// assert_eq!(pred.probes, 257); // slots at t = 0, 14.0625, ..., 3600
/// assert!(pred.writebacks_mean >= 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct BasicScrubOracle {
    grid: ErrorRateGrid,
    levels: usize,
    cells: u32,
    num_lines: u32,
    interval_s: f64,
    horizon_s: f64,
    probe_pj: f64,
    write_pj: f64,
}

impl BasicScrubOracle {
    /// Builds the model for `num_lines` lines scrubbed once per
    /// `interval_s` over `horizon_s` seconds, with the memory's default
    /// full-decode probes.
    ///
    /// # Panics
    ///
    /// Panics if the geometry or interval is degenerate.
    pub fn new(
        dev: &DeviceConfig,
        code: &CodeSpec,
        oracle: &DriftOracle,
        num_lines: u32,
        interval_s: f64,
        horizon_s: f64,
    ) -> Self {
        Self::with_grid_resolution(
            dev,
            code,
            oracle,
            num_lines,
            interval_s,
            horizon_s,
            GRID_POINTS_PER_DECADE,
        )
    }

    /// [`BasicScrubOracle::new`] with an explicit age-grid resolution.
    ///
    /// The grid build dominates construction cost (each sample is a fresh
    /// quadrature), and build time is linear in the resolution while the
    /// interpolation error falls quadratically: 40 points/decade stays
    /// under ~2e-3 relative error — ample for a tolerance in the percent
    /// range — at a quarter of the default's cost. Callers can verify the
    /// trade with [`ErrorRateGrid::max_interp_error`].
    ///
    /// # Panics
    ///
    /// Panics if the geometry, interval, or resolution is degenerate.
    pub fn with_grid_resolution(
        dev: &DeviceConfig,
        code: &CodeSpec,
        oracle: &DriftOracle,
        num_lines: u32,
        interval_s: f64,
        horizon_s: f64,
        points_per_decade: usize,
    ) -> Self {
        assert!(num_lines > 0 && interval_s > 0.0 && horizon_s >= 0.0);
        let bits_per_cell = dev.stack().bits_per_cell();
        let cells = code.total_bits().div_ceil(bits_per_cell);
        let e = dev.energy();
        let mlc = bits_per_cell > 1;
        let max_age = horizon_s.max(interval_s) * 1.01 + interval_s + oracle.params().t0_s;
        Self {
            grid: ErrorRateGrid::build(oracle, max_age, points_per_decade),
            levels: oracle.num_levels(),
            cells,
            num_lines,
            interval_s,
            horizon_s,
            probe_pj: e.line_read_pj(code.total_bits()) + e.decode_pj(code.guaranteed_t()),
            write_pj: e.line_write_pj(code.total_bits(), mlc) + e.encode_pj,
        }
    }

    /// Energy of one scrub probe (line read + full decode), in µJ —
    /// mirrors the simulator's `scrub_probe` ledger entry.
    pub fn probe_energy_uj(&self) -> f64 {
        self.probe_pj / 1e6
    }

    /// Energy of one scrub write-back (line write + encode), in µJ.
    pub fn writeback_energy_uj(&self) -> f64 {
        self.write_pj / 1e6
    }

    /// Mean per-cell survival `ū` through a probe sequence at `ages` since
    /// the epoch's write: no persistent crossing by the last age and no
    /// transient at any probe. Returns the running `ū` after each probe.
    fn survival_profile(&self, ages: &[f64]) -> Vec<f64> {
        let mut profile = Vec::with_capacity(ages.len());
        let mut tr_prod = vec![1.0f64; self.levels];
        for &age in ages {
            let mut sum = 0.0;
            for (lv, tp) in tr_prod.iter_mut().enumerate() {
                *tp *= 1.0 - self.grid.p_transient(lv, age);
                sum += (1.0 - self.grid.p_up(lv, age)) * *tp;
            }
            profile.push(sum / self.levels as f64);
        }
        profile
    }

    /// Per-probe line hazards `h(r) = 1 − (ū(r)/ū(r−1))^cells` from a
    /// survival profile.
    fn hazards(&self, profile: &[f64]) -> Vec<f64> {
        let n = self.cells as i32;
        let mut hazards = Vec::with_capacity(profile.len());
        let mut prev = 1.0f64;
        for &u in profile {
            let ratio = if prev > 0.0 { (u / prev).min(1.0) } else { 1.0 };
            hazards.push(1.0 - ratio.powi(n));
            prev = u;
        }
        hazards
    }

    /// Predicts probes, write-backs, and energy for the configured run.
    pub fn predict(&self) -> ScrubPrediction {
        let policy = BasicScrub::new(self.interval_s, self.num_lines);
        let slots = policy.slot_times_within(self.horizon_s);
        let probes = slots.len() as u64;

        // Per-line probe times (line k owns slots j ≡ k mod N).
        let mut per_line: Vec<Vec<f64>> = vec![Vec::new(); self.num_lines as usize];
        for (j, &t) in slots.iter().enumerate() {
            per_line[j % self.num_lines as usize].push(t);
        }
        let m_max = per_line.iter().map(Vec::len).max().unwrap_or(0);

        // Post-write-back epochs are the same for every line: the s-th
        // probe after a write lands (up to ~1e-9 s of engine float noise)
        // exactly s intervals later.
        let post_ages: Vec<f64> = (1..=m_max).map(|s| s as f64 * self.interval_s).collect();
        let post_hazards = self.hazards(&self.survival_profile(&post_ages));

        let mut wb_mean = 0.0;
        let mut wb_var = 0.0;
        for times in &per_line {
            if times.is_empty() {
                continue;
            }
            // Initial epoch: the line was written at t = 0, so absolute
            // probe times are its ages.
            let init_hazards = self.hazards(&self.survival_profile(times));
            let (mean, var) = line_writeback_moments(&init_hazards, &post_hazards);
            wb_mean += mean;
            wb_var += var;
        }

        let wb_sd = wb_var.sqrt();
        ScrubPrediction {
            probes,
            writebacks_mean: wb_mean,
            writebacks_sd: wb_sd,
            scrub_energy_uj_mean: (probes as f64 * self.probe_pj + wb_mean * self.write_pj) / 1e6,
            scrub_energy_uj_sd: wb_sd * self.write_pj / 1e6,
        }
    }
}

/// Exact per-line write-back distribution moments by dynamic programming
/// over (epoch state, write count).
///
/// State space: `Init` (never written back; hazard from `init_hazards`) or
/// `s` = probes survived since the last write-back (hazard
/// `post_hazards[s]` at the next probe). Any error ⇒ write-back ⇒ state 0.
fn line_writeback_moments(init_hazards: &[f64], post_hazards: &[f64]) -> (f64, f64) {
    let m = init_hazards.len();
    // mass[w] for the Init state; post[s][w] for post-write-back states.
    let mut init_mass = vec![0.0f64; m + 1];
    init_mass[0] = 1.0;
    let mut post: Vec<Vec<f64>> = vec![vec![0.0; m + 1]; m + 1];
    for (r, &g) in init_hazards.iter().enumerate() {
        let mut wrote = vec![0.0f64; m + 1];
        // Post states probe with hazard indexed by their new epoch length.
        for s in (0..r).rev() {
            let h = post_hazards[s];
            for w in 0..=m {
                let mass = post[s][w];
                if mass == 0.0 {
                    continue;
                }
                post[s][w] = 0.0;
                if w < m {
                    wrote[w + 1] += mass * h;
                }
                post[s + 1][w] += mass * (1.0 - h);
            }
        }
        // The Init state probes with its own age-dependent hazard.
        for w in 0..=m {
            let mass = init_mass[w];
            if mass == 0.0 {
                continue;
            }
            if w < m {
                wrote[w + 1] += mass * g;
            }
            init_mass[w] = mass * (1.0 - g);
        }
        for (w, &mass) in wrote.iter().enumerate() {
            post[0][w] += mass;
        }
    }
    // Collapse to the write-count distribution.
    let mut dist = init_mass;
    for row in &post {
        for (w, &mass) in row.iter().enumerate() {
            dist[w] += mass;
        }
    }
    let mut mean = 0.0;
    let mut second = 0.0;
    for (w, &p) in dist.iter().enumerate() {
        mean += w as f64 * p;
        second += (w * w) as f64 * p;
    }
    (mean, (second - mean * mean).max(0.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(horizon_s: f64) -> ScrubPrediction {
        let dev = DeviceConfig::default();
        let oracle = DriftOracle::new(&dev);
        BasicScrubOracle::new(&dev, &CodeSpec::bch_line(4), &oracle, 32, 900.0, horizon_s).predict()
    }

    #[test]
    fn probe_count_matches_policy_hook() {
        let pred = setup(7200.0);
        let policy = BasicScrub::new(900.0, 32);
        assert_eq!(pred.probes, policy.expected_probes_within(7200.0));
    }

    #[test]
    fn writebacks_grow_with_horizon() {
        let short = setup(3600.0);
        let long = setup(14_400.0);
        assert!(long.writebacks_mean > short.writebacks_mean);
        assert!(long.scrub_energy_uj_mean > short.scrub_energy_uj_mean);
        assert!(short.writebacks_sd >= 0.0);
    }

    #[test]
    fn zero_drift_means_almost_no_writebacks() {
        use pcm_model::DriftParams;
        let dev = DeviceConfig::default();
        let frozen = DriftOracle::with_drift_params(&dev, DriftParams::default().with_scale(0.0));
        let pred = BasicScrubOracle::new(&dev, &CodeSpec::bch_line(4), &frozen, 32, 900.0, 7200.0)
            .predict();
        // Only programming-noise tail mass and transients remain.
        assert!(
            pred.writebacks_mean < 0.5,
            "frozen drift still predicts {} writebacks",
            pred.writebacks_mean
        );
    }

    /// The DP against a hand-computable case: constant hazard h per probe
    /// makes the write count Binomial(m, h).
    #[test]
    fn dp_reduces_to_binomial_under_constant_hazard() {
        let m = 12;
        let h = 0.3;
        let (mean, var) = line_writeback_moments(&vec![h; m], &vec![h; m]);
        assert!((mean - m as f64 * h).abs() < 1e-12, "mean {mean}");
        assert!((var - m as f64 * h * (1.0 - h)).abs() < 1e-12, "var {var}");
    }

    #[test]
    fn dp_handles_empty_schedule() {
        let (mean, var) = line_writeback_moments(&[], &[]);
        assert_eq!((mean, var), (0.0, 0.0));
    }
}
