//! Independent numerical substrate for the oracle.
//!
//! Everything here is deliberately implemented with *different algorithms*
//! than `pcm_model::math` so the oracle constitutes an independent check:
//! `erfc` uses a power series plus a Lentz continued fraction (vs the
//! simulator's Chebyshev-fitted rational), expectations use Gauss–Legendre
//! panels (vs Gauss–Hermite), and `ln Γ` uses the Lanczos approximation.
//! Shared bugs between the simulator and the oracle would require the same
//! mistake in two unrelated derivations.

use std::f64::consts::PI;

/// `erfc(x)` via the confluent power series for small `|x|` and the
/// Laplace continued fraction (modified Lentz evaluation) for large `|x|`.
///
/// Relative error is near machine precision over the whole real line —
/// two orders tighter than the simulator's rational approximation, so a
/// disagreement between the two is attributable to the simulator side.
///
/// # Examples
///
/// ```
/// let e = scrub_oracle::num::erfc(1.0);
/// assert!((e - 0.157_299_207_050_285_13).abs() < 1e-14);
/// ```
pub fn erfc(x: f64) -> f64 {
    if x < 0.0 {
        return 2.0 - erfc(-x);
    }
    if x < 2.5 {
        // erf(x) = (2x/√π)·e^{−x²}·Σ_{n≥0} (2x²)ⁿ / (1·3·…·(2n+1)):
        // all-positive terms, no cancellation.
        let xx = x * x;
        let mut term = 1.0;
        let mut sum = 1.0;
        let mut n = 1.0f64;
        while term > 1e-18 * sum {
            term *= 2.0 * xx / (2.0 * n + 1.0);
            sum += term;
            n += 1.0;
        }
        let erf = 2.0 * x / PI.sqrt() * (-xx).exp() * sum;
        1.0 - erf
    } else {
        // erfc(x)·√π·e^{x²} = 1/(x + (1/2)/(x + 1/(x + (3/2)/(x + …)))):
        // partial numerators a_n = n/2, denominators b_n = x.
        let tiny = 1e-300;
        let mut f = x;
        let mut c = f;
        let mut d = 0.0;
        for n in 1..200 {
            let a = n as f64 / 2.0;
            d = x + a * d;
            if d.abs() < tiny {
                d = tiny;
            }
            c = x + a / c;
            if c.abs() < tiny {
                c = tiny;
            }
            d = 1.0 / d;
            let delta = c * d;
            f *= delta;
            if (delta - 1.0).abs() < 1e-16 {
                break;
            }
        }
        (-x * x).exp() / (PI.sqrt() * f)
    }
}

/// Standard normal CDF `Φ(x)`.
pub fn phi(x: f64) -> f64 {
    0.5 * erfc(-x * std::f64::consts::FRAC_1_SQRT_2)
}

/// Standard normal upper tail `Q(x) = 1 − Φ(x)`, with full relative
/// accuracy deep in the tail.
pub fn phi_tail(x: f64) -> f64 {
    0.5 * erfc(x * std::f64::consts::FRAC_1_SQRT_2)
}

/// Standard normal density `φ(x)`.
pub fn normal_pdf(x: f64) -> f64 {
    (-0.5 * x * x).exp() / (2.0 * PI).sqrt()
}

/// Gauss–Legendre quadrature rule on `[−1, 1]`.
///
/// Nodes are Legendre-polynomial roots found by Newton iteration; the rule
/// integrates polynomials up to degree `2n − 1` exactly. Smooth integrands
/// over finite panels converge spectrally — a different (and here, finite-
/// interval) quadrature family than the simulator's Gauss–Hermite.
///
/// # Examples
///
/// ```
/// let gl = scrub_oracle::num::GaussLegendre::new(16);
/// let third = gl.integrate(0.0, 1.0, |x| x * x);
/// assert!((third - 1.0 / 3.0).abs() < 1e-14);
/// ```
#[derive(Debug, Clone)]
pub struct GaussLegendre {
    nodes: Vec<f64>,
    weights: Vec<f64>,
}

impl GaussLegendre {
    /// Builds the `n`-point rule.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "Gauss-Legendre order must be positive");
        let mut nodes = vec![0.0; n];
        let mut weights = vec![0.0; n];
        let m = n.div_ceil(2);
        for i in 0..m {
            // Chebyshev-based starting guess for the i-th root.
            let mut z = (PI * (i as f64 + 0.75) / (n as f64 + 0.5)).cos();
            let mut pp = 0.0;
            for _ in 0..100 {
                // Evaluate P_n(z) and its derivative by upward recurrence.
                let mut p1 = 1.0;
                let mut p2 = 0.0;
                for j in 1..=n {
                    let p3 = p2;
                    p2 = p1;
                    p1 = ((2 * j - 1) as f64 * z * p2 - (j - 1) as f64 * p3) / j as f64;
                }
                pp = n as f64 * (z * p1 - p2) / (z * z - 1.0);
                let dz = p1 / pp;
                z -= dz;
                if dz.abs() < 1e-15 {
                    break;
                }
            }
            nodes[i] = -z;
            nodes[n - 1 - i] = z;
            let w = 2.0 / ((1.0 - z * z) * pp * pp);
            weights[i] = w;
            weights[n - 1 - i] = w;
        }
        Self { nodes, weights }
    }

    /// `∫ₐᵇ f(x) dx` with the rule mapped onto `[a, b]`.
    pub fn integrate<F: FnMut(f64) -> f64>(&self, a: f64, b: f64, mut f: F) -> f64 {
        let mid = 0.5 * (a + b);
        let half = 0.5 * (b - a);
        let mut sum = 0.0;
        for (&x, &w) in self.nodes.iter().zip(&self.weights) {
            sum += w * f(mid + half * x);
        }
        sum * half
    }

    /// `∫ₐᵇ f(x) dx` over `panels` equal subintervals (composite rule):
    /// robust when the integrand is sharply peaked inside `[a, b]`.
    pub fn integrate_panels<F: FnMut(f64) -> f64>(
        &self,
        a: f64,
        b: f64,
        panels: usize,
        mut f: F,
    ) -> f64 {
        let step = (b - a) / panels as f64;
        let mut sum = 0.0;
        for k in 0..panels {
            let lo = a + k as f64 * step;
            sum += self.integrate(lo, lo + step, &mut f);
        }
        sum
    }
}

/// `ln Γ(z)` via the 9-term Lanczos approximation (g = 7), with the
/// reflection formula for `z < 0.5`. Absolute error below 1e-13 for the
/// factorial-range arguments used here.
///
/// # Examples
///
/// ```
/// let lg = scrub_oracle::num::ln_gamma(5.0); // Γ(5) = 24
/// assert!((lg - 24f64.ln()).abs() < 1e-12);
/// ```
// Canonical Lanczos coefficients, kept digit-for-digit as published.
#[allow(clippy::excessive_precision)]
pub fn ln_gamma(z: f64) -> f64 {
    const G: [f64; 9] = [
        0.999_999_999_999_809_93,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_13,
        -176.615_029_162_140_59,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_571_6e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if z < 0.5 {
        // Reflection: Γ(z)Γ(1−z) = π/sin(πz).
        return (PI / (PI * z).sin()).ln() - ln_gamma(1.0 - z);
    }
    let z = z - 1.0;
    let mut acc = G[0];
    for (i, &g) in G.iter().enumerate().skip(1) {
        acc += g / (z + i as f64);
    }
    let t = z + 7.5;
    0.5 * (2.0 * PI).ln() + (z + 0.5) * t.ln() - t + acc.ln()
}

/// `ln C(n, k)`.
///
/// # Panics
///
/// Panics if `k > n`.
pub fn ln_choose(n: u64, k: u64) -> f64 {
    assert!(k <= n, "ln_choose({n}, {k}) out of range");
    ln_gamma(n as f64 + 1.0) - ln_gamma(k as f64 + 1.0) - ln_gamma((n - k) as f64 + 1.0)
}

/// Binomial pmf `P(X = k)` for `X ~ Bin(n, p)`, computed in log space so
/// deep-tail masses keep relative accuracy.
pub fn binom_pmf(n: u64, k: u64, p: f64) -> f64 {
    assert!((0.0..=1.0).contains(&p), "p out of [0,1]: {p}");
    if k > n {
        return 0.0;
    }
    if p == 0.0 {
        return if k == 0 { 1.0 } else { 0.0 };
    }
    if p == 1.0 {
        return if k == n { 1.0 } else { 0.0 };
    }
    (ln_choose(n, k) + k as f64 * p.ln() + (n - k) as f64 * (1.0 - p).ln()).exp()
}

/// Upper binomial tail `P(X ≥ k)` by forward summation of pmf terms
/// (all positive, so no catastrophic cancellation even when the tail is
/// ~1e-300).
pub fn binom_tail_ge(n: u64, k: u64, p: f64) -> f64 {
    if k == 0 {
        return 1.0;
    }
    if k > n || p == 0.0 {
        return 0.0;
    }
    let mut term = binom_pmf(n, k, p);
    let mut sum = term;
    let odds = p / (1.0 - p);
    for i in k..n {
        term *= (n - i) as f64 * odds / (i + 1) as f64;
        sum += term;
        if term < sum * 1e-17 {
            break;
        }
    }
    sum.min(1.0)
}

/// Lower binomial tail `P(X ≤ k)` by downward summation from `k`.
pub fn binom_tail_le(n: u64, k: u64, p: f64) -> f64 {
    if k >= n {
        return 1.0;
    }
    if p == 1.0 {
        return 0.0;
    }
    let mut term = binom_pmf(n, k, p);
    let mut sum = term;
    let inv_odds = (1.0 - p) / p.max(f64::MIN_POSITIVE);
    for i in (1..=k).rev() {
        term *= i as f64 * inv_odds / (n - i + 1) as f64;
        sum += term;
        if term < sum * 1e-17 {
            break;
        }
    }
    sum.min(1.0)
}

#[cfg(test)]
mod tests {
    // Reference values carry full printed precision.
    #![allow(clippy::excessive_precision)]

    use super::*;

    #[test]
    fn erfc_reference_values() {
        // High-precision references. The power series loses a few digits
        // to cancellation near the series/CF hand-off (x ~ 2), so require
        // 1e-11 relative — still far tighter than any oracle tolerance.
        let cases = [
            (0.0, 1.0),
            (0.5, 0.479_500_122_186_953_46),
            (1.0, 0.157_299_207_050_285_13),
            (2.0, 4.677_734_981_063_127e-3),
            (3.0, 2.209_049_699_858_544e-5),
            (5.0, 1.537_459_794_428_034_9e-12),
            (8.0, 1.122_429_717_298_292_8e-29),
        ];
        for (x, want) in cases {
            let got = erfc(x);
            let rel = if want == 0.0 {
                got.abs()
            } else {
                ((got - want) / want).abs()
            };
            assert!(rel < 1e-11, "erfc({x}) = {got:e}, want {want:e}");
        }
    }

    #[test]
    fn erfc_symmetry_and_range() {
        for i in 0..160 {
            let x = -4.0 + 0.05 * i as f64;
            let s = erfc(x) + erfc(-x);
            assert!((s - 2.0).abs() < 1e-14, "erfc symmetry at {x}: {s}");
            assert!((0.0..=2.0).contains(&erfc(x)));
        }
    }

    #[test]
    fn erfc_branch_seam_is_smooth() {
        // Series and continued fraction must agree where they meet.
        for x in [2.499, 2.4999, 2.5, 2.5001, 2.501] {
            let s = erfc(x);
            // Compare against the CF evaluated slightly differently: the
            // midpoint finite difference of neighbors brackets the value.
            let lo = erfc(x + 1e-9);
            let hi = erfc(x - 1e-9);
            assert!(lo <= s && s <= hi, "seam roughness at {x}");
        }
    }

    #[test]
    fn phi_tail_deep_values() {
        let q6 = phi_tail(6.0);
        assert!(
            (q6 - 9.865_876_450_376_946e-10).abs() / q6 < 1e-12,
            "{q6:e}"
        );
        let q8 = phi_tail(8.0);
        assert!(
            (q8 - 6.220_960_574_271_786e-16).abs() / q8 < 1e-12,
            "{q8:e}"
        );
    }

    #[test]
    fn gauss_legendre_polynomial_exactness() {
        let gl = GaussLegendre::new(8);
        // Degree-15 polynomial integrated exactly by an 8-point rule.
        let got = gl.integrate(-1.0, 1.0, |x| x.powi(14) + 3.0 * x.powi(7));
        assert!((got - 2.0 / 15.0).abs() < 1e-14, "{got}");
    }

    #[test]
    fn gauss_legendre_gaussian_mass() {
        let gl = GaussLegendre::new(24);
        let mass = gl.integrate_panels(-9.0, 9.0, 6, normal_pdf);
        assert!((mass - 1.0).abs() < 1e-13, "normal mass = {mass}");
    }

    #[test]
    fn ln_gamma_factorials() {
        let mut fact = 1.0f64;
        for n in 1..20u64 {
            fact *= n as f64;
            let got = ln_gamma(n as f64 + 1.0);
            assert!((got - fact.ln()).abs() < 1e-11, "ln {n}! = {got}");
        }
    }

    #[test]
    fn ln_choose_small_cases() {
        assert!((ln_choose(10, 3) - 120f64.ln()).abs() < 1e-12);
        assert!((ln_choose(576, 2) - 165_600f64.ln()).abs() < 1e-10);
        assert_eq!(ln_choose(7, 0), 0.0);
    }

    #[test]
    fn binomial_pmf_normalizes() {
        for &(n, p) in &[(10u64, 0.3), (288, 0.004), (576, 0.5)] {
            let total: f64 = (0..=n).map(|k| binom_pmf(n, k, p)).sum();
            assert!((total - 1.0).abs() < 1e-12, "n={n} p={p}: {total}");
        }
    }

    #[test]
    fn binomial_tails_match_reference() {
        // P(X >= 3) for Bin(10, 1/2) = 1 - 56/1024.
        let got = binom_tail_ge(10, 3, 0.5);
        assert!((got - (1.0 - 56.0 / 1024.0)).abs() < 1e-14, "{got}");
        // Complementarity.
        for k in 0..=12u64 {
            let s = binom_tail_ge(12, k + 1, 0.2) + binom_tail_le(12, k, 0.2);
            assert!((s - 1.0).abs() < 1e-12, "k={k}: {s}");
        }
    }

    #[test]
    fn binomial_deep_tail_keeps_relative_accuracy() {
        // P(X >= 5) for Bin(288, 1e-6): leading term C(288,5)·p^5 ≈ 1.6e-21.
        let p = binom_tail_ge(288, 5, 1e-6);
        let lead = (ln_choose(288, 5) + 5.0 * (1e-6f64).ln()).exp();
        assert!(
            p > 0.99 * lead && p < 1.01 * lead,
            "p = {p:e}, lead {lead:e}"
        );
    }

    #[test]
    fn binomial_edge_probabilities() {
        assert_eq!(binom_pmf(5, 0, 0.0), 1.0);
        assert_eq!(binom_pmf(5, 5, 1.0), 1.0);
        assert_eq!(binom_tail_ge(5, 6, 0.9), 0.0);
        assert_eq!(binom_tail_le(5, 5, 0.9), 1.0);
        assert_eq!(binom_tail_ge(5, 0, 0.0), 1.0);
    }
}
