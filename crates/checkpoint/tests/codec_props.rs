//! Property tests for the snapshot codec: every field sequence round-trips
//! bit-exactly through a sealed envelope, and every damaged envelope —
//! truncated, bit-flipped, wrong version, arbitrary garbage — is rejected
//! with a typed error, never a panic.
//!
//! The vendored proptest speaks range and vec strategies, so each payload
//! field is derived deterministically from one u64 token: the token picks
//! the field kind and supplies the value bits (for f64 fields the raw bits
//! are used directly, so NaNs, infinities, negative zero, and subnormals
//! are all exercised).

use proptest::prelude::*;
use scrub_checkpoint::{open, seal, CheckpointError, Reader, Writer, SCHEMA_VERSION};

/// One payload field, decoded from a token.
#[derive(Debug, Clone, PartialEq)]
enum Field {
    U8(u8),
    Bool(bool),
    U16(u16),
    U32(u32),
    U64(u64),
    F64Bits(u64),
    Bytes(Vec<u8>),
    Str(String),
    OptF64Bits(Option<u64>),
}

fn field_of(token: u64) -> Field {
    let v = token.rotate_right(8);
    match token % 9 {
        0 => Field::U8(v as u8),
        1 => Field::Bool(v.is_multiple_of(2)),
        2 => Field::U16(v as u16),
        3 => Field::U32(v as u32),
        4 => Field::U64(v),
        5 => Field::F64Bits(v),
        6 => Field::Bytes(v.to_le_bytes()[..(v % 9) as usize].to_vec()),
        7 => {
            let mut s = format!("{v:x}");
            if v.is_multiple_of(3) {
                s.push('θ'); // multi-byte UTF-8 in the length-prefixed path
            }
            Field::Str(s)
        }
        _ => Field::OptF64Bits(if v.is_multiple_of(2) { Some(v) } else { None }),
    }
}

fn write(fields: &[Field]) -> Vec<u8> {
    let mut w = Writer::new();
    for f in fields {
        match f {
            Field::U8(v) => w.put_u8(*v),
            Field::Bool(v) => w.put_bool(*v),
            Field::U16(v) => w.put_u16(*v),
            Field::U32(v) => w.put_u32(*v),
            Field::U64(v) => w.put_u64(*v),
            Field::F64Bits(v) => w.put_f64(f64::from_bits(*v)),
            Field::Bytes(v) => w.put_bytes(v),
            Field::Str(v) => w.put_str(v),
            Field::OptF64Bits(v) => w.put_opt_f64(v.map(f64::from_bits)),
        }
    }
    w.into_bytes()
}

proptest! {
    /// Any sequence of fields survives seal → open → field-by-field read,
    /// bit-exactly, with nothing left over.
    #[test]
    fn fields_round_trip_through_sealed_envelope(
        tokens in proptest::collection::vec(0u64..=u64::MAX, 0..40)
    ) {
        let fields: Vec<Field> = tokens.iter().map(|&t| field_of(t)).collect();
        let snap = seal(write(&fields));
        let payload = open(&snap).expect("own snapshot must open");
        let mut r = Reader::new(payload);
        for f in &fields {
            match f {
                Field::U8(v) => prop_assert_eq!(r.u8().unwrap(), *v),
                Field::Bool(v) => prop_assert_eq!(r.bool().unwrap(), *v),
                Field::U16(v) => prop_assert_eq!(r.u16().unwrap(), *v),
                Field::U32(v) => prop_assert_eq!(r.u32().unwrap(), *v),
                Field::U64(v) => prop_assert_eq!(r.u64().unwrap(), *v),
                Field::F64Bits(v) => prop_assert_eq!(r.f64().unwrap().to_bits(), *v),
                Field::Bytes(v) => prop_assert_eq!(r.bytes().unwrap(), v.as_slice()),
                Field::Str(v) => prop_assert_eq!(r.str().unwrap(), v.as_str()),
                Field::OptF64Bits(v) => {
                    prop_assert_eq!(r.opt_f64().unwrap().map(f64::to_bits), *v)
                }
            }
        }
        prop_assert!(r.finish().is_ok());
    }

    /// Sealing is a pure function of the payload: same bytes in, same
    /// snapshot out — the foundation of byte-identical re-checkpointing.
    #[test]
    fn sealing_is_deterministic(payload in proptest::collection::vec(0u8..=255, 0..256)) {
        prop_assert_eq!(seal(payload.clone()), seal(payload));
    }

    /// Any single flipped bit anywhere in the envelope is rejected with a
    /// typed error appropriate to the damaged section — never accepted,
    /// never a panic.
    #[test]
    fn single_bit_flip_is_always_rejected(
        payload in proptest::collection::vec(0u8..=255, 0..128),
        pick in 0u64..=u64::MAX,
        bit in 0u32..8,
    ) {
        let mut snap = seal(payload);
        let i = (pick % snap.len() as u64) as usize;
        snap[i] ^= 1 << bit;
        let result = open(&snap);
        prop_assert!(
            matches!(
                result,
                Err(CheckpointError::BadMagic
                    | CheckpointError::UnsupportedVersion { .. }
                    | CheckpointError::Truncated { .. }
                    | CheckpointError::TrailingBytes { .. }
                    | CheckpointError::CrcMismatch { .. })
            ),
            "flip of bit {} at byte {}: expected a typed rejection, got {:?}",
            bit, i, result
        );
    }

    /// Every strict prefix of a snapshot is rejected as truncated.
    #[test]
    fn every_truncation_is_rejected(
        payload in proptest::collection::vec(0u8..=255, 0..96),
        pick in 0u64..=u64::MAX,
    ) {
        let snap = seal(payload);
        let cut = (pick % snap.len() as u64) as usize;
        prop_assert!(
            matches!(open(&snap[..cut]), Err(CheckpointError::Truncated { .. })),
            "cut at {} of {}", cut, snap.len()
        );
    }

    /// Any schema version other than ours is rejected, naming both sides.
    #[test]
    fn foreign_schema_versions_are_rejected(
        payload in proptest::collection::vec(0u8..=255, 0..64),
        version in 0u32..=u32::MAX,
    ) {
        prop_assume!(version != SCHEMA_VERSION);
        let mut snap = seal(payload);
        snap[8..12].copy_from_slice(&version.to_le_bytes());
        prop_assert_eq!(
            open(&snap),
            Err(CheckpointError::UnsupportedVersion {
                found: version,
                supported: SCHEMA_VERSION,
            })
        );
    }

    /// Arbitrary garbage never panics: `open` returns a typed result, and
    /// a reader walking any field pattern over raw bytes stays
    /// bounds-checked to the end.
    #[test]
    fn arbitrary_bytes_never_panic(
        bytes in proptest::collection::vec(0u8..=255, 0..256),
        pattern in proptest::collection::vec(0u8..9, 0..32),
    ) {
        let _ = open(&bytes);
        let mut r = Reader::new(&bytes);
        for p in pattern {
            let _ = match p {
                0 => r.u8().map(|_| ()),
                1 => r.bool().map(|_| ()),
                2 => r.u16().map(|_| ()),
                3 => r.u32().map(|_| ()),
                4 => r.u64().map(|_| ()),
                5 => r.f64().map(|_| ()),
                6 => r.bytes().map(|_| ()),
                7 => r.str().map(|_| ()),
                _ => r.opt_f64().map(|_| ()),
            };
        }
        let _ = r.finish();
    }
}
