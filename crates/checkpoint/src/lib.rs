//! Versioned binary snapshot codec for deterministic checkpoint/resume.
//!
//! A snapshot is an *envelope* around an opaque payload:
//!
//! ```text
//! offset  size  field
//! 0       8     magic  b"SCRUBCKP"
//! 8       4     schema version (u32 LE), currently 1
//! 12      8     payload length (u64 LE)
//! 20      n     payload
//! 20+n    4     CRC-32 of the payload (u32 LE, IEEE reflected,
//!               computed by `pcm_ecc::Crc32`)
//! ```
//!
//! The payload itself is written field-by-field with [`Writer`] and read
//! back with [`Reader`]: fixed-width little-endian integers, `f64` as raw
//! IEEE-754 bits (`to_bits`/`from_bits`, so every value — including
//! negative zero — round-trips bit-exactly), length-prefixed strings and
//! byte blocks, and one-byte `Option` tags. There is no self-describing
//! structure: writer and reader must agree on the field sequence, which is
//! what the schema version pins.
//!
//! Decoding NEVER panics on hostile input. Truncated envelopes, wrong
//! magic, unknown schema versions, CRC mismatches, and malformed fields
//! are all rejected with a typed [`CheckpointError`]; reads are
//! bounds-checked and floating-point fields can be validated with
//! [`Reader::finite_f64`] / [`Reader::time_f64`] before they reach code
//! with stricter invariants.
//!
//! # Versioning / compatibility policy
//!
//! The schema version covers the payload layout of *every* state owner
//! (memory shards, policies, traces, …). Any layout change — adding a
//! field, reordering, widening — bumps [`SCHEMA_VERSION`]; readers accept
//! exactly their own version and reject everything else, because a resumed
//! run must be bit-identical to a continuous one and a "best effort"
//! partial restore silently breaks that guarantee.
//!
//! # Examples
//!
//! ```
//! use scrub_checkpoint::{open, seal, Reader, Writer};
//! let mut w = Writer::new();
//! w.put_u32(7);
//! w.put_f64(0.25);
//! w.put_str("bank");
//! let snap = seal(w.into_bytes());
//! let payload = open(&snap).unwrap();
//! let mut r = Reader::new(payload);
//! assert_eq!(r.u32().unwrap(), 7);
//! assert_eq!(r.f64().unwrap(), 0.25);
//! assert_eq!(r.str().unwrap(), "bank");
//! assert!(r.finish().is_ok());
//! ```

use pcm_ecc::Crc32;

/// Leading bytes of every snapshot file.
pub const MAGIC: [u8; 8] = *b"SCRUBCKP";

/// Payload schema version this build writes and accepts.
///
/// v2: engine `next_slot` is a u64 nanosecond tick (was f64 seconds).
pub const SCHEMA_VERSION: u32 = 2;

/// Envelope header length: magic + version + payload length.
const HEADER_LEN: usize = 8 + 4 + 8;

/// Why a snapshot was rejected. Every decode failure is typed; nothing in
/// this crate panics on malformed input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// The input ends before the field (or envelope section) it should
    /// contain.
    Truncated {
        /// Bytes the next field needed.
        needed: usize,
        /// Bytes actually available.
        available: usize,
    },
    /// The first eight bytes are not [`MAGIC`] — not a snapshot at all.
    BadMagic,
    /// The envelope declares a schema version this build does not speak.
    UnsupportedVersion {
        /// Version found in the envelope.
        found: u32,
        /// The only version this build accepts.
        supported: u32,
    },
    /// The payload CRC-32 does not match: the snapshot was corrupted in
    /// storage or transit.
    CrcMismatch {
        /// Checksum stored in the envelope.
        stored: u32,
        /// Checksum computed over the received payload.
        computed: u32,
    },
    /// Bytes remain after the structure that should have consumed them
    /// all — writer and reader disagree about the layout.
    TrailingBytes {
        /// Unconsumed byte count.
        extra: usize,
    },
    /// A field decoded but violates an invariant (non-finite time, count
    /// out of range, mismatched identity, …). The message names the field.
    Malformed(String),
    /// Reading or writing the snapshot file failed (CLI layer).
    Io(String),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Truncated { needed, available } => {
                write!(
                    f,
                    "snapshot truncated: needed {needed} bytes, have {available}"
                )
            }
            CheckpointError::BadMagic => write!(f, "not a snapshot (bad magic)"),
            CheckpointError::UnsupportedVersion { found, supported } => write!(
                f,
                "unsupported snapshot schema version {found} (this build speaks {supported})"
            ),
            CheckpointError::CrcMismatch { stored, computed } => write!(
                f,
                "snapshot payload corrupt: stored CRC-32 {stored:#010x}, computed {computed:#010x}"
            ),
            CheckpointError::TrailingBytes { extra } => {
                write!(
                    f,
                    "snapshot has {extra} trailing byte(s) after the last field"
                )
            }
            CheckpointError::Malformed(msg) => write!(f, "malformed snapshot: {msg}"),
            CheckpointError::Io(msg) => write!(f, "snapshot i/o: {msg}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

/// Appends fixed-layout fields to a payload buffer.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// An empty payload.
    pub fn new() -> Self {
        Self::default()
    }

    /// The payload bytes written so far.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing was written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// One byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Bool as one byte (0/1).
    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    /// u16, little-endian.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// u32, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// u64, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// f64 as its raw IEEE-754 bits, so restore is bit-exact.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Length-prefixed (u32) raw bytes.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_u32(v.len() as u32);
        self.buf.extend_from_slice(v);
    }

    /// Length-prefixed (u32) UTF-8 string.
    pub fn put_str(&mut self, v: &str) {
        self.put_bytes(v.as_bytes());
    }

    /// `Option<f64>` as a presence byte plus, when present, the bits.
    pub fn put_opt_f64(&mut self, v: Option<f64>) {
        match v {
            Some(x) => {
                self.put_u8(1);
                self.put_f64(x);
            }
            None => self.put_u8(0),
        }
    }
}

/// Bounds-checked cursor over a payload.
#[derive(Debug)]
pub struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Starts reading at the payload's first byte.
    pub fn new(data: &'a [u8]) -> Self {
        Self { data, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CheckpointError> {
        if self.remaining() < n {
            return Err(CheckpointError::Truncated {
                needed: n,
                available: self.remaining(),
            });
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// One byte.
    pub fn u8(&mut self) -> Result<u8, CheckpointError> {
        Ok(self.take(1)?[0])
    }

    /// Bool from one byte; anything but 0/1 is malformed.
    pub fn bool(&mut self) -> Result<bool, CheckpointError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(CheckpointError::Malformed(format!("bool byte {b:#04x}"))),
        }
    }

    /// u16, little-endian.
    pub fn u16(&mut self) -> Result<u16, CheckpointError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// u32, little-endian.
    pub fn u32(&mut self) -> Result<u32, CheckpointError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// u64, little-endian.
    pub fn u64(&mut self) -> Result<u64, CheckpointError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// f64 from raw bits (any bit pattern, including NaNs).
    pub fn f64(&mut self) -> Result<f64, CheckpointError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// f64 that must be finite; `what` names the field in the error.
    pub fn finite_f64(&mut self, what: &str) -> Result<f64, CheckpointError> {
        let x = self.f64()?;
        if x.is_finite() {
            Ok(x)
        } else {
            Err(CheckpointError::Malformed(format!("{what} is not finite")))
        }
    }

    /// f64 that must be a valid simulated time: finite and non-negative.
    pub fn time_f64(&mut self, what: &str) -> Result<f64, CheckpointError> {
        let x = self.finite_f64(what)?;
        if x >= 0.0 {
            Ok(x)
        } else {
            Err(CheckpointError::Malformed(format!("{what} is negative")))
        }
    }

    /// Length-prefixed raw bytes.
    pub fn bytes(&mut self) -> Result<&'a [u8], CheckpointError> {
        let n = self.u32()? as usize;
        self.take(n)
    }

    /// Length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<&'a str, CheckpointError> {
        std::str::from_utf8(self.bytes()?)
            .map_err(|_| CheckpointError::Malformed("string is not UTF-8".to_string()))
    }

    /// `Option<f64>` written by [`Writer::put_opt_f64`].
    pub fn opt_f64(&mut self) -> Result<Option<f64>, CheckpointError> {
        Ok(if self.bool()? {
            Some(self.f64()?)
        } else {
            None
        })
    }

    /// Asserts every byte was consumed — layout drift between writer and
    /// reader shows up here instead of as silently ignored state.
    pub fn finish(self) -> Result<(), CheckpointError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(CheckpointError::TrailingBytes {
                extra: self.remaining(),
            })
        }
    }
}

/// Wraps a payload in the snapshot envelope: magic, schema version,
/// length, payload, CRC-32.
pub fn seal(payload: Vec<u8>) -> Vec<u8> {
    let crc = Crc32::new().checksum_bytes(&payload);
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len() + 4);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&SCHEMA_VERSION.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&payload);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// Validates the envelope and returns the payload slice: checks magic,
/// schema version, declared length, and the payload CRC-32 — in that
/// order, so the error names the outermost violation.
pub fn open(bytes: &[u8]) -> Result<&[u8], CheckpointError> {
    if bytes.len() < HEADER_LEN {
        return Err(CheckpointError::Truncated {
            needed: HEADER_LEN,
            available: bytes.len(),
        });
    }
    if bytes[..8] != MAGIC {
        return Err(CheckpointError::BadMagic);
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    if version != SCHEMA_VERSION {
        return Err(CheckpointError::UnsupportedVersion {
            found: version,
            supported: SCHEMA_VERSION,
        });
    }
    let len = u64::from_le_bytes(bytes[12..20].try_into().unwrap());
    let len: usize = len
        .try_into()
        .map_err(|_| CheckpointError::Malformed("payload length overflows usize".to_string()))?;
    let needed = HEADER_LEN
        .checked_add(len)
        .and_then(|n| n.checked_add(4))
        .ok_or_else(|| CheckpointError::Malformed("payload length overflows usize".to_string()))?;
    if bytes.len() < needed {
        return Err(CheckpointError::Truncated {
            needed,
            available: bytes.len(),
        });
    }
    if bytes.len() > needed {
        return Err(CheckpointError::TrailingBytes {
            extra: bytes.len() - needed,
        });
    }
    let payload = &bytes[HEADER_LEN..HEADER_LEN + len];
    let stored = u32::from_le_bytes(bytes[needed - 4..needed].try_into().unwrap());
    let computed = Crc32::new().checksum_bytes(payload);
    if stored != computed {
        return Err(CheckpointError::CrcMismatch { stored, computed });
    }
    Ok(payload)
}

/// Validates a snapshot's envelope (magic, version, length, CRC-32)
/// without handing back the payload — the integrity gate a supervisor
/// runs on freshly produced or freshly read snapshot bytes before
/// accepting them as a recovery point.
pub fn verify(bytes: &[u8]) -> Result<(), CheckpointError> {
    open(bytes).map(|_| ())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verify_accepts_sealed_and_rejects_corrupt() {
        let snap = seal(vec![5; 32]);
        assert_eq!(verify(&snap), Ok(()));
        let mut bad = snap.clone();
        bad[HEADER_LEN + 3] ^= 0x40;
        assert!(matches!(
            verify(&bad),
            Err(CheckpointError::CrcMismatch { .. })
        ));
        assert!(matches!(
            verify(&snap[..10]),
            Err(CheckpointError::Truncated { .. })
        ));
    }

    #[test]
    fn field_round_trip() {
        let mut w = Writer::new();
        w.put_u8(0xAB);
        w.put_bool(true);
        w.put_u16(0xBEEF);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 1);
        w.put_f64(-0.0);
        w.put_f64(1.0e-300);
        w.put_bytes(&[1, 2, 3]);
        w.put_str("θ=4");
        w.put_opt_f64(None);
        w.put_opt_f64(Some(3.5));
        let buf = w.into_bytes();
        let mut r = Reader::new(&buf);
        assert_eq!(r.u8().unwrap(), 0xAB);
        assert!(r.bool().unwrap());
        assert_eq!(r.u16().unwrap(), 0xBEEF);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(r.f64().unwrap(), 1.0e-300);
        assert_eq!(r.bytes().unwrap(), &[1, 2, 3]);
        assert_eq!(r.str().unwrap(), "θ=4");
        assert_eq!(r.opt_f64().unwrap(), None);
        assert_eq!(r.opt_f64().unwrap(), Some(3.5));
        assert!(r.finish().is_ok());
    }

    #[test]
    fn envelope_round_trip() {
        let snap = seal(vec![9, 8, 7]);
        assert_eq!(open(&snap).unwrap(), &[9, 8, 7]);
    }

    #[test]
    fn empty_payload_is_valid() {
        let snap = seal(Vec::new());
        assert_eq!(open(&snap).unwrap(), &[] as &[u8]);
    }

    #[test]
    fn truncation_is_typed() {
        let snap = seal(vec![1, 2, 3, 4]);
        for cut in 0..snap.len() {
            match open(&snap[..cut]) {
                Err(CheckpointError::Truncated { .. }) => {}
                other => panic!("cut at {cut}: expected Truncated, got {other:?}"),
            }
        }
    }

    #[test]
    fn bit_flips_are_caught() {
        let snap = seal(vec![0u8; 64]);
        // Flip one bit in every payload byte position; each must surface
        // as a CRC mismatch (header flips are caught by earlier checks).
        for i in HEADER_LEN..HEADER_LEN + 64 {
            let mut bad = snap.clone();
            bad[i] ^= 0x10;
            match open(&bad) {
                Err(CheckpointError::CrcMismatch { .. }) => {}
                other => panic!("flip at {i}: expected CrcMismatch, got {other:?}"),
            }
        }
    }

    #[test]
    fn wrong_version_rejected() {
        let mut snap = seal(vec![1, 2, 3]);
        snap[8..12].copy_from_slice(&(SCHEMA_VERSION + 1).to_le_bytes());
        assert_eq!(
            open(&snap),
            Err(CheckpointError::UnsupportedVersion {
                found: SCHEMA_VERSION + 1,
                supported: SCHEMA_VERSION,
            })
        );
    }

    #[test]
    fn bad_magic_rejected() {
        let mut snap = seal(vec![1]);
        snap[0] = b'X';
        assert_eq!(open(&snap), Err(CheckpointError::BadMagic));
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut snap = seal(vec![1, 2]);
        snap.push(0);
        assert!(matches!(
            open(&snap),
            Err(CheckpointError::TrailingBytes { extra: 1 })
        ));
    }

    #[test]
    fn reader_rejects_trailing_payload_bytes() {
        let mut w = Writer::new();
        w.put_u32(5);
        let buf = w.into_bytes();
        let mut r = Reader::new(&buf);
        assert_eq!(r.u16().unwrap(), 5);
        assert!(matches!(
            r.finish(),
            Err(CheckpointError::TrailingBytes { extra: 2 })
        ));
    }

    #[test]
    fn validated_floats() {
        let mut w = Writer::new();
        w.put_f64(f64::NAN);
        w.put_f64(-1.0);
        let buf = w.into_bytes();
        let mut r = Reader::new(&buf);
        assert!(matches!(
            r.finite_f64("clock"),
            Err(CheckpointError::Malformed(_))
        ));
        assert!(matches!(
            r.time_f64("clock"),
            Err(CheckpointError::Malformed(_))
        ));
    }

    #[test]
    fn errors_display_cleanly() {
        let e = CheckpointError::CrcMismatch {
            stored: 1,
            computed: 2,
        };
        assert!(e.to_string().contains("CRC-32"));
        assert!(CheckpointError::BadMagic.to_string().contains("magic"));
    }
}
